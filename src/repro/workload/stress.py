"""Multi-threaded stress and chaos harness for the session layer.

:func:`run_stress` hammers one database from many concurrent sessions —
each worker thread runs seeded read-modify-write transactions through a
:class:`~repro.concurrency.layer.SessionLayer` — and then audits the
paper's invariants over the wreckage:

- **zero lost updates**: every increment a worker was told committed is
  present in the final state (the sum of the counters equals the number
  of successful commits);
- **monotone commit times**: the commit log's transaction times are
  strictly increasing — the serial-history order survived the race;
- **serial equivalence**: replaying the commit log, one transaction at
  a time, into a fresh database of the same kind reproduces the exact
  final state and the exact commit times (the concurrent history *is*
  some serial history, which is the definition of serializability).

With ``faults`` set, the same load runs against a durable database
(:class:`~repro.storage.recovery.DurabilityManager`) whose journal I/O
dies at the chosen :class:`~repro.storage.faults.CrashPoint`; after the
simulated crash the storage stays dead, every worker drains out, and
the harness recovers the directory with healthy I/O and checks the
recovered history is exactly the durable prefix of the in-memory one —
the docs/DURABILITY.md contract, now under concurrent load.

Everything is deterministic under a fixed seed *except* thread
interleaving; the audited invariants hold for every interleaving, which
is what makes the harness a test and not a lottery.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from typing import Any, Callable, Dict, Optional, Type

from repro import obs
from repro.concurrency import AdmissionController, RetryPolicy, SessionLayer
from repro.core.base import Database
from repro.core.temporal import TemporalDatabase
from repro.errors import DeadlineExceeded, Overloaded, ReproError
from repro.relational.domain import Domain
from repro.relational.schema import Schema
from repro.storage.faults import CrashPoint, FaultyIO, SimulatedCrash
from repro.storage.io import StorageIO
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant
from repro.workload.generators import EPOCH

RELATION = "counters"
_BASE = Instant.from_chronon(EPOCH)


@dataclasses.dataclass
class StressReport:
    """What one :func:`run_stress` run did, and whether it held up."""

    sessions: int
    transactions_per_session: int
    attempted: int
    committed: int
    conflicts: int
    retries: int
    shed: int
    deadline_exceeded: int
    crashed: int
    failed: int
    wall_s: float
    applied_increments: int
    lost_updates: int
    commit_times_monotone: bool
    serial_equivalent: bool
    #: Durable mode only: records recovered / True when the recovered
    #: history is exactly the durable prefix of the in-memory log.
    recovered_records: Optional[int] = None
    recovery_is_durable_prefix: Optional[bool] = None
    manager_accepts_begin_after_run: bool = True

    @property
    def ok(self) -> bool:
        """All audited invariants held."""
        return (self.lost_updates == 0 and self.commit_times_monotone
                and self.serial_equivalent
                and self.recovery_is_durable_prefix is not False
                and self.manager_accepts_begin_after_run)

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro stress --json`` prints)."""
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data


class _DeadAfterCrashIO(StorageIO):
    """Storage that stays dead once the wrapped :class:`FaultyIO` fired.

    A real crash kills the process: nothing appends after it.  The
    chaos harness keeps the *threads* alive (to prove nothing wedges)
    but must not let post-crash commits reach the journal — that would
    punch a hole in the append-only history no real crash can produce.
    """

    def __init__(self, inner: FaultyIO) -> None:
        self._inner = inner

    def append(self, path: str, data: bytes, fsync: bool = False) -> None:
        if self._inner.fired:
            raise SimulatedCrash("storage died at the injected crash point")
        self._inner.append(path, data, fsync=fsync)

    def write_atomic(self, path: str, data: bytes,
                     fsync: bool = False) -> None:
        if self._inner.fired:
            raise SimulatedCrash("storage died at the injected crash point")
        self._inner.write_atomic(path, data, fsync=fsync)


def _define_counters(database: Database, keys: int) -> None:
    schema = Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER)
    database.define(RELATION, schema)
    historical = database.kind.supports_historical_queries
    with database.begin() as txn:
        for i in range(keys):
            if historical:
                database.insert(RELATION, {"k": f"k{i}", "v": 0},
                                valid_from=_BASE, txn=txn)
            else:
                database.insert(RELATION, {"k": f"k{i}", "v": 0}, txn=txn)


def _increment_closure(rng: random.Random, keys: int):
    """One seeded read-modify-write transaction (safe to re-run)."""
    key = f"k{rng.randrange(keys)}"

    def closure(session) -> int:
        row = next(r for r in session.read(RELATION) if r["k"] == key)
        session.replace(RELATION, {"k": key}, {"v": row["v"] + 1})
        return row["v"] + 1

    return closure


def _serial_replay_matches(database: Database,
                           kind: Type[Database]) -> bool:
    """Replay the commit log serially into a fresh database; compare.

    ``define`` is itself a logged operation, so the replay rebuilds the
    schema too; matching commit times *and* final snapshot proves the
    concurrent history equals this serial one.
    """
    reference = kind(clock=SimulatedClock(_BASE))
    ref_clock = reference.manager.clock.source
    for record in database.log:
        ref_clock.set(record.commit_time)
        actual = reference.manager.run(list(record.operations))
        if actual != record.commit_time:
            return False
    return (reference.snapshot(RELATION) == database.snapshot(RELATION)
            and len(reference.log) == len(database.log))


def run_stress(kind: Type[Database] = TemporalDatabase,
               sessions: int = 8, transactions: int = 200,
               keys: int = 8, seed: int = 0,
               retry: Optional[RetryPolicy] = None,
               admission: Optional[AdmissionController] = None,
               timeout: Optional[float] = None,
               faults: Optional[CrashPoint] = None,
               fault_at: int = 50,
               directory: Optional[str] = None,
               work: Optional[Callable[[], None]] = None) -> StressReport:
    """Hammer a fresh database from *sessions* threads; audit the result.

    Each worker runs *transactions* seeded increment transactions
    against a shared ``counters`` relation through one shared
    :class:`SessionLayer`.  ``retry`` defaults to a patient,
    near-sleepless policy (every transaction eventually commits);
    pass a bounded one plus a small ``admission`` queue to exercise
    load shedding instead.  ``work`` is an optional callable invoked
    inside each transaction closure (e.g. a tiny sleep) to hold slots
    open and force queueing.

    ``faults`` switches to chaos mode: the database becomes durable in
    *directory* (required) and journal I/O dies at the ``fault_at``-th
    append with the given :class:`CrashPoint`; the report then carries
    the recovery audit fields.
    """
    if retry is None:
        retry = RetryPolicy(max_attempts=10 * max(sessions, 2),
                            base_delay=0.0002, max_delay=0.002,
                            jitter=0.5, seed=seed)
    if admission is None:
        admission = AdmissionController(max_active=max(2, sessions),
                                        max_queue=4 * sessions)

    if faults is not None:
        if directory is None:
            raise ValueError("chaos mode (faults=) needs a directory")
        from repro.storage.recovery import DurabilityManager
        io = _DeadAfterCrashIO(FaultyIO(faults, at=fault_at))
        database, _ = DurabilityManager(directory, io=io).recover(kind)
        database.manager.clock.source.set(_BASE)
    else:
        database = kind(clock=SimulatedClock(_BASE))

    _define_counters(database, keys)
    layer = SessionLayer(database, retry=retry, admission=admission)

    counts_lock = threading.Lock()
    counts = {"attempted": 0, "committed": 0, "shed": 0,
              "deadline_exceeded": 0, "crashed": 0, "failed": 0}
    stop = threading.Event()

    def worker(worker_index: int) -> None:
        rng = random.Random((seed << 16) ^ worker_index)
        for _ in range(transactions):
            if stop.is_set():
                return
            closure = _increment_closure(rng, keys)
            if work is not None:
                inner = closure

                def closure(session, _inner=inner):
                    work()
                    return _inner(session)
            outcome = "committed"
            try:
                layer.run(closure, timeout=timeout)
            except Overloaded:
                outcome = "shed"
            except DeadlineExceeded:
                outcome = "deadline_exceeded"
            except SimulatedCrash:
                outcome = "crashed"
                stop.set()
            except ReproError:
                outcome = "failed"
            with counts_lock:
                counts["attempted"] += 1
                counts[outcome] += 1

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(sessions)]
    with obs.recording() as instrumentation:
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - started
    metrics = instrumentation.metrics.snapshot()["counters"]

    # -- audit ---------------------------------------------------------------
    applied = sum(row["v"] for row in database.snapshot(RELATION))
    committed = counts["committed"]
    lost = max(0, committed - applied)
    times = [record.commit_time for record in database.log]
    monotone = all(a < b for a, b in zip(times, times[1:]))
    serial_ok = _serial_replay_matches(database, kind)

    accepts_begin = True
    try:
        probe = database.manager.begin()
        probe.abort()
    except ReproError:
        accepts_begin = False

    recovered_records: Optional[int] = None
    prefix_ok: Optional[bool] = None
    if faults is not None:
        from repro.storage.recovery import DurabilityManager
        recovered, report = DurabilityManager(directory).recover(kind)
        recovered_records = report.records_total
        in_memory = list(database.log)
        durable = list(recovered.log)
        # The dead-after-crash I/O guarantees the journal is a clean
        # prefix of the serialized commit stream: once storage dies no
        # later commit can append around the hole.  Check it record by
        # record against the in-memory history.
        prefix_ok = (
            len(durable) <= len(in_memory)
            and all(d.commit_time == m.commit_time
                    and list(d.operations) == list(m.operations)
                    for d, m in zip(durable, in_memory)))
        rec_times = [record.commit_time for record in recovered.log]
        monotone = monotone and all(
            a < b for a, b in zip(rec_times, rec_times[1:]))

    return StressReport(
        sessions=sessions,
        transactions_per_session=transactions,
        attempted=counts["attempted"],
        committed=committed,
        conflicts=metrics.get("concurrency.conflicts", 0),
        retries=metrics.get("concurrency.retries", 0),
        shed=counts["shed"],
        deadline_exceeded=counts["deadline_exceeded"],
        crashed=counts["crashed"],
        failed=counts["failed"],
        wall_s=round(wall, 6),
        applied_increments=applied,
        lost_updates=lost,
        commit_times_monotone=monotone,
        serial_equivalent=serial_ok,
        recovered_records=recovered_records,
        recovery_is_durable_prefix=prefix_ok,
        manager_accepts_begin_after_run=accepts_begin,
    )
