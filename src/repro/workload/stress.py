"""Multi-threaded stress and chaos harness for the session layer.

:func:`run_stress` hammers one database from many concurrent sessions —
each worker thread runs seeded read-modify-write transactions through a
:class:`~repro.concurrency.layer.SessionLayer` — and then audits the
paper's invariants over the wreckage:

- **zero lost updates**: every increment a worker was told committed is
  present in the final state (the sum of the counters equals the number
  of successful commits);
- **monotone commit times**: the commit log's transaction times are
  strictly increasing — the serial-history order survived the race;
- **serial equivalence**: replaying the commit log, one transaction at
  a time, into a fresh database of the same kind reproduces the exact
  final state and the exact commit times (the concurrent history *is*
  some serial history, which is the definition of serializability).

With ``faults`` set, the same load runs against a durable database
(:class:`~repro.storage.recovery.DurabilityManager`) whose journal I/O
dies at the chosen :class:`~repro.storage.faults.CrashPoint`; after the
simulated crash the storage stays dead, every worker drains out, and
the harness recovers the directory with healthy I/O and checks the
recovered history is exactly the durable prefix of the in-memory one —
the docs/DURABILITY.md contract, now under concurrent load.

Everything is deterministic under a fixed seed *except* thread
interleaving; the audited invariants hold for every interleaving, which
is what makes the harness a test and not a lottery.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from typing import Any, Callable, Dict, Optional, Type

from repro import obs
from repro.concurrency import AdmissionController, RetryPolicy, SessionLayer
from repro.core.base import Database
from repro.core.temporal import TemporalDatabase
from repro.errors import DeadlineExceeded, Overloaded, ReproError
from repro.relational.domain import Domain
from repro.relational.schema import Schema
from repro.storage.faults import CrashPoint, FaultyIO, SimulatedCrash
from repro.storage.io import StorageIO
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant
from repro.workload.generators import EPOCH

RELATION = "counters"
_BASE = Instant.from_chronon(EPOCH)


@dataclasses.dataclass
class StressReport:
    """What one :func:`run_stress` run did, and whether it held up."""

    sessions: int
    transactions_per_session: int
    attempted: int
    committed: int
    conflicts: int
    retries: int
    shed: int
    deadline_exceeded: int
    crashed: int
    failed: int
    wall_s: float
    applied_increments: int
    lost_updates: int
    commit_times_monotone: bool
    serial_equivalent: bool
    #: Durable mode only: records recovered / True when the recovered
    #: history is exactly the durable prefix of the in-memory log.
    recovered_records: Optional[int] = None
    recovery_is_durable_prefix: Optional[bool] = None
    manager_accepts_begin_after_run: bool = True
    #: The ``concurrency.commit_seconds`` histogram summary — per-commit
    #: latency under the lock ({count, total, p50, p95, p99, max}).
    commit_latency: Dict[str, float] = dataclasses.field(
        default_factory=dict)
    #: Per-operation-class SLO health over the run (advisory: latency
    #: objectives, not correctness — ``ok`` does not include it).
    slo: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """All audited invariants held."""
        return (self.lost_updates == 0 and self.commit_times_monotone
                and self.serial_equivalent
                and self.recovery_is_durable_prefix is not False
                and self.manager_accepts_begin_after_run)

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro stress --json`` prints)."""
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data


class _DeadAfterCrashIO(StorageIO):
    """Storage that stays dead once the wrapped :class:`FaultyIO` fired.

    A real crash kills the process: nothing appends after it.  The
    chaos harness keeps the *threads* alive (to prove nothing wedges)
    but must not let post-crash commits reach the journal — that would
    punch a hole in the append-only history no real crash can produce.
    """

    def __init__(self, inner: FaultyIO) -> None:
        self._inner = inner

    def append(self, path: str, data: bytes, fsync: bool = False) -> None:
        if self._inner.fired:
            raise SimulatedCrash("storage died at the injected crash point")
        self._inner.append(path, data, fsync=fsync)

    def write_atomic(self, path: str, data: bytes,
                     fsync: bool = False) -> None:
        if self._inner.fired:
            raise SimulatedCrash("storage died at the injected crash point")
        self._inner.write_atomic(path, data, fsync=fsync)


def _define_counters(database: Database, keys: int) -> None:
    schema = Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER)
    database.define(RELATION, schema)
    historical = database.kind.supports_historical_queries
    with database.begin() as txn:
        for i in range(keys):
            if historical:
                database.insert(RELATION, {"k": f"k{i}", "v": 0},
                                valid_from=_BASE, txn=txn)
            else:
                database.insert(RELATION, {"k": f"k{i}", "v": 0}, txn=txn)


def _increment_closure(rng: random.Random, keys: int):
    """One seeded read-modify-write transaction (safe to re-run)."""
    key = f"k{rng.randrange(keys)}"

    def closure(session) -> int:
        row = next(r for r in session.read(RELATION) if r["k"] == key)
        session.replace(RELATION, {"k": key}, {"v": row["v"] + 1})
        return row["v"] + 1

    return closure


def _serial_replay_matches(database: Database,
                           kind: Type[Database]) -> bool:
    """Replay the commit log serially into a fresh database; compare.

    ``define`` is itself a logged operation, so the replay rebuilds the
    schema too; matching commit times *and* final snapshot proves the
    concurrent history equals this serial one.
    """
    reference = kind(clock=SimulatedClock(_BASE))
    ref_clock = reference.manager.clock.source
    for record in database.log:
        ref_clock.set(record.commit_time)
        actual = reference.manager.run(list(record.operations))
        if actual != record.commit_time:
            return False
    return (reference.snapshot(RELATION) == database.snapshot(RELATION)
            and len(reference.log) == len(database.log))


def run_stress(kind: Type[Database] = TemporalDatabase,
               sessions: int = 8, transactions: int = 200,
               keys: int = 8, seed: int = 0,
               retry: Optional[RetryPolicy] = None,
               admission: Optional[AdmissionController] = None,
               timeout: Optional[float] = None,
               faults: Optional[CrashPoint] = None,
               fault_at: int = 50,
               directory: Optional[str] = None,
               work: Optional[Callable[[], None]] = None) -> StressReport:
    """Hammer a fresh database from *sessions* threads; audit the result.

    Each worker runs *transactions* seeded increment transactions
    against a shared ``counters`` relation through one shared
    :class:`SessionLayer`.  ``retry`` defaults to a patient,
    near-sleepless policy (every transaction eventually commits);
    pass a bounded one plus a small ``admission`` queue to exercise
    load shedding instead.  ``work`` is an optional callable invoked
    inside each transaction closure (e.g. a tiny sleep) to hold slots
    open and force queueing.

    ``faults`` switches to chaos mode: the database becomes durable in
    *directory* (required) and journal I/O dies at the ``fault_at``-th
    append with the given :class:`CrashPoint`; the report then carries
    the recovery audit fields.
    """
    if retry is None:
        retry = RetryPolicy(max_attempts=10 * max(sessions, 2),
                            base_delay=0.0002, max_delay=0.002,
                            jitter=0.5, seed=seed)
    if admission is None:
        admission = AdmissionController(max_active=max(2, sessions),
                                        max_queue=4 * sessions)

    if faults is not None:
        if directory is None:
            raise ValueError("chaos mode (faults=) needs a directory")
        from repro.storage.recovery import DurabilityManager
        io = _DeadAfterCrashIO(FaultyIO(faults, at=fault_at))
        database, _ = DurabilityManager(directory, io=io).recover(kind)
        database.manager.clock.source.set(_BASE)
    else:
        database = kind(clock=SimulatedClock(_BASE))

    _define_counters(database, keys)
    layer = SessionLayer(database, retry=retry, admission=admission)

    counts_lock = threading.Lock()
    counts = {"attempted": 0, "committed": 0, "shed": 0,
              "deadline_exceeded": 0, "crashed": 0, "failed": 0}
    stop = threading.Event()

    def worker(worker_index: int) -> None:
        rng = random.Random((seed << 16) ^ worker_index)
        for _ in range(transactions):
            if stop.is_set():
                return
            closure = _increment_closure(rng, keys)
            if work is not None:
                inner = closure

                def closure(session, _inner=inner):
                    work()
                    return _inner(session)
            outcome = "committed"
            try:
                layer.run(closure, timeout=timeout)
            except Overloaded:
                outcome = "shed"
            except DeadlineExceeded:
                outcome = "deadline_exceeded"
            except SimulatedCrash:
                outcome = "crashed"
                stop.set()
            except ReproError:
                outcome = "failed"
            with counts_lock:
                counts["attempted"] += 1
                counts[outcome] += 1

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(sessions)]
    with obs.recording() as instrumentation:
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - started
    snapshot = instrumentation.metrics.snapshot()
    metrics = snapshot["counters"]
    latency = snapshot["histograms"].get("concurrency.commit_seconds", {})

    # -- audit ---------------------------------------------------------------
    applied = sum(row["v"] for row in database.snapshot(RELATION))
    committed = counts["committed"]
    lost = max(0, committed - applied)
    times = [record.commit_time for record in database.log]
    monotone = all(a < b for a, b in zip(times, times[1:]))
    serial_ok = _serial_replay_matches(database, kind)

    accepts_begin = True
    try:
        probe = database.manager.begin()
        probe.abort()
    except ReproError:
        accepts_begin = False

    recovered_records: Optional[int] = None
    prefix_ok: Optional[bool] = None
    if faults is not None:
        from repro.storage.recovery import DurabilityManager
        recovered, report = DurabilityManager(directory).recover(kind)
        recovered_records = report.records_total
        in_memory = list(database.log)
        durable = list(recovered.log)
        # The dead-after-crash I/O guarantees the journal is a clean
        # prefix of the serialized commit stream: once storage dies no
        # later commit can append around the hole.  Check it record by
        # record against the in-memory history.
        prefix_ok = (
            len(durable) <= len(in_memory)
            and all(d.commit_time == m.commit_time
                    and list(d.operations) == list(m.operations)
                    for d, m in zip(durable, in_memory)))
        rec_times = [record.commit_time for record in recovered.log]
        monotone = monotone and all(
            a < b for a, b in zip(rec_times, rec_times[1:]))

    return StressReport(
        sessions=sessions,
        transactions_per_session=transactions,
        attempted=counts["attempted"],
        committed=committed,
        conflicts=metrics.get("concurrency.conflicts", 0),
        retries=metrics.get("concurrency.retries", 0),
        shed=counts["shed"],
        deadline_exceeded=counts["deadline_exceeded"],
        crashed=counts["crashed"],
        failed=counts["failed"],
        wall_s=round(wall, 6),
        applied_increments=applied,
        lost_updates=lost,
        commit_times_monotone=monotone,
        serial_equivalent=serial_ok,
        recovered_records=recovered_records,
        recovery_is_durable_prefix=prefix_ok,
        manager_accepts_begin_after_run=accepts_begin,
        commit_latency=latency,
        slo=instrumentation.slo.health(),
    )


# ---------------------------------------------------------------------------
# Replicated chaos mode
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ReplicatedReport:
    """What one :func:`run_replicated` run did, and whether it held up."""

    writers: int
    transactions_per_writer: int
    replicas: int
    attempted: int
    committed: int
    shed: int
    deadline_exceeded: int
    failed: int
    wall_s: float
    #: A mid-run failover happened (``failover_at`` reached).
    failover_performed: bool
    #: The coordinator's digest audit of the promoted state (None when
    #: no digest history covered the promoted seq; False is a failure).
    promoted_prefix_verified: Optional[bool]
    final_epoch: int
    #: Sum of the counters on the surviving primary.
    applied_increments: int
    #: Commits acknowledged to a writer but absent from the surviving
    #: primary's state.  Must be zero: failover drains the old primary's
    #: full durable history before promotion.
    lost_durable_commits: int
    #: Every surviving replica reached the primary's seq and the exact
    #: same canonical state digest.
    replicas_converged: bool
    replica_applied: Dict[str, int]
    primary_seq: int
    #: Replicas that latched a DivergenceError (must be zero).
    diverged: int
    #: All surviving replicas serve a read at the newest commit token,
    #: and still refuse one past the primary's head.
    read_your_writes_ok: bool
    ryw_reads_lagging: int
    ryw_reads_served: int
    fenced_rejects: int
    snapshots_loaded: int
    duplicates_dropped: int
    gaps_detected: int
    #: The transport's fault tally (sent/dropped/duplicated/...).
    transport: Dict[str, int]

    @property
    def ok(self) -> bool:
        """All audited invariants held."""
        return (self.lost_durable_commits == 0
                and self.replicas_converged
                and self.diverged == 0
                and self.read_your_writes_ok
                and (not self.failover_performed
                     or self.promoted_prefix_verified is not False))

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro replicate --json`` prints)."""
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data


def run_replicated(kind: Type[Database] = TemporalDatabase,
                   replicas: int = 2, writers: int = 4,
                   transactions: int = 40, keys: int = 8, seed: int = 0,
                   drop: float = 0.05, duplicate: float = 0.05,
                   reorder: float = 0.05, delay: float = 0.0,
                   partition_at: Optional[int] = None,
                   heal_at: Optional[int] = None,
                   failover_at: Optional[int] = None,
                   retry: Optional[RetryPolicy] = None,
                   admission: Optional[AdmissionController] = None,
                   convergence_rounds: int = 2000) -> ReplicatedReport:
    """Writers on a primary, readers on replicas, faults on the wire.

    *writers* threads run seeded increments through a
    :class:`SessionLayer` on the primary while a pump thread streams the
    journal to *replicas* replicas over a seeded
    :class:`~repro.replication.transport.FaultyTransport` (``drop`` /
    ``duplicate`` / ``reorder`` / ``delay`` probabilities).  The
    ``*_at`` knobs are committed-transaction thresholds: at
    ``partition_at`` the transport partitions the primary from the last
    replica (healed at ``heal_at``, or at the end); at ``failover_at``
    the writers are quiesced and the **first** replica is promoted
    through :class:`~repro.replication.failover.FailoverCoordinator` —
    the writers then resume against the promoted primary, epoch bumped,
    old primary fenced.

    The audit (see :class:`ReplicatedReport.ok`): zero acknowledged-but-
    lost commits, every surviving replica converges to the primary's
    exact canonical digest, nobody latched divergence, the promoted
    state was digest-verified as a prefix of the old primary's history,
    and read-your-writes tokens gate replica reads correctly.
    """
    from repro.replication import (FailoverCoordinator, FaultyTransport,
                                   Primary, Replica, state_digest)
    from repro.errors import ReplicaLagging, UnknownRelationError

    if retry is None:
        retry = RetryPolicy(max_attempts=10 * max(writers, 2),
                            base_delay=0.0002, max_delay=0.002,
                            jitter=0.5, seed=seed)
    if admission is None:
        admission = AdmissionController(max_active=max(2, writers),
                                        max_queue=4 * writers)

    transport = FaultyTransport(seed=seed, drop=drop, duplicate=duplicate,
                                reorder=reorder, delay=delay)
    database = kind(clock=SimulatedClock(_BASE))
    primary = Primary("primary", database, transport)
    _define_counters(database, keys)

    replica_nodes = [Replica(f"replica-{i}", kind, transport, "primary")
                     for i in range(replicas)]
    for node in replica_nodes:
        primary.add_replica(node.node_id)
        node.request_catchup()

    # Shared control state.  ``gate`` pauses the writers for failover;
    # ``token_base`` maps a layer-local commit token to a global seq (a
    # promoted primary's log may be only the tail of global history).
    gate = threading.Condition()
    state = {"layer": SessionLayer(database, retry=retry,
                                   admission=admission),
             "primary": primary, "paused": False, "in_flight": 0,
             "token_base": 0, "serving": list(replica_nodes),
             "failover": None}
    counts_lock = threading.Lock()
    counts = {"attempted": 0, "committed": 0, "shed": 0,
              "deadline_exceeded": 0, "failed": 0,
              "latest_token": 0, "ryw_lagging": 0, "ryw_served": 0}

    def worker(worker_index: int) -> None:
        rng = random.Random((seed << 16) ^ worker_index)
        for _ in range(transactions):
            closure = _increment_closure(rng, keys)
            box: Dict[str, Any] = {}

            def wrapped(session, _inner=closure, _box=box):
                _box["session"] = session
                return _inner(session)

            with gate:
                while state["paused"]:
                    gate.wait()
                state["in_flight"] += 1
                layer_now = state["layer"]
                base_now = state["token_base"]
            outcome = "committed"
            try:
                layer_now.run(wrapped)
            except Overloaded:
                outcome = "shed"
            except DeadlineExceeded:
                outcome = "deadline_exceeded"
            except ReproError:
                outcome = "failed"
            finally:
                with gate:
                    state["in_flight"] -= 1
                    gate.notify_all()
            token = None
            if outcome == "committed" and "session" in box:
                local = box["session"].commit_token
                if local is not None:
                    token = base_now + local
            with counts_lock:
                counts["attempted"] += 1
                counts[outcome] += 1
                if token is not None:
                    counts["latest_token"] = max(counts["latest_token"],
                                                 token)

    def do_failover() -> None:
        """Quiesce the writers, promote the first replica, resume."""
        with gate:
            state["paused"] = True
            while state["in_flight"]:
                gate.wait()
            old = state["primary"]
            victim = state["serving"][0]
            others = [node for node in state["serving"]
                      if node is not victim]
            promoted, promotion = FailoverCoordinator(transport).promote(
                victim, old_primary=old,
                replicas=[node.node_id for node in others])
            state["primary"] = promoted
            state["layer"] = SessionLayer(promoted.database, retry=retry,
                                          admission=admission)
            state["token_base"] = promoted.floor
            state["serving"] = others
            state["failover"] = promotion
            state["paused"] = False
            gate.notify_all()

    stop_pump = threading.Event()
    triggers = {"partition": partition_at is None,
                "heal": heal_at is None,
                "failover": failover_at is None}

    def fire_triggers() -> None:
        with counts_lock:
            committed = counts["committed"]
        if (not triggers["partition"] and committed >= partition_at
                and len(replica_nodes) > 1):
            transport.partition(state["primary"].node_id,
                                replica_nodes[-1].node_id)
            triggers["partition"] = True
        if not triggers["heal"] and committed >= heal_at:
            transport.heal()
            triggers["heal"] = True
        if not triggers["failover"] and committed >= failover_at:
            do_failover()
            triggers["failover"] = True

    def pump_once(beat: int) -> None:
        current = state["primary"]
        current.pump()
        if beat % 5 == 0:
            current.heartbeat()
        with counts_lock:
            token = counts["latest_token"]
        for node in state["serving"]:
            node.pump()
            try:
                node.read(RELATION, token=token or None)
                served = True
            except (ReplicaLagging, UnknownRelationError):
                # UnknownRelation = so far behind even the schema-defining
                # commit has not arrived yet; that is lag, not an error.
                served = False
            with counts_lock:
                counts["ryw_served" if served else "ryw_lagging"] += 1

    def pumper() -> None:
        beat = 0
        while not stop_pump.is_set():
            fire_triggers()
            pump_once(beat)
            beat += 1
            time.sleep(0)

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(writers)]
    with obs.recording() as instrumentation:
        started = time.monotonic()
        pump_thread = threading.Thread(target=pumper, daemon=True)
        pump_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_pump.set()
        pump_thread.join()
        # Late triggers the pump thread never saw (writers finished
        # first), then heal everything and drain to convergence.
        fire_triggers()
        transport.heal()
        final = state["primary"]
        serving = state["serving"]
        for round_index in range(convergence_rounds):
            pump_once(round_index)
            if all(node.applied_seq >= final.current_seq
                   and not transport.pending(node.node_id)
                   for node in serving):
                break
        final.heartbeat()
        final.pump()
        for node in serving:
            node.pump()
        wall = time.monotonic() - started
    metrics = instrumentation.metrics.snapshot()["counters"]

    # -- audit ---------------------------------------------------------------
    applied = sum(row["v"] for row in final.database.snapshot(RELATION))
    committed = counts["committed"]
    lost = max(0, committed - applied)
    primary_digest = state_digest(final.database)
    converged = all(
        node.applied_seq == final.current_seq
        and state_digest(node.database) == primary_digest
        for node in serving)
    diverged = sum(1 for node in serving if node.diverged)

    with counts_lock:
        latest_token = counts["latest_token"]
    ryw_ok = True
    for node in serving:
        try:
            node.read(RELATION, token=latest_token or None)
        except ReplicaLagging:
            ryw_ok = False
        try:
            node.read(RELATION, token=final.current_seq + 1)
        except ReplicaLagging as error:
            ryw_ok = ryw_ok and error.retryable
        else:
            ryw_ok = False  # a future token must not be served

    promotion = state["failover"]
    transport_tally = {
        name.rsplit(".", 1)[1]: count
        for name, count in sorted(metrics.items())
        if name.startswith("replication.transport.")}

    return ReplicatedReport(
        writers=writers,
        transactions_per_writer=transactions,
        replicas=replicas,
        attempted=counts["attempted"],
        committed=committed,
        shed=counts["shed"],
        deadline_exceeded=counts["deadline_exceeded"],
        failed=counts["failed"],
        wall_s=round(wall, 6),
        failover_performed=promotion is not None,
        promoted_prefix_verified=(promotion.prefix_verified
                                  if promotion is not None else None),
        final_epoch=final.epoch,
        applied_increments=applied,
        lost_durable_commits=lost,
        replicas_converged=converged,
        replica_applied={node.node_id: node.applied_seq
                         for node in serving},
        primary_seq=final.current_seq,
        diverged=diverged,
        read_your_writes_ok=ryw_ok,
        ryw_reads_lagging=counts["ryw_lagging"],
        ryw_reads_served=counts["ryw_served"],
        fenced_rejects=metrics.get("replication.fenced_rejects", 0),
        snapshots_loaded=metrics.get("replication.snapshots_loaded", 0),
        duplicates_dropped=metrics.get("replication.duplicates_dropped", 0),
        gaps_detected=metrics.get("replication.gaps_detected", 0),
        transport=transport_tally,
    )
