"""The serving-layer load generator and chaos harness.

:func:`run_serving` drives many concurrent :class:`~repro.client.
ReproClient` connections through an in-process :class:`~repro.server.
ReproServer` over fault-injectable :class:`~repro.server.chaos.
MemoryPipe` connections — the serving counterpart of
:func:`~repro.workload.stress.run_stress`.  Each client issues a seeded
mix of TQuel writes (unique keys, so acknowledgements are auditable)
and retrieves (streamed in chunks), under per-request deadlines, with
the client's bounded-retry/failover loop doing the error handling.

Chaos comes in two independent flavors:

- **wire faults** (*chaos*): a seeded :class:`~repro.server.chaos.
  ChaosConfig` drops, delays, splits, corrupts and disconnects frame
  lines in both directions;
- **failover** (*failover_at*): once that many writes are
  acknowledged, the primary server is killed (drained with a token
  grace period — in-flight work aborts with typed retryable errors),
  the first replica is promoted through
  :class:`~repro.replication.failover.FailoverCoordinator`, and a new
  server over the promoted database takes the standby endpoint; the
  clients fail over to it mid-run.

The audit (:attr:`ServingReport.ok`):

- **zero lost acknowledged writes**: every key whose ``done`` frame a
  client received is present in the final state — across the kill,
  the promotion, and every injected fault;
- **read-your-writes across failover**: token-gated ``ryw`` retrieves
  of a client's own fresh write always see it;
- **typed failures only**: everything that fails, fails with a
  :class:`~repro.errors.ReproError` (no raw socket exceptions, no
  hangs, no mystery states).
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import time
from typing import Any, Dict, List, Optional, Tuple, Type

from repro import obs
from repro.client import ReproClient
from repro.concurrency.retry import RetryPolicy
from repro.core.base import Database
from repro.core.temporal import TemporalDatabase
from repro.errors import (ConstraintViolation, DeadlineExceeded,
                          DrainingError, Overloaded, ReproError,
                          TransportError)
from repro.relational.domain import Domain
from repro.relational.schema import Schema
from repro.server import ChaosConfig, ReproServer, ServerConfig, open_pipe
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant
from repro.workload.generators import EPOCH

RELATION = "counters"
_BASE = Instant.from_chronon(EPOCH)


@dataclasses.dataclass
class ServingReport:
    """What one :func:`run_serving` run did, and whether it held up."""

    clients: int
    requests_per_client: int
    attempted: int
    succeeded: int
    shed: int
    drained: int
    deadline_exceeded: int
    transport_failures: int
    failed: int
    #: Exceptions that were not typed :class:`ReproError`\\ s — must be
    #: zero: the wire contract promises typed failures only.
    unexpected_failures: int
    wall_s: float
    #: Requests completed per wall-clock second.
    throughput_rps: float
    #: Client-observed latency of succeeded requests (µs, nearest rank).
    latency_p50_us: float
    latency_p95_us: float
    latency_p99_us: float
    #: Writes a client saw acknowledged (a ``done`` frame arrived).
    acked_writes: int
    #: Acked writes absent from the final state — must be zero.
    acked_writes_lost: int
    #: Retried writes acknowledged via the key constraint (the first
    #: attempt had landed; the reply was lost to chaos).
    duplicate_acks: int
    ryw_checks: int
    ryw_violations: int
    failover_performed: bool
    client_retries: int
    client_failovers: int
    #: Server tallies summed over every server that ran.
    server: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Injected wire faults (``server.chaos.*`` counters).
    chaos: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """All audited invariants held."""
        return (self.acked_writes_lost == 0
                and self.ryw_violations == 0
                and self.unexpected_failures == 0)

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro loadgen --json`` prints)."""
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data


def _define_relation(database: Database) -> None:
    schema = Schema.of(key=["k"], k=Domain.STRING, v=Domain.STRING)
    database.define(RELATION, schema)


def _percentile_us(sorted_seconds: List[float], quantile: float) -> float:
    """Nearest-rank percentile over pre-sorted seconds, in microseconds."""
    if not sorted_seconds:
        return 0.0
    index = min(len(sorted_seconds) - 1,
                int(quantile * len(sorted_seconds)))
    return round(sorted_seconds[index] * 1e6, 1)


def _append_source(key: str, historical: bool) -> str:
    # Valid since the epoch the simulated clock starts at, so the
    # current-state snapshot the audit reads actually contains the row.
    clause = ' valid from "01/01/80"' if historical else ""
    return f'append to {RELATION} (k = "{key}", v = "1"){clause}'


def run_serving(clients: int = 6, requests: int = 20, seed: int = 0,
                write_ratio: float = 0.5, budget_ms: float = 5000.0,
                chaos: Optional[ChaosConfig] = None,
                replicas: int = 0,
                failover_at: Optional[int] = None,
                tenants: Tuple[str, ...] = ("default",),
                ryw_ratio: float = 0.3,
                config: Optional[ServerConfig] = None,
                kind: Type[Database] = TemporalDatabase) -> ServingReport:
    """Drive *clients* concurrent connections; audit the wreckage.

    Each client issues *requests* seeded statements (*write_ratio*
    writes of unique keys, the rest retrieves — a slice of them
    token-gated ``ryw`` reads of the client's own last write) under a
    *budget_ms* deadline per request.  *chaos* injects wire faults;
    *failover_at* (requires ``replicas >= 1``) kills the primary server
    mid-run and promotes a replica.  Deterministic under a fixed seed
    except for event-loop interleaving; the audited invariants hold for
    every interleaving.
    """
    if failover_at is not None and replicas < 1:
        raise ValueError("failover_at needs at least one replica")
    return asyncio.run(_run_async(
        clients=clients, requests=requests, seed=seed,
        write_ratio=write_ratio, budget_ms=budget_ms, chaos=chaos,
        replicas=replicas, failover_at=failover_at, tenants=tenants,
        ryw_ratio=ryw_ratio, config=config, kind=kind))


async def _run_async(clients: int, requests: int, seed: int,
                     write_ratio: float, budget_ms: float,
                     chaos: Optional[ChaosConfig], replicas: int,
                     failover_at: Optional[int],
                     tenants: Tuple[str, ...], ryw_ratio: float,
                     config: Optional[ServerConfig],
                     kind: Type[Database]) -> ServingReport:
    config = config or ServerConfig(idle_timeout=10.0,
                                    write_stall_timeout=2.0,
                                    retry_seed=seed)
    database = kind(clock=SimulatedClock(_BASE))
    historical = database.kind.supports_historical_queries

    replica_nodes: List[Any] = []
    primary_wrapper = None
    transport = None
    if replicas > 0:
        from repro.replication import FaultyTransport, Primary, Replica
        transport = FaultyTransport(seed=seed)
        primary_wrapper = Primary("primary", database, transport)
        for index in range(replicas):
            node = Replica(f"replica-{index}", kind, transport, "primary")
            primary_wrapper.add_replica(node.node_id)
            node.request_catchup()
            replica_nodes.append(node)
    _define_relation(database)

    state: Dict[str, Any] = {
        "servers": {"primary": ReproServer(database, config,
                                           replicas=replica_nodes),
                    "standby": None},
        "primary_node": primary_wrapper,
        "serving_nodes": list(replica_nodes),
        "final_db": database,
        "failover_done": False,
        "connection_seq": 0,
    }
    all_servers: List[ReproServer] = [state["servers"]["primary"]]

    async def connector(endpoint: str) -> Tuple[Any, Any]:
        server = state["servers"].get(endpoint)
        if server is None or server.draining:
            raise ConnectionRefusedError(f"{endpoint} is not serving")
        state["connection_seq"] += 1
        client_end, server_end = open_pipe(
            chaos=chaos, name=f"{endpoint}:{state['connection_seq']}")
        asyncio.ensure_future(
            server.handle_connection(server_end, server_end))
        return client_end, client_end

    counts = {"attempted": 0, "succeeded": 0, "shed": 0, "drained": 0,
              "deadline_exceeded": 0, "transport_failures": 0,
              "failed": 0, "unexpected": 0, "duplicate_acks": 0,
              "ryw_checks": 0, "ryw_violations": 0}
    acked: set = set()
    latencies: List[float] = []
    client_objects: List[ReproClient] = []

    async def kill_and_promote() -> None:
        """The chaos centerpiece: kill the primary server mid-run."""
        from repro.replication import FailoverCoordinator
        old_server = state["servers"]["primary"]
        state["servers"]["primary"] = None  # refuse new connections now
        await old_server.drain(grace=0.05)
        victim = state["serving_nodes"][0]
        others = state["serving_nodes"][1:]
        promoted, _promotion = FailoverCoordinator(transport).promote(
            victim, old_primary=state["primary_node"],
            replicas=[node.node_id for node in others])
        standby = ReproServer(promoted.database, config, replicas=others)
        state["primary_node"] = promoted
        state["serving_nodes"] = others
        state["servers"]["standby"] = standby
        state["final_db"] = promoted.database
        state["failover_done"] = True
        all_servers.append(standby)

    async def failover_watcher() -> None:
        while not state["failover_done"]:
            if len(acked) >= failover_at:
                await kill_and_promote()
                return
            await asyncio.sleep(0.002)

    async def pumper(stop: asyncio.Event) -> None:
        beat = 0
        while not stop.is_set():
            node = state["primary_node"]
            if node is not None:
                node.pump()
                if beat % 5 == 0:
                    node.heartbeat()
            for replica in state["serving_nodes"]:
                replica.pump()
            beat += 1
            await asyncio.sleep(0.002)

    async def run_client(index: int) -> None:
        rng = random.Random((seed << 16) ^ index)
        client = ReproClient(
            ["primary", "standby"], connector=connector,
            retry=RetryPolicy(max_attempts=8, base_delay=0.005,
                              max_delay=0.1, seed=(seed << 8) ^ index),
            tenant=tenants[index % len(tenants)],
            preamble=[f"range of c is {RELATION}"])
        client_objects.append(client)

        async def one(source: str, consistency: str = "primary"):
            begun = time.monotonic()
            result = await client.query(source, budget_ms=budget_ms,
                                        consistency=consistency)
            latencies.append(time.monotonic() - begun)
            return result

        for step in range(requests):
            key = f"c{index}-{step}"
            is_write = rng.random() < write_ratio
            counts["attempted"] += 1
            try:
                if is_write:
                    try:
                        await one(_append_source(key, historical))
                    except ConstraintViolation:
                        # The first attempt landed; the ack was lost to
                        # chaos and the retry hit the key constraint.
                        # That *is* an acknowledgement.
                        counts["duplicate_acks"] += 1
                    acked.add(key)
                    counts["succeeded"] += 1
                    if rng.random() < ryw_ratio:
                        counts["ryw_checks"] += 1
                        mode = "ryw" if replicas else "primary"
                        result = await one(
                            f'retrieve (c.k, c.v) where c.k = "{key}"',
                            consistency=mode)
                        seen = {row["values"].get("k")
                                for row in result.rows}
                        if key not in seen:
                            counts["ryw_violations"] += 1
                else:
                    mode = "replica" if replicas else "primary"
                    await one("retrieve (c.k, c.v)", consistency=mode)
                    counts["succeeded"] += 1
            except Overloaded:
                counts["shed"] += 1
            except DrainingError:
                counts["drained"] += 1
            except DeadlineExceeded:
                counts["deadline_exceeded"] += 1
            except (TransportError, ConnectionError, OSError):
                counts["transport_failures"] += 1
            except ReproError:
                counts["failed"] += 1
            except Exception:  # noqa: BLE001 - the audit wants these
                counts["unexpected"] += 1
        await client.close()

    stop_pump = asyncio.Event()
    with obs.recording() as instrumentation:
        started = time.monotonic()
        tasks = [asyncio.ensure_future(run_client(i))
                 for i in range(clients)]
        extras = []
        if replicas:
            extras.append(asyncio.ensure_future(pumper(stop_pump)))
        if failover_at is not None:
            extras.append(asyncio.ensure_future(failover_watcher()))
        await asyncio.gather(*tasks)
        stop_pump.set()
        for extra in extras:
            extra.cancel()
        for server in all_servers:
            if not server.draining:
                await server.drain(grace=0.5)
            server.shutdown()
        wall = time.monotonic() - started
    metrics = instrumentation.metrics.snapshot()["counters"]
    chaos_tally = {name.rsplit(".", 1)[1]: count
                   for name, count in sorted(metrics.items())
                   if name.startswith("server.chaos.")}

    # -- audit ---------------------------------------------------------------
    latencies.sort()
    final_db = state["final_db"]
    present = {row["k"] for row in final_db.snapshot(RELATION)}
    lost = len(acked - present)
    server_tally: Dict[str, int] = {}
    for server in all_servers:
        for name, value in server.stats.items():
            server_tally[name] = server_tally.get(name, 0) + value

    return ServingReport(
        clients=clients,
        requests_per_client=requests,
        attempted=counts["attempted"],
        succeeded=counts["succeeded"],
        shed=counts["shed"],
        drained=counts["drained"],
        deadline_exceeded=counts["deadline_exceeded"],
        transport_failures=counts["transport_failures"],
        failed=counts["failed"],
        unexpected_failures=counts["unexpected"],
        wall_s=round(wall, 6),
        throughput_rps=round(counts["succeeded"] / wall, 3) if wall else 0.0,
        latency_p50_us=_percentile_us(latencies, 0.50),
        latency_p95_us=_percentile_us(latencies, 0.95),
        latency_p99_us=_percentile_us(latencies, 0.99),
        acked_writes=len(acked),
        acked_writes_lost=lost,
        duplicate_acks=counts["duplicate_acks"],
        ryw_checks=counts["ryw_checks"],
        ryw_violations=counts["ryw_violations"],
        failover_performed=state["failover_done"],
        client_retries=sum(c.stats["retries"] for c in client_objects),
        client_failovers=sum(c.stats["failovers"]
                             for c in client_objects),
        server=server_tally,
        chaos=chaos_tally,
    )
