"""Stress and chaos harness for the sharded store.

:func:`run_sharded` hammers a :class:`~repro.sharding.store.
ShardedDatabase` from many concurrent sessions and audits the paper's
invariants over the wreckage, exactly as :func:`~repro.workload.stress.
run_stress` does for the single-pipeline store — plus the two properties
sharding adds:

- **throughput**: per-worker **disjoint** key sets make the workload
  embarrassingly parallel in principle; how close the store gets is the
  reported ``tps`` (the ``sharding`` benchmark sweeps it against the
  1-shard baseline, where every session contends on the same pipeline
  and relation version);
- **cross-shard atomicity**: a fraction of transactions are two-key
  *transfers* (+1 on one key, −1 on another, usually on different
  shards).  A transfer conserves the counter sum, so a torn cross-shard
  commit — one half applied without the other — shows up as a nonzero
  ``sum_delta`` no matter which half survived.

The audit: zero lost updates (counter sum equals acknowledged single
increments exactly; transfers net out), per-shard monotone commit
times, per-shard serial-replay equivalence, and — in chaos mode — the
sharded durable-prefix rule: each shard's recovered journal is a prefix
of that shard's in-memory history, except that a *decided* cross-shard
transaction may additionally be re-applied at the tail by recovery
(matched by its operations against the prepare log; see
docs/SHARDING.md's recovery rules).
"""

from __future__ import annotations

import dataclasses
import json
import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro import obs
from repro.concurrency import AdmissionController, RetryPolicy
from repro.core.base import Database
from repro.core.static import StaticDatabase
from repro.errors import DeadlineExceeded, Overloaded, ReproError
from repro.obs.metrics import quantile
from repro.relational.domain import Domain
from repro.relational.schema import Schema
from repro.replication.transport import InProcessTransport
from repro.sharding.durability import ShardedDurabilityManager
from repro.sharding.replication import (ShardedPrimary, ShardedReplica,
                                        combined_digest)
from repro.sharding.store import ShardedDatabase
from repro.storage.faults import CrashPoint, FaultyIO, SimulatedCrash
from repro.storage.journal import encode_operation
from repro.time.clock import SimulatedClock
from repro.time.instant import Instant
from repro.workload.generators import EPOCH
from repro.workload.stress import _DeadAfterCrashIO

RELATION = "counters"
_BASE = Instant.from_chronon(EPOCH)


@dataclasses.dataclass
class ShardedStressReport:
    """What one :func:`run_sharded` run did, and whether it held up."""

    shards: int
    sessions: int
    transactions_per_session: int
    cross_ratio: float
    #: ``"scattered"`` or ``"aligned"`` (see :func:`_worker_keys`).
    placement: str
    attempted: int
    committed: int
    #: Committed transactions that actually spanned >1 shard (measured,
    #: not requested: two keys may hash to the same shard).
    cross_shard_commits: int
    conflicts: int
    shed: int
    deadline_exceeded: int
    crashed: int
    failed: int
    wall_s: float
    #: Committed transactions per wall-clock second.
    tps: float
    #: Commit-to-commit latency quantiles over successful transactions.
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    applied_sum: int
    expected_sum: int
    #: ``applied − expected``; 0 in clean runs.  In chaos runs an
    #: unacknowledged-but-durable transaction may legally push it up,
    #: bounded by the unacknowledged count (see ``ok``).
    sum_delta: int
    lost_updates: int
    commit_times_monotone: bool
    serial_equivalent: bool
    #: Chaos mode only.
    crash_injected: Optional[str] = None
    recovered_records: Optional[int] = None
    recovery_reapplied: Optional[int] = None
    recovery_in_doubt_aborted: Optional[int] = None
    recovery_is_durable_prefix: Optional[bool] = None
    #: Chaos mode: acknowledged single increments vs the slack allowed
    #: for unacknowledged ones (diagnostic bounds for ``sum_delta``).
    unacknowledged: Optional[int] = None
    #: Per-shard pipeline counters from the run's metrics registry
    #: (``shard.<i>.commits`` / ``shard.<i>.conflicts``; chaos runs add
    #: ``journal_bytes`` and ``records`` from the recovered directory).
    per_shard: List[Dict[str, int]] = dataclasses.field(
        default_factory=list)
    #: Replication mode (``replicas > 0``) only.
    replicas: int = 0
    replica_records_applied: Optional[int] = None
    #: Every shard replica reached its primary's published head.
    replica_converged: Optional[bool] = None
    #: Combined replica digest equals the live store's (clean runs only;
    #: a crash legally strands unpublished commits on the primary).
    replica_digest_match: Optional[bool] = None
    #: The txn id of one committed cross-shard transfer — the handle
    #: ``repro trace --txn`` reconstructs the full lifecycle from.
    sample_cross_txn: Optional[str] = None
    #: Per-operation-class SLO health over the run (``slo["ok"]`` is
    #: advisory: objectives judge latency, not correctness).
    slo: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Where the span / event JSONL exports landed, when requested.
    trace_path: Optional[str] = None
    events_path: Optional[str] = None
    spans_dropped: int = 0
    events_dropped: int = 0

    @property
    def ok(self) -> bool:
        """All audited invariants held."""
        if self.crash_injected is None:
            exact = self.sum_delta == 0
        else:
            # A transaction that failed at the client may still be
            # durable (the decision landed, the ack did not) — the
            # classic in-doubt outcome.  It may add increments, never
            # remove them, and never more than the unacknowledged count.
            exact = 0 <= self.sum_delta <= (self.unacknowledged or 0)
        return (exact and self.lost_updates == 0
                and self.commit_times_monotone and self.serial_equivalent
                and self.recovery_is_durable_prefix is not False
                and self.replica_converged is not False
                and self.replica_digest_match is not False)

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what the CLI and benchmark emit)."""
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data


def _define_counters(store: ShardedDatabase, keys: List[str]) -> None:
    schema = Schema.of(key=["k"], k=Domain.STRING, v=Domain.INTEGER)
    store.define(RELATION, schema)
    historical = store.kind.supports_historical_queries
    with store.begin() as txn:
        for key in keys:
            if historical:
                store.insert(RELATION, {"k": key, "v": 0},
                             valid_from=_BASE, txn=txn)
            else:
                store.insert(RELATION, {"k": key, "v": 0}, txn=txn)


def _shard_serial_replay_matches(shard_db: Database,
                                 kind: Type[Database]) -> bool:
    """Replay one shard's log serially into a fresh database; compare."""
    reference = kind(clock=SimulatedClock(_BASE))
    ref_clock = reference.manager.clock.source
    for record in shard_db.log:
        ref_clock.set(record.commit_time)
        actual = reference.manager.run(list(record.operations))
        if actual != record.commit_time:
            return False
    return (reference.snapshot(RELATION) == shard_db.snapshot(RELATION)
            and len(reference.log) == len(shard_db.log))


def _ops_key(operations) -> Tuple[str, ...]:
    """A comparable fingerprint of an operation batch (order preserved)."""
    return tuple(json.dumps(encode_operation(op), sort_keys=True)
                 for op in operations)


def _sharded_prefix_ok(manager: ShardedDurabilityManager,
                       recovered: ShardedDatabase,
                       live: ShardedDatabase) -> bool:
    """The sharded durable-prefix audit (module docstring)."""
    decided_ops: set = set()
    committed_gids = {
        entry["gid"] for entry in manager._decisions.read(recover=True)
        if entry.get("kind") == "decision"
        and entry.get("decision") == "commit"}
    for sid in range(manager.shards):
        for entry in manager._prepares[sid].read(recover=True):
            if (entry.get("kind") == "prepare"
                    and entry["gid"] in committed_gids):
                fingerprint = tuple(json.dumps(op, sort_keys=True)
                                    for op in entry["operations"])
                decided_ops.add((sid, fingerprint))
    for sid, (rec_db, live_db) in enumerate(
            zip(recovered.shard_databases, live.shard_databases)):
        durable = list(rec_db.log)
        in_memory = list(live_db.log)
        matched = 0
        for d, m in zip(durable, in_memory):
            if (d.commit_time == m.commit_time
                    and _ops_key(d.operations) == _ops_key(m.operations)):
                matched += 1
            else:
                break
        # Anything past the common prefix must be a re-applied decided
        # cross-shard batch (fresh commit time, same operations).
        for record in durable[matched:]:
            if (sid, _ops_key(record.operations)) not in decided_ops:
                return False
    return True


def _worker_keys(store: ShardedDatabase, sessions: int,
                 keys_per_session: int, placement: str) -> List[List[str]]:
    """Disjoint per-worker key sets, placed per *placement*.

    ``"scattered"``: worker *w* owns ``w<w>k0 …`` and its keys hash
    wherever crc32 sends them — every worker touches every shard.
    ``"aligned"``: worker *w*'s keys are filtered (by the same stable
    hash, so the choice survives restarts) to all live on shard
    ``w % shards`` — the well-partitioned deployment, where workload
    partitioning matches data partitioning and workers on different
    shards share nothing, not even a lock.
    """
    if placement == "scattered":
        return [[f"w{w}k{i}" for i in range(keys_per_session)]
                for w in range(sessions)]
    if placement != "aligned":
        raise ValueError(f"unknown placement {placement!r}")
    partitioner = store.partitioner
    worker_keys: List[List[str]] = []
    for w in range(sessions):
        target = w % store.shards
        keys: List[str] = []
        candidate = 0
        while len(keys) < keys_per_session:
            key = f"w{w}k{candidate}"
            if partitioner.shard_of_key([key]) == target:
                keys.append(key)
            candidate += 1
        worker_keys.append(keys)
    return worker_keys


def run_sharded(kind: Type[Database] = StaticDatabase,
                shards: int = 4, sessions: int = 8,
                transactions: int = 100, keys_per_session: int = 16,
                cross_ratio: float = 0.1, seed: int = 0,
                placement: str = "scattered",
                retry: Optional[RetryPolicy] = None,
                admission: Optional[AdmissionController] = None,
                timeout: Optional[float] = None,
                faults: Optional[CrashPoint] = None,
                fault_at: int = 50,
                directory: Optional[str] = None,
                work: Optional[Callable[[], None]] = None,
                replicas: int = 0,
                trace_out: Optional[str] = None,
                events_out: Optional[str] = None,
                convergence_rounds: int = 512,
                ) -> ShardedStressReport:
    """Hammer a fresh sharded store from *sessions* threads; audit it.

    Worker *w* owns *keys_per_session* keys disjoint from every other
    worker's (*placement* picks whether they scatter over all shards or
    align with one — :func:`_worker_keys`), so on a sharded store its
    transactions conflict with nobody at the key level; only shard-
    granularity footprint collisions remain.  Each transaction is
    either a single-key increment (via the targeted
    :meth:`ShardedSession.get
    <repro.sharding.session.ShardedSession.get>` read, keeping the
    footprint on one shard) or, with probability *cross_ratio*, a
    two-key transfer between the worker's own keys — which spans shards
    and exercises the 2PC path when the keys hash apart (under
    ``"aligned"`` placement they never do; use ``"scattered"`` for a
    cross-shard mix).  ``faults``/*directory* switch to chaos mode over
    a :class:`~repro.sharding.durability.ShardedDurabilityManager`
    whose I/O dies at the *fault_at*-th matching write — wherever that
    lands: a shard journal append, a prepare, or the decision record.

    *replicas* > 0 attaches a :class:`~repro.sharding.replication.
    ShardedPrimary` (chained *after* any durability hook, so published
    ⊆ durable) streaming to that many :class:`ShardedReplica` followers
    over an in-process transport; after the workers join, the streams
    are pumped to convergence and audited.  *trace_out* / *events_out*
    export the run's spans and lifecycle events as JSONL (the recording
    capacities are raised so a full run fits) — together with the
    reported ``sample_cross_txn`` these feed ``repro trace --txn``.
    """
    if retry is None:
        retry = RetryPolicy(max_attempts=10 * max(sessions, 2),
                            base_delay=0.0002, max_delay=0.002,
                            jitter=0.5, seed=seed)
    if admission is None:
        admission = AdmissionController(max_active=max(2, sessions),
                                        max_queue=4 * sessions)

    manager: Optional[ShardedDurabilityManager] = None
    if faults is not None and directory is None:
        raise ValueError("chaos mode (faults=) needs a directory")
    if directory is not None:
        # Durable mode; with ``faults`` the I/O additionally dies at the
        # injected crash point (chaos mode).
        io = (_DeadAfterCrashIO(FaultyIO(faults, at=fault_at))
              if faults is not None else None)
        manager = ShardedDurabilityManager(directory, shards=shards, io=io)
        store, _ = manager.recover(kind)
        for shard_db in store.shard_databases:
            shard_db.manager.clock.source.set(_BASE)
    else:
        store = ShardedDatabase(kind, shards=shards,
                                clock=SimulatedClock(_BASE))

    worker_keys = _worker_keys(store, sessions, keys_per_session, placement)
    _define_counters(store, [key for keys in worker_keys for key in keys])

    # The primary chains onto each shard manager's ``on_commit`` *after*
    # the durability hook, so a record is never on the wire before it is
    # on disk; attached before the workers start so every commit ships
    # live, with its trace context on the record.
    primary: Optional[ShardedPrimary] = None
    replica_set: List[ShardedReplica] = []
    if replicas > 0:
        transport = InProcessTransport()
        primary = ShardedPrimary("primary", store, transport)
        for index in range(replicas):
            follower = ShardedReplica(f"replica-{index}", kind, transport,
                                      "primary", shards=shards)
            primary.add_replica(follower)
            follower.request_catchup()
            replica_set.append(follower)

    layer = store.sessions(retry=retry, admission=admission)

    # A full run's lifecycle must fit in the rings when it is being
    # exported or replicated — an evicted span would orphan part of the
    # sample transaction's tree.
    span_capacity, event_capacity = 2048, 4096
    if trace_out is not None or events_out is not None or replicas > 0:
        budget = max(1, sessions * transactions)
        span_capacity = max(span_capacity, budget * 48)
        event_capacity = max(event_capacity, budget * 24)

    counts_lock = threading.Lock()
    counts = {"attempted": 0, "committed": 0, "shed": 0,
              "deadline_exceeded": 0, "crashed": 0, "failed": 0,
              "singles": 0, "cross_committed": 0}
    latencies: List[float] = []
    sample = {"txn": None}
    stop = threading.Event()

    # *work* (think-time) runs between the read and the write — the
    # window where a competing commit invalidates the footprint — so a
    # GIL-yielding hook forces real interleaving instead of leaving
    # contention to scheduler-quantum luck.
    def transfer_closure(key_a: str, key_b: str, txn_box: Dict[str, str]):
        def closure(session) -> None:
            txn_box["txn"] = session.txn_id
            row_a = session.get(RELATION, {"k": key_a})[0]
            row_b = session.get(RELATION, {"k": key_b})[0]
            if work is not None:
                work()
            session.replace(RELATION, {"k": key_a},
                            {"v": row_a["v"] + 1})
            session.replace(RELATION, {"k": key_b},
                            {"v": row_b["v"] - 1})
        return closure

    def increment_closure(key: str):
        def closure(session) -> None:
            row = session.get(RELATION, {"k": key})[0]
            if work is not None:
                work()
            session.replace(RELATION, {"k": key}, {"v": row["v"] + 1})
        return closure

    def worker(worker_index: int) -> None:
        rng = random.Random((seed << 16) ^ worker_index)
        keys = worker_keys[worker_index]
        for _ in range(transactions):
            if stop.is_set():
                return
            is_cross = rng.random() < cross_ratio
            txn_box: Dict[str, str] = {}
            if is_cross:
                key_a, key_b = rng.sample(keys, 2)
                closure = transfer_closure(key_a, key_b, txn_box)
                spans = (store.shard_of_key(RELATION, {"k": key_a})
                         != store.shard_of_key(RELATION, {"k": key_b}))
            else:
                closure = increment_closure(keys[rng.randrange(len(keys))])
                spans = False
            outcome = "committed"
            started = time.monotonic()
            try:
                layer.run(closure, timeout=timeout)
            except Overloaded:
                outcome = "shed"
            except DeadlineExceeded:
                outcome = "deadline_exceeded"
            except SimulatedCrash:
                outcome = "crashed"
                stop.set()
            except ReproError:
                outcome = "failed"
            elapsed = time.monotonic() - started
            with counts_lock:
                counts["attempted"] += 1
                counts[outcome] += 1
                if outcome == "committed":
                    latencies.append(elapsed)
                    if not is_cross:
                        counts["singles"] += 1
                    if spans:
                        counts["cross_committed"] += 1
                        if sample["txn"] is None:
                            sample["txn"] = txn_box.get("txn")

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(sessions)]
    replica_applied: Optional[int] = None
    converged: Optional[bool] = None
    digest_match: Optional[bool] = None
    with obs.recording(capacity=span_capacity,
                       event_capacity=event_capacity) as instrumentation:
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - started
        if primary is not None:
            # Pump inside the recording window so replica-apply spans
            # (parented via the wire trace context) land in the ring.
            replica_applied = 0
            for _ in range(convergence_rounds):
                primary.pump()
                replica_applied += sum(follower.pump()
                                       for follower in replica_set)
                if all(follower.applied_vector() == primary.current_vector()
                       for follower in replica_set):
                    break
            converged = all(
                follower.applied_vector() == primary.current_vector()
                for follower in replica_set)
            if faults is None:
                # A crash legally strands journaled-but-unpublished
                # commits on the primary, so state equality is only a
                # clean-run invariant.
                live = combined_digest(store.shard_databases)
                digest_match = all(follower.digest() == live
                                   for follower in replica_set)
    metrics = instrumentation.metrics.snapshot()["counters"]

    if trace_out is not None:
        instrumentation.tracer.export_jsonl(trace_out)
    if events_out is not None:
        instrumentation.events.export_jsonl(events_out)
    slo_health = instrumentation.slo.health()

    # -- audit ---------------------------------------------------------------
    applied = sum(row["v"] for row in store.snapshot(RELATION))
    expected = counts["singles"]
    delta = applied - expected
    monotone = True
    serial_ok = True
    for shard_db in store.shard_databases:
        times = [record.commit_time for record in shard_db.log]
        monotone = monotone and all(
            a < b for a, b in zip(times, times[1:]))
        serial_ok = serial_ok and _shard_serial_replay_matches(
            shard_db, kind)

    per_shard = [
        {"shard": sid,
         "commits": metrics.get(f"shard.{sid}.commits", 0),
         "conflicts": metrics.get(f"shard.{sid}.conflicts", 0)}
        for sid in range(shards)
    ]

    recovered_records: Optional[int] = None
    reapplied: Optional[int] = None
    in_doubt: Optional[int] = None
    prefix_ok: Optional[bool] = None
    unacknowledged: Optional[int] = None
    if faults is not None:
        fresh = ShardedDurabilityManager(directory)
        recovered, report = fresh.recover(kind)
        for sid, stats in enumerate(fresh.shard_stats()["per_shard"]):
            per_shard[sid]["journal_bytes"] = stats["journal_bytes"]
            per_shard[sid]["records"] = stats["records"]
        recovered_records = report.describe()["records_total"]
        reapplied = report.reapplied
        in_doubt = report.in_doubt_aborted
        prefix_ok = _sharded_prefix_ok(fresh, recovered, store)
        unacknowledged = counts["crashed"] + counts["failed"]
        # In chaos mode the authoritative state is the recovered one;
        # audit the sum there.  An acknowledged commit journaled before
        # the ack, so the recovered sum can never fall short of the
        # acknowledged singles — a negative delta is a lost update.  It
        # may exceed them: a transaction whose decision became durable
        # before its error is applied by recovery without an ack.
        applied = sum(row["v"] for row in recovered.snapshot(RELATION))
        delta = applied - expected
        serial_ok = serial_ok and all(
            _shard_serial_replay_matches(shard_db, kind)
            for shard_db in recovered.shard_databases)

    if latencies:
        ordered = sorted(latencies)
        p50 = quantile(ordered, 0.50)
        p95 = quantile(ordered, 0.95)
        p99 = quantile(ordered, 0.99)
    else:
        p50 = p95 = p99 = 0.0

    return ShardedStressReport(
        shards=shards,
        sessions=sessions,
        transactions_per_session=transactions,
        cross_ratio=cross_ratio,
        placement=placement,
        attempted=counts["attempted"],
        committed=counts["committed"],
        cross_shard_commits=counts["cross_committed"],
        conflicts=metrics.get("concurrency.conflicts", 0),
        shed=counts["shed"],
        deadline_exceeded=counts["deadline_exceeded"],
        crashed=counts["crashed"],
        failed=counts["failed"],
        wall_s=round(wall, 6),
        tps=round(counts["committed"] / wall, 3) if wall > 0 else 0.0,
        latency_p50_s=round(p50, 6),
        latency_p95_s=round(p95, 6),
        latency_p99_s=round(p99, 6),
        applied_sum=applied,
        expected_sum=expected,
        sum_delta=delta,
        lost_updates=max(0, -delta),
        commit_times_monotone=monotone,
        serial_equivalent=serial_ok,
        crash_injected=faults.value if faults is not None else None,
        recovered_records=recovered_records,
        recovery_reapplied=reapplied,
        recovery_in_doubt_aborted=in_doubt,
        recovery_is_durable_prefix=prefix_ok,
        unacknowledged=unacknowledged,
        per_shard=per_shard,
        replicas=replicas,
        replica_records_applied=replica_applied,
        replica_converged=converged,
        replica_digest_match=digest_match,
        sample_cross_txn=sample["txn"],
        slo=slo_health,
        trace_path=trace_out,
        events_path=events_out,
        spans_dropped=instrumentation.tracer.spans_dropped,
        events_dropped=instrumentation.events.dropped,
    )
