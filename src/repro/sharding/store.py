"""The sharded database: one logical store over N per-shard databases.

A :class:`ShardedDatabase` presents the same surface as a single
:class:`~repro.core.base.Database` of any of the four taxonomy kinds —
``define``/``drop``, the kind's DML (valid-time keywords included),
``begin()`` transactions, ``snapshot``/``rollback``/``timeslice``/
``history`` queries, ``sessions()`` — but stores every relation
partitioned by primary key across N independent shard databases
(:mod:`repro.sharding.partition`).  Each shard is a complete database of
the same kind with its *own* transaction manager, commit lock, clock,
commit log, journal stream and index cache, which is the whole point:
transactions that touch one shard commit through that shard's pipeline
alone, in parallel with every other shard (docs/SHARDING.md).

Semantics kept, and one deliberately weakened:

- **Schemas are global.**  DDL broadcasts — every shard holds every
  relation's schema — so routing can always consult shard 0's catalog.
- **Set semantics are exact.**  A row's key hashes to exactly one shard,
  so merged snapshots contain each logical row once; key constraints
  hold globally because both rows of any would-be duplicate key land on
  the same shard.
- **Declared non-key constraints become per-shard.**  A check constraint
  sees only its shard's rows; cross-row predicates (e.g. aggregates)
  therefore weaken to per-shard assertions — the documented trade.
- **Transaction time is per-shard.**  Each shard's clock assigns its own
  strictly-increasing commit times.  A cross-shard transaction's parts
  commit at slightly different instants on different shards, so a
  ``rollback`` *as of* an instant inside that tiny window can see the
  transaction on some shards and not others.  Current-state reads are
  never affected (the coordinator's consistent cuts cover them); the
  2PC decision log remains the authority on atomicity after a crash.
"""

from __future__ import annotations

import threading
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple as PyTuple, Type)

from repro.core.base import Database, InstantLike
from repro.core.temporal import TemporalDatabase
from repro.errors import DuplicateRelationError, ShardConfigError
from repro.obs import runtime as _obs
from repro.relational.constraints import Constraint
from repro.relational.schema import Schema
from repro.sharding.coordinator import ShardCoordinator
from repro.sharding.partition import Partitioner
from repro.time.clock import Clock
from repro.time.instant import Instant
from repro.txn.log import CommitRecord
from repro.txn.transaction import Operation, Transaction


class _OpRecorder:
    """A ``txn=`` stand-in that captures operations instead of running them.

    The kind databases validate arguments and build the
    :class:`Operation` inside their DML methods, then hand it to
    ``txn.add`` when a transaction is given.  Passing a recorder reuses
    all of that validation while leaving the commit to the sharded
    router.
    """

    __slots__ = ("ops",)

    def __init__(self) -> None:
        self.ops: List[Operation] = []

    def add(self, operation: Operation) -> None:
        self.ops.append(operation)


class ShardLog:
    """A read-only, merged view of the per-shard commit logs.

    ``len()`` is the total commit count; iteration yields every shard's
    records ordered by commit time (ties broken by shard id), which is a
    *possible* serial order — per-shard order is exact, cross-shard
    interleaving is reconstructed from timestamps.  :meth:`vector` is
    the per-shard log lengths: the sharded store's commit token
    (docs/SHARDING.md).
    """

    def __init__(self, shard_dbs: Sequence[Database]) -> None:
        self._shards = shard_dbs

    def vector(self) -> PyTuple[int, ...]:
        """Per-shard commit counts — the vector commit token."""
        return tuple(len(db.log) for db in self._shards)

    def __len__(self) -> int:
        return sum(len(db.log) for db in self._shards)

    def __iter__(self):
        tagged: List[PyTuple[Instant, int, CommitRecord]] = []
        for sid, db in enumerate(self._shards):
            for record in db.log.records:
                tagged.append((record.commit_time, sid, record))
        tagged.sort(key=lambda item: (item[0], item[1]))
        return iter([record for _, _, record in tagged])

    @property
    def records(self):
        """The merged records, oldest commit time first."""
        return tuple(self)

    def __repr__(self) -> str:
        return f"ShardLog({self.vector()})"


class ShardedDatabase:
    """One logical database of any kind, hash-partitioned over N shards.

    ``factory`` is the kind class (:class:`TemporalDatabase` by
    default); each shard is ``factory(clock=clock, index=index)``, all
    sharing the base *clock* but each owning its transaction clock and
    manager.  Use :meth:`from_shards` to wrap pre-built shard databases
    (recovery does).
    """

    def __init__(self, factory: Type[Database] = TemporalDatabase,
                 shards: int = 4, clock: Optional[Clock] = None,
                 index: bool = True) -> None:
        shard_dbs = [factory(clock=clock, index=index)
                     for _ in range(shards)]
        self._init_from(shard_dbs)

    @classmethod
    def from_shards(cls, shard_dbs: Sequence[Database]) -> "ShardedDatabase":
        """Wrap existing per-shard databases (they must agree on kind)."""
        if not shard_dbs:
            raise ShardConfigError("a sharded store needs at least 1 shard")
        kinds = {type(db) for db in shard_dbs}
        if len(kinds) > 1:
            raise ShardConfigError(
                f"shards disagree on database kind: "
                f"{sorted(k.__name__ for k in kinds)}")
        store = cls.__new__(cls)
        store._init_from(list(shard_dbs))
        return store

    def _init_from(self, shard_dbs: List[Database]) -> None:
        self._shards = shard_dbs
        self.partitioner = Partitioner(len(shard_dbs))
        self.coordinator = ShardCoordinator(shard_dbs, self.partitioner)
        self._log = ShardLog(shard_dbs)
        self._txn_lock = threading.Lock()
        self._next_txn_id = 1

    # -- shape ------------------------------------------------------------------

    @property
    def shards(self) -> int:
        """How many shards the store is partitioned over."""
        return len(self._shards)

    @property
    def shard_databases(self) -> List[Database]:
        """The per-shard databases, in shard order (a copy)."""
        return list(self._shards)

    @property
    def kind(self):
        """The taxonomy kind (shared by every shard)."""
        return self._shards[0].kind

    @property
    def supports_rollback(self) -> bool:
        return self._shards[0].supports_rollback

    @property
    def supports_historical_queries(self) -> bool:
        return self._shards[0].supports_historical_queries

    @property
    def manager(self) -> ShardCoordinator:
        """The coordinator — the store's manager-shaped commit seam."""
        return self.coordinator

    @property
    def log(self) -> ShardLog:
        """The merged commit-log view (per-shard logs stay authoritative)."""
        return self._log

    def now(self) -> Instant:
        """The store's *now*: the latest of the shard clocks."""
        return self.coordinator.now()

    # -- catalog (delegated to shard 0; DDL broadcasts keep all equal) -----------

    def relation_names(self) -> List[str]:
        return self._shards[0].relation_names()

    def schema(self, name: str) -> Schema:
        return self._shards[0].schema(name)

    def constraints(self, name: str) -> PyTuple[Constraint, ...]:
        return self._shards[0].constraints(name)

    def is_event_relation(self, name: str) -> bool:
        return self._shards[0].is_event_relation(name)

    def __contains__(self, name: object) -> bool:
        return name in self._shards[0]

    def shard_of_key(self, name: str, values: Mapping[str, Any]) -> int:
        """The shard owning the row of *name* keyed by *values*.

        Raises :class:`~repro.errors.ShardConfigError` when *values*
        does not pin the relation's full key.
        """
        target = self.partitioner.shard_of_values(
            self.schema(name).key, values)
        if target is None:
            raise ShardConfigError(
                f"values {sorted(values)} do not pin the key "
                f"{list(self.schema(name).key)} of {name!r}")
        return target

    def relation_version(self, name: str) -> int:
        """Committed batches that touched *name*, summed over shards.

        A single-shard commit bumps exactly one shard's counter, so the
        sum moves iff *some* shard's version moved — the relation-level
        conflict signal.  Per-shard granularity is
        :meth:`shard_relation_version`.
        """
        return sum(db.relation_version(name) for db in self._shards)

    def shard_relation_version(self, name: str, shard: int) -> int:
        """Committed batches that touched *name* on one shard."""
        return self._shards[shard].relation_version(name)

    def spread(self, name: str) -> List[int]:
        """Current row count of *name* per shard (balance diagnostics)."""
        parts = self._read_all(lambda db: len(db.snapshot(name)))
        return list(parts)

    # -- DDL (broadcast) ---------------------------------------------------------

    def define(self, name: str, schema: Schema,
               constraints: Sequence[Constraint] = (),
               event: bool = False) -> Instant:
        """Create a relation on every shard; one broadcast transaction."""
        lead = self._shards[0]
        if event:
            lead.require_historical("an event relation")
        from repro.core.temporal_constraints import TemporalConstraint
        if any(isinstance(c, TemporalConstraint) for c in constraints):
            lead.require_historical("a temporal constraint")
        if name in lead:
            raise DuplicateRelationError(f"relation {name!r} already exists")
        op = Operation("define", name,
                       {"schema": schema, "constraints": tuple(constraints),
                        "event": event})
        return self._run([op])

    def drop(self, name: str) -> Instant:
        """Remove a relation (and its history) from every shard."""
        self._shards[0].schema(name)  # raises UnknownRelationError
        return self._run([Operation("drop", name, {})])

    # -- DML (validated by shard 0, routed by the coordinator) -------------------

    def _capture(self, method: str, name: str, *args: Any,
                 **kwargs: Any) -> List[Operation]:
        """Run a kind DML method against a recorder; return the ops.

        All argument validation (schema checks, valid-time rules, event
        relations) happens in the kind method exactly as unsharded.
        """
        recorder = _OpRecorder()
        getattr(self._shards[0], method)(name, *args, txn=recorder, **kwargs)
        return recorder.ops

    def _dispatch(self, ops: Sequence[Operation],
                  txn: Optional[Transaction]) -> Optional[Instant]:
        if txn is not None:
            for op in ops:
                txn.add(op)
            return None
        return self._run(ops)

    def _run(self, ops: Sequence[Operation]) -> Instant:
        if not ops:
            # An empty transaction still commits (and ticks) somewhere;
            # pin it to shard 0 like everything else without a key.
            return self._shards[0].manager.run([])
        time = self.coordinator.run(ops, schema_of=self.schema)
        assert time is not None
        return time

    def insert(self, name: str, values: Mapping[str, Any],
               txn: Optional[Transaction] = None,
               **valid_bounds: Any) -> Optional[Instant]:
        """Insert one row on its owning shard (kind keywords pass through)."""
        return self._dispatch(
            self._capture("insert", name, values, **valid_bounds), txn)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               txn: Optional[Transaction] = None,
               **valid_bounds: Any) -> Optional[Instant]:
        """Delete matching rows (one shard when *match* pins the key)."""
        return self._dispatch(
            self._capture("delete", name, match, **valid_bounds), txn)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any],
                txn: Optional[Transaction] = None,
                **valid_bounds: Any) -> Optional[Instant]:
        """Replace matching rows' attributes; key rewrites are rejected
        (:class:`~repro.errors.ShardRoutingError` — rows never migrate)."""
        return self._dispatch(
            self._capture("replace", name, match, updates, **valid_bounds),
            txn)

    def delete_where(self, name: str, predicate,
                     txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Delete by predicate, resolved against the *merged* snapshot.

        Only kinds exposing ``delete_where`` (static, rollback) support
        this; resolution produces full-tuple matches, each routed to its
        owning shard.
        """
        if not hasattr(self._shards[0], "delete_where"):
            raise AttributeError(
                f"{type(self._shards[0]).__name__} has no delete_where")
        matched = self.snapshot(name).select(predicate)
        ops: List[Operation] = []
        for row in matched:
            ops.extend(self._capture("delete", name, dict(row)))
        return self._dispatch(ops, txn)

    # -- transactions ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a multi-operation transaction spanning any shards.

        Unlike a single database's ``begin()`` this takes no slot on any
        shard while buffering; the commit routes the batch and runs the
        cross-shard protocol if it spans shards.  For many concurrent
        callers use :meth:`sessions`.
        """
        with self._txn_lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
        return Transaction(txn_id, self._commit_transaction)

    def _commit_transaction(self, txn: Transaction) -> Instant:
        return self._run(list(txn.operations))

    def sessions(self, retry: Optional[Any] = None,
                 admission: Optional[Any] = None, **kwargs: Any):
        """A concurrent session layer with shard-granularity validation.

        The sharded analogue of :meth:`Database.sessions
        <repro.core.base.Database.sessions>`: sessions validate their
        footprint per ``relation@shard``, so two sessions writing
        different shards of the same relation do **not** conflict —
        the false sharing the unsharded layer documents is cut by a
        factor of the shard count (docs/SHARDING.md).
        """
        from repro.sharding.session import ShardedSessionLayer  # no cycle
        return ShardedSessionLayer(self, retry=retry, admission=admission,
                                   **kwargs)

    # -- queries (shard-merging, consistent cuts) ---------------------------------

    def _read_all(self, per_shard: Callable[[Database], Any]) -> List[Any]:
        """*per_shard* on every shard, atomically per shard, one cut overall."""

        def compute() -> List[Any]:
            out: List[Any] = []
            for db in self._shards:
                holder: List[Any] = []
                db.manager.certify(
                    lambda db=db, holder=holder: holder.append(per_shard(db)))
                out.append(holder[0])
            return out

        return self.coordinator.consistent_read(compute)

    def _merged(self, name: str, per_shard: Callable[[Database], Any]):
        """Merge per-shard relation values of the same type into one.

        Works for :class:`~repro.relational.relation.Relation`,
        :class:`~repro.core.historical.HistoricalRelation`,
        :class:`~repro.core.temporal.TemporalRelation` and
        :class:`~repro.core.rollback.RollbackRelation` alike: each
        constructs from ``(schema, rows)`` and iterates its rows, and
        shards never share a logical row, so concatenation is the union.
        """
        parts = self._read_all(per_shard)
        first = parts[0]
        return type(first)(self.schema(name),
                           [row for part in parts for row in part])

    def snapshot(self, name: str):
        """The current merged state of *name* (all kinds)."""
        self.schema(name)
        return self._merged(name, lambda db: db.snapshot(name))

    def rollback(self, name: str, as_of: InstantLike):
        """The merged state as of a past transaction time.

        Per-shard transaction times differ slightly for cross-shard
        transactions (module docstring); an *as_of* inside that window
        sees the transaction on the shards whose commit instant it
        covers.
        """
        self._shards[0].require_rollback("rollback")
        return self._merged(name, lambda db: db.rollback(name, as_of))

    def timeslice(self, name: str, valid_at: InstantLike, **kwargs: Any):
        """The merged valid-time slice (historical and temporal kinds)."""
        self._shards[0].require_historical("timeslice")
        return self._merged(name,
                            lambda db: db.timeslice(name, valid_at, **kwargs))

    def history(self, name: str):
        """The merged current historical state (valid-time kinds)."""
        self._shards[0].require_historical("history")
        return self._merged(name, lambda db: db.history(name))

    def temporal(self, name: str):
        """The merged bitemporal relation (temporal kind)."""
        self._shards[0].require_historical("temporal")
        self._shards[0].require_rollback("temporal")
        return self._merged(name, lambda db: db.temporal(name))

    def rollback_range(self, name: str, from_: InstantLike,
                       through: InstantLike):
        """The merged rows of every state over the inclusive tt range."""
        self._shards[0].require_rollback("rollback_range")
        return self._merged(
            name, lambda db: db.rollback_range(name, from_, through))

    # -- observability -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The process-local instrumentation snapshot (docs/OBSERVABILITY.md)."""
        return _obs.stats()

    def __repr__(self) -> str:
        return (f"ShardedDatabase({type(self._shards[0]).__name__} × "
                f"{len(self._shards)}, {len(self._log)} commits)")
