"""Stable hash partitioning: which shard owns a row.

The sharded store (:mod:`repro.sharding.store`) splits every relation
across N shards by **primary key**: a row lives on the shard its key
hashes to, forever.  Two properties make that sound:

- **Stability.**  The hash is :func:`zlib.crc32` over the canonical
  JSON of the key values (encoded with the same tagged-value scheme the
  journal uses, so instants and periods hash identically before and
  after a recovery round-trip).  Python's builtin ``hash()`` is salted
  per process (``PYTHONHASHSEED``) and is therefore banned from every
  partitioning and digest path — a shard assignment must survive
  interpreter restarts, or recovery would scatter rows
  (``tests/sharding/test_partition.py`` pins this with a subprocess).
- **Determinism of routing.**  Any operation that names its full key
  routes to exactly one shard; anything else (a partial-key delete, a
  keyless relation's ops, DDL) is a *broadcast* touching every shard.
  A ``replace`` that rewrites a key attribute raises
  :class:`~repro.errors.ShardRoutingError` — rows never migrate between
  shards (use delete + insert).

Keyless relations are pinned whole to shard 0: without a declared key
there is no stable row identity to hash, so splitting them would make
``replace``/``delete`` semantics shard-order dependent.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.errors import ShardRoutingError
from repro.storage.serializer import encode_value
from repro.txn.transaction import Operation

#: The partitioning scheme tag recorded in ``shards.json``; bump it if
#: the hash function or routing rules ever change incompatibly.
SCHEME = "crc32-key-mod"


def stable_hash(values: Sequence[Any]) -> int:
    """A process-independent 32-bit hash of a key-value sequence.

    CRC32 over the canonical (sorted-key, tagged) JSON of the values.
    Deliberately *not* Python's salted ``hash()``: equal inputs hash
    equal across interpreter restarts and machines.
    """
    payload = json.dumps([encode_value(value) for value in values],
                         sort_keys=True, ensure_ascii=False)
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


class Partitioner:
    """Routes keys and operations to one of ``shards`` shards."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("a sharded store needs at least 1 shard")
        self.shards = shards

    # -- key routing -----------------------------------------------------------

    def shard_of_key(self, key_values: Sequence[Any]) -> int:
        """The shard owning the row with these primary-key values."""
        if self.shards == 1:
            return 0
        return stable_hash(key_values) % self.shards

    def shard_of_values(self, key_attrs: Sequence[str],
                        values: Mapping[str, Any]) -> Optional[int]:
        """The owning shard, or ``None`` when *values* misses key attrs.

        Keyless relations (empty *key_attrs*) are pinned to shard 0.
        """
        if not key_attrs:
            return 0
        if not all(attr in values for attr in key_attrs):
            return None
        return self.shard_of_key([values[attr] for attr in key_attrs])

    # -- operation routing ------------------------------------------------------

    def shard_of_operation(self, key_attrs: Sequence[str],
                           op: Operation) -> Optional[int]:
        """The single shard *op* touches, or ``None`` for a broadcast.

        DDL (``define``/``drop``) always broadcasts — every shard holds
        every relation's schema.  An ``insert`` routes by its values; a
        ``delete``/``replace`` routes by its match when the match pins
        the full key, and broadcasts otherwise.  A ``replace`` whose
        updates rewrite a key attribute to a *different* value raises
        :class:`~repro.errors.ShardRoutingError`.
        """
        if op.action in ("define", "drop"):
            return None
        if op.action == "insert":
            values = op.arguments.get("values", {})
            return self.shard_of_values(key_attrs, values)
        if op.action in ("delete", "replace"):
            match = op.arguments.get("match") or {}
            if op.action == "replace":
                updates = op.arguments.get("updates", {})
                for attr in key_attrs:
                    if attr in updates and (attr not in match
                                            or updates[attr] != match[attr]):
                        raise ShardRoutingError(
                            f"replace on {op.relation!r} rewrites key "
                            f"attribute {attr!r}; rows never migrate "
                            f"between shards — delete and re-insert "
                            f"instead")
            if not key_attrs:
                return 0
            return self.shard_of_values(key_attrs, match)
        # Unknown actions are conservatively broadcast.
        return None

    def describe(self) -> Dict[str, Any]:
        """The metadata recorded in a sharded directory's ``shards.json``."""
        return {"shards": self.shards, "scheme": SCHEME}

    def __repr__(self) -> str:
        return f"Partitioner(shards={self.shards})"
