"""Durability for the sharded store: N journals plus the 2PC logs.

One :class:`ShardedDurabilityManager` owns one directory::

    <dir>/shards.json       — {"shards": N, "scheme": "crc32-key-mod"}
    <dir>/decisions.seg     — the coordinator's 2PC decision log
    <dir>/shard-00/         — shard 0's DurabilityManager directory
    <dir>/shard-00/2pc.seg  — shard 0's prepare log
    <dir>/shard-01/ …

Each ``shard-NN/`` is a complete, independent
:class:`~repro.storage.recovery.DurabilityManager` directory — segmented
journal, checkpoints, torn-tail repair — so single-shard commits journal
through their own stream with no cross-shard ordering to maintain.  The
two side logs carry the cross-shard protocol
(:mod:`repro.sharding.coordinator`): a ``prepare`` record per involved
shard (with the operations and that shard's durable record count at
prepare time), then one ``decision`` record whose append is the commit
point.  All three file kinds use the same CRC32 framing, so a torn tail
anywhere is detected and means "this record never became durable".

**Recovery** (:meth:`ShardedDurabilityManager.recover`):

1. check ``shards.json`` against the requested shape
   (:class:`~repro.errors.ShardConfigError` on mismatch — a 4-shard
   directory opened as 8 shards would scatter every key);
2. recover every shard directory independently (checkpoint + tail
   replay, exactly the single-store algorithm);
3. resolve in-doubt 2PC state: scan the decision log (torn tail
   dropped — an undurable decision is no decision), then each shard's
   prepare log.  A prepare whose gid has **no** durable commit decision
   is presumed aborted and ignored.  A prepare whose gid **was** decided
   commits everywhere: if the shard's recovered journal has no record
   past the prepare's ``base`` count, the apply never journaled and the
   prepared operations are re-run (and re-journaled) now.  Because the
   coordinator holds the shard's serialization lock from prepare to
   apply, record ``base`` of that shard's journal can only ever be this
   transaction's commit record — "count > base" is exact, not a
   heuristic.  Re-running recovery is idempotent: once re-applied, the
   count exceeds ``base``.

**Compaction.**  :meth:`checkpoint` quiesces every shard (all
serialization locks held), checkpoints each shard directory, then
truncates both 2PC logs: with all locks held no transaction is between
prepare and apply, so every decided transaction is in some checkpoint
and the logs carry no live information.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ShardConfigError
from repro.obs import runtime as _obs
from repro.sharding.partition import SCHEME, Partitioner
from repro.sharding.store import ShardedDatabase
from repro.storage.framing import frame_record
from repro.storage.io import REAL_IO, StorageIO
from repro.storage.journal import Journal, decode_operation
from repro.storage.recovery import DurabilityManager, RecoveryReport

_MANIFEST = "shards.json"
_DECISIONS = "decisions.seg"
_PREPARES = "2pc.seg"


class _SideLog:
    """An append-only framed log of plain dict records (the 2PC logs).

    Reuses :class:`~repro.storage.journal.Journal` for scanning and
    torn-tail repair — framing is framing, whatever the record schema —
    and appends through the same :class:`StorageIO` seam, so the fault
    harness can tear and kill 2PC appends exactly like journal appends.
    """

    def __init__(self, path: str, fsync: bool, io: StorageIO) -> None:
        self._path = path
        self._fsync = fsync
        self._io = io
        self._journal = Journal(path, fsync=fsync, io=io)
        self._lock = threading.Lock()

    @property
    def path(self) -> str:
        return self._path

    def append(self, entry: Dict[str, Any]) -> None:
        line = frame_record(entry)
        with self._lock:
            self._io.append(self._path, (line + "\n").encode("utf-8"),
                            fsync=self._fsync)

    def read(self, recover: bool = False) -> List[Dict[str, Any]]:
        return self._journal.read(recover=recover)

    def repair(self) -> int:
        """Drop a torn trailing record; returns bytes truncated."""
        if not os.path.exists(self._path):
            return 0
        return self._journal.truncate_torn_tail()

    def clear(self) -> None:
        """Truncate to empty (compaction; caller guarantees quiescence)."""
        with self._lock:
            with open(self._path, "wb"):
                pass

    def size(self) -> int:
        return os.path.getsize(self._path) if os.path.exists(self._path) \
            else 0


@dataclasses.dataclass(frozen=True)
class ShardedRecoveryReport:
    """What one :meth:`ShardedDurabilityManager.recover` run did."""

    #: The store's shard count.
    shards: int
    #: Each shard directory's own recovery report, in shard order.
    per_shard: Tuple[RecoveryReport, ...]
    #: Durable commit decisions found in the decision log.
    decisions: int
    #: Prepares with no durable decision — presumed aborted and dropped.
    in_doubt_aborted: int
    #: Decided-but-unjournaled shard batches re-applied during resolution.
    reapplied: int

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro recover --json`` prints)."""
        return {
            "shards": self.shards,
            "per_shard": [report.describe() for report in self.per_shard],
            "decisions": self.decisions,
            "in_doubt_aborted": self.in_doubt_aborted,
            "reapplied": self.reapplied,
            "records_total": sum(r.records_total for r in self.per_shard),
            "records_replayed": sum(r.records_replayed
                                    for r in self.per_shard),
        }


class ShardedDurabilityManager:
    """Checkpointed, crash-tolerant persistence for a sharded store.

    *shards* names the shape when creating a fresh directory; against an
    existing directory it is checked (``None`` adopts the recorded
    shape).  Also the coordinator's 2PC log seam: :meth:`prepare`,
    :meth:`decide` and :meth:`record_count` are what
    :class:`~repro.sharding.coordinator.ShardCoordinator` calls.
    """

    def __init__(self, directory: str, shards: Optional[int] = None,
                 fsync: bool = False, io: Optional[StorageIO] = None) -> None:
        self._directory = directory
        self._fsync = fsync
        self._io = io if io is not None else REAL_IO
        self._shards = self._resolve_shape(shards)
        self._managers = [
            DurabilityManager(self._shard_dir(sid), fsync=fsync,
                              io=self._io, shard=sid)
            for sid in range(self._shards)
        ]
        self._decisions = _SideLog(os.path.join(directory, _DECISIONS),
                                   fsync, self._io)
        self._prepares = [
            _SideLog(os.path.join(self._shard_dir(sid), _PREPARES),
                     fsync, self._io)
            for sid in range(self._shards)
        ]
        self._store: Optional[ShardedDatabase] = None

    def _shard_dir(self, sid: int) -> str:
        return os.path.join(self._directory, f"shard-{sid:02d}")

    def _manifest_path(self) -> str:
        return os.path.join(self._directory, _MANIFEST)

    def _resolve_shape(self, requested: Optional[int]) -> int:
        """Reconcile the requested shard count with ``shards.json``."""
        path = self._manifest_path()
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            recorded = int(manifest.get("shards", 0))
            scheme = manifest.get("scheme")
            if scheme != SCHEME:
                raise ShardConfigError(
                    f"{self._directory} was partitioned with scheme "
                    f"{scheme!r}; this build understands {SCHEME!r}")
            if requested is not None and requested != recorded:
                raise ShardConfigError(
                    f"{self._directory} holds {recorded} shards; opening "
                    f"it as {requested} would re-hash every key — "
                    f"resharding is not a recovery-time operation")
            return recorded
        if requested is None:
            requested = 4
        if requested < 1:
            raise ShardConfigError("a sharded store needs at least 1 shard")
        return requested

    def _write_manifest(self) -> None:
        path = self._manifest_path()
        if not os.path.exists(path):
            os.makedirs(self._directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(Partitioner(self._shards).describe(), handle,
                          sort_keys=True)
                handle.write("\n")

    # -- accessors ------------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def shards(self) -> int:
        """The directory's shard count."""
        return self._shards

    @property
    def store(self) -> Optional[ShardedDatabase]:
        """The attached sharded database (``None`` before recover)."""
        return self._store

    @property
    def shard_managers(self) -> List[DurabilityManager]:
        """The per-shard durability managers, in shard order (a copy)."""
        return list(self._managers)

    # -- the coordinator's 2PC log seam -----------------------------------------

    def prepare(self, shard: int, entry: Dict[str, Any]) -> None:
        """Journal one prepare record to *shard*'s 2PC log (durable on
        return)."""
        self._prepares[shard].append(entry)
        _obs.current().metrics.counter("sharding.prepares").inc()

    def decide(self, entry: Dict[str, Any]) -> None:
        """Journal the commit decision — the cross-shard commit point."""
        self._decisions.append(entry)
        _obs.current().metrics.counter("sharding.decisions").inc()

    def record_count(self, shard: int) -> int:
        """Durable journal records of one shard (the prepare ``base``)."""
        return self._managers[shard].record_count

    # -- recovery ----------------------------------------------------------------

    def recover(self, factory: Callable[..., Any],
                use_checkpoint: bool = True,
                ) -> Tuple[ShardedDatabase, ShardedRecoveryReport]:
        """Rebuild the sharded store from disk; returns (store, report).

        Works on an empty directory too (creating the manifest and the
        shard directories), so this is also how a durable sharded store
        is created.  The returned store is attached: single-shard
        commits journal through their shard's stream, cross-shard
        commits through the 2PC logs, from here on.
        """
        os.makedirs(self._directory, exist_ok=True)
        self._write_manifest()
        obs = _obs.current()
        with obs.tracer.span("sharding.recover", directory=self._directory,
                             shards=self._shards):
            reports: List[RecoveryReport] = []
            databases = []
            for manager in self._managers:
                database, report = manager.recover(
                    factory, use_checkpoint=use_checkpoint)
                databases.append(database)
                reports.append(report)
            store = ShardedDatabase.from_shards(databases)
            decisions, aborted, reapplied = self._resolve_two_phase(store)
            store.coordinator.attach_two_phase(self)
            self._store = store
            report = ShardedRecoveryReport(
                shards=self._shards,
                per_shard=tuple(reports),
                decisions=decisions,
                in_doubt_aborted=aborted,
                reapplied=reapplied,
            )
            obs.metrics.counter("sharding.recoveries").inc()
        return store, report

    def _resolve_two_phase(self,
                           store: ShardedDatabase) -> Tuple[int, int, int]:
        """Apply the recovery rules to the 2PC logs (docstring, step 3)."""
        metrics = _obs.current().metrics
        self._decisions.repair()  # a torn decision is no decision
        committed = {
            entry["gid"] for entry in self._decisions.read()
            if entry.get("kind") == "decision"
            and entry.get("decision") == "commit"
        }
        aborted = 0
        reapplied = 0
        for sid in range(self._shards):
            self._prepares[sid].repair()  # a torn prepare never voted
            shard_db = store.shard_databases[sid]
            for entry in self._prepares[sid].read():
                if entry.get("kind") != "prepare":
                    continue
                if entry["gid"] not in committed:
                    aborted += 1  # presumed abort
                    continue
                if self._managers[sid].record_count > int(entry["base"]):
                    continue  # the apply's commit record is durable
                operations = [decode_operation(op)
                              for op in entry["operations"]]
                # Re-run through the shard's own manager: the commit
                # gets a fresh (post-recovery) transaction time and —
                # because the shard manager is already attached — a
                # normal journal record, making this idempotent.
                shard_db.manager.run(operations)
                reapplied += 1
        if aborted:
            metrics.counter("sharding.in_doubt_aborted").inc(aborted)
        if reapplied:
            metrics.counter("sharding.reapplied").inc(reapplied)
        return len(committed), aborted, reapplied

    # -- checkpointing -------------------------------------------------------------

    def checkpoint(self) -> List[str]:
        """Checkpoint every shard at one quiesced cut; compact the 2PC logs.

        Takes every shard's serialization lock (so no commit — single-
        or cross-shard — is in flight anywhere), checkpoints each shard
        directory, then truncates the prepare and decision logs: under
        the locks every decided transaction has applied and
        checkpointed, so the logs carry no live information.  Returns
        the checkpoint paths, in shard order.
        """
        if self._store is None:
            raise ShardConfigError("no store attached; recover() first")
        paths: List[str] = []

        def checkpoint_all() -> None:
            for manager in self._managers:
                paths.append(manager.checkpoint())
            for side in self._prepares:
                side.clear()
            self._decisions.clear()

        self._store.coordinator.certify(checkpoint_all)
        _obs.current().metrics.counter("sharding.checkpoints").inc()
        return paths

    # -- observability ----------------------------------------------------------------

    def chain_heads(self) -> List[Optional[str]]:
        """Each shard's hash-chain head, in shard order.

        A head is None before that shard's recover() ran (nothing is
        attached to walk).  Per-shard streams chain independently;
        :meth:`combined_root` names the whole store.
        """
        return [manager.chain_head for manager in self._managers]

    def combined_root(self) -> Optional[str]:
        """One hash naming the whole sharded history: the per-shard
        chain heads folded in shard order (None when any is unknown).

        The sharded analogue of a single journal's chain head — two
        stores with equal roots hold byte-identical commit histories on
        every shard, checked in O(shards) instead of O(state).
        """
        from repro.storage.scrub import combined_root
        return combined_root(self.chain_heads())

    def journal_bytes(self, shard: int) -> int:
        """On-disk journal bytes of one shard (segments + its 2PC log)."""
        total = self._prepares[shard].size()
        for _, path in self._managers[shard].segments():
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total

    def shard_stats(self) -> Dict[str, Any]:
        """Per-shard durability facts; also refreshes the obs gauges.

        Sets ``shard.<i>.journal_bytes`` and ``shard.<i>.records`` in
        the metrics registry (the ``stats`` CLI verb surfaces them
        alongside the counters the commit paths maintain).
        """
        metrics = _obs.current().metrics
        shards: List[Dict[str, Any]] = []
        for sid in range(self._shards):
            size = self.journal_bytes(sid)
            count = self._managers[sid].record_count
            metrics.gauge(f"shard.{sid}.journal_bytes").set(size)
            metrics.gauge(f"shard.{sid}.records").set(count)
            shards.append({
                "shard": sid,
                "records": count,
                "journal_bytes": size,
                "segments": len(self._managers[sid].segments()),
                "chain_head": self._managers[sid].chain_head,
            })
        return {
            "shards": self._shards,
            "decision_log_bytes": self._decisions.size(),
            "combined_root": self.combined_root(),
            "per_shard": shards,
        }

    def __repr__(self) -> str:
        total = sum(m.record_count for m in self._managers)
        return (f"ShardedDurabilityManager({self._directory!r}, "
                f"{self._shards} shards, {total} records)")
