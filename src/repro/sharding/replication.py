"""Replication for the sharded store: one stream per shard.

Each shard's journal is an independent serialized commit stream, so the
sharded store replicates as N ordinary primary/replica pairs
(:mod:`repro.replication`) — shard *i*'s primary ships shard *i*'s
records to shard *i*'s replica, with per-shard sequence numbers,
divergence digests and catch-up, none of which had to change.  What is
new is the *composition*:

- **Vector tokens.**  Read-your-writes across shards needs one token
  per shard: a :class:`ShardedSession`'s ``commit_token`` is the tuple
  of per-shard commit-log lengths, and :meth:`ShardedReplica.read`
  gates each shard's read on its component (a single integer could not
  say *which* shard's replica must catch up).
- **The combined digest.**  :func:`sharded_digest` names a sharded
  state: the SHA-256 over the per-shard canonical digests, in shard
  order.  Two sharded stores with equal shard counts hash equal iff
  every shard pair hashes equal — used by the chaos audits to compare a
  recovered store against a reference.

Note the replica's merged read is consistent per shard, not across
shards: shard streams advance independently, so a cross-shard
transaction may be visible on one shard's replica before the other's.
Gating on a vector token from the writing session restores
read-your-writes; cross-shard *cut* consistency on replicas would need
the decision log shipped too, which this module does not do (the
documented gap — docs/SHARDING.md).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, List, Optional, Sequence, Tuple

from repro.replication.digest import state_digest
from repro.replication.primary import Primary
from repro.replication.replica import Replica
from repro.replication.transport import Transport
from repro.sharding.store import ShardedDatabase


def _shard_node(node_id: str, shard: int) -> str:
    return f"{node_id}/s{shard}"


def combined_digest(databases: Sequence[Any]) -> str:
    """The SHA-256 naming an ordered sequence of database states."""
    digests = [state_digest(database) for database in databases]
    payload = json.dumps(digests, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def sharded_digest(store: ShardedDatabase) -> str:
    """The combined canonical digest of a sharded store's current state.

    Read at one consistent cut (every shard's digest taken under its
    lock inside one coordinator epoch), so a concurrent cross-shard
    commit can never tear the digest.
    """
    digests = store._read_all(state_digest)
    payload = json.dumps(list(digests), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ShardedPrimary:
    """N per-shard primaries fronting one sharded store."""

    def __init__(self, node_id: str, store: ShardedDatabase,
                 transport: Transport, epoch: int = 0) -> None:
        self.node_id = node_id
        self.store = store
        self.primaries: List[Primary] = [
            Primary(_shard_node(node_id, sid), database, transport,
                    epoch=epoch)
            for sid, database in enumerate(store.shard_databases)
        ]

    def add_replica(self, replica: "ShardedReplica") -> None:
        """Register a sharded replica (each shard pair wires up)."""
        for primary, shard_replica in zip(self.primaries, replica.replicas):
            primary.add_replica(shard_replica.node_id)

    def pump(self) -> int:
        """Service every shard's mailbox; returns messages handled."""
        return sum(primary.pump() for primary in self.primaries)

    def heartbeat(self) -> List[Tuple[int, str]]:
        """Each shard's ``(seq, digest)`` heartbeat, in shard order."""
        return [primary.heartbeat() for primary in self.primaries]

    def current_vector(self) -> Tuple[int, ...]:
        """The per-shard sequence numbers (compare to a vector token)."""
        return tuple(primary.current_seq for primary in self.primaries)

    def __repr__(self) -> str:
        return (f"ShardedPrimary({self.node_id!r}, "
                f"{len(self.primaries)} shards)")


class ShardedReplica:
    """N per-shard replicas composing one read-only sharded view."""

    def __init__(self, node_id: str, kind, transport: Transport,
                 primary_id: str, shards: int, epoch: int = 0) -> None:
        self.node_id = node_id
        self.replicas: List[Replica] = [
            Replica(_shard_node(node_id, sid), kind, transport,
                    _shard_node(primary_id, sid), epoch=epoch)
            for sid in range(shards)
        ]

    def request_catchup(self) -> None:
        """Cold-join every shard stream."""
        for replica in self.replicas:
            replica.request_catchup()

    def pump(self) -> int:
        """Drain every shard's mailbox; returns records applied."""
        return sum(replica.pump() for replica in self.replicas)

    def check(self) -> None:
        """Raise the first shard's divergence, if any stream diverged."""
        for replica in self.replicas:
            replica.check()

    def read(self, name: str,
             token: Optional[Sequence[int]] = None) -> List[Any]:
        """The merged current rows of *name*, gated on a vector token.

        *token* is a sharded session's ``commit_token``; each shard's
        read waits (raises :class:`~repro.errors.ReplicaLagging`) until
        that shard's replica applied its component.  Returns the merged
        row list — per-shard-consistent, see the module docstring.
        """
        rows: List[Any] = []
        for sid, replica in enumerate(self.replicas):
            part = replica.read(
                name, token=None if token is None else token[sid])
            rows.extend(part)
        return rows

    def digest(self) -> str:
        """The combined digest of the replica's current shard states."""
        return combined_digest([replica.database
                                for replica in self.replicas])

    def lag(self) -> List[Tuple[int, Optional[int]]]:
        """Each shard's ``(applied, head)`` lag pair, in shard order."""
        return [replica.lag() for replica in self.replicas]

    def applied_vector(self) -> Tuple[int, ...]:
        """Per-shard applied sequence numbers (compare to a token)."""
        return tuple(replica.applied_seq for replica in self.replicas)

    def __repr__(self) -> str:
        return (f"ShardedReplica({self.node_id!r}, "
                f"{len(self.replicas)} shards)")
