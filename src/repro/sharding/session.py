"""Optimistic sessions with per-shard footprints over the sharded store.

The unsharded session layer validates at **relation** granularity: two
sessions writing different keys of the same relation conflict, and the
retry layer absorbs the false sharing (docs/CONCURRENCY.md).  Sharding
cuts that sharing by construction: a :class:`ShardedSession` records its
footprint per ``relation@shard``, so sessions whose keys hash to
different shards of the same relation neither conflict nor even share a
commit lock — they validate and apply through entirely disjoint
pipelines.  This is where the sharded store's throughput comes from
(benchmarks/run_bench.py's ``sharding`` section measures exactly it).

Commit routing: the session's written shards and read shards are
unioned; one involved shard takes the single-shard fast path (that
shard's lock only), several run the coordinator's two-phase protocol
(:mod:`repro.sharding.coordinator`).  Either way validation runs under
*all* involved locks, atomically with the apply it guards, so
first-committer-wins holds exactly as in the unsharded layer — per
shard.

Reads: :meth:`ShardedSession.get` is the targeted read — it touches and
reads only the owning shard, keeping a single-key transaction's
footprint on one shard.  The inherited whole-relation reads
(``read``/``timeslice``/``rollback``) remain available; they touch
*every* shard and therefore conflict with any commit to the relation,
which is the correct (conservative) footprint for a merged read.
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Optional

from repro.concurrency.layer import SessionLayer
from repro.concurrency.session import ConcurrentSession, SessionStatus
from repro.errors import ConflictError, DeadlineExceeded
from repro.obs import runtime as _obs
from repro.relational.tuple import Tuple as Row
from repro.time.instant import Instant
from repro.txn.transaction import Operation


def _footprint_key(name: str, shard: int) -> str:
    return f"{name}@{shard}"


class ShardedSession(ConcurrentSession):
    """One optimistic transaction with a ``relation@shard`` footprint."""

    # -- footprint ---------------------------------------------------------------

    def touch(self, name: str) -> None:
        """Record *name* on **every** shard (a whole-relation dependency)."""
        for shard in range(self._database.shards):
            self.touch_shard(name, shard)

    def touch_shard(self, name: str, shard: int) -> None:
        """Record *name* on one shard at that shard's current version."""
        key = _footprint_key(name, shard)
        if key not in self._footprint:
            self._footprint[key] = self._database.shard_relation_version(
                name, shard)

    def conflicts(self) -> List[str]:
        """Touched ``relation@shard`` entries whose version has moved."""
        stale: List[str] = []
        for key, version in self._footprint.items():
            name, _, shard = key.rpartition("@")
            if self._database.shard_relation_version(
                    name, int(shard)) != version:
                stale.append(key)
        return sorted(stale)

    def footprint_shards(self) -> List[int]:
        """Every shard id appearing in the footprint, ascending."""
        return sorted({int(key.rpartition("@")[2])
                       for key in self._footprint})

    @property
    def op_class(self) -> str:
        """The SLO operation class, refined by write routing.

        ``read`` with nothing buffered; ``cross_shard_write`` when the
        buffered writes land on more than one shard (including any
        broadcast operation); ``single_shard_write`` otherwise.
        """
        if not self._operations:
            return "read"
        database = self._database
        shards = set()
        for op in self._operations:
            if op.action in ("define", "drop"):
                return "cross_shard_write"
            target = database.partitioner.shard_of_operation(
                database.schema(op.relation).key, op)
            if target is None:
                return "cross_shard_write"
            shards.add(target)
        return ("cross_shard_write" if len(shards) > 1
                else "single_shard_write")

    # -- writes ------------------------------------------------------------------

    def add(self, operation: Operation) -> None:
        """Buffer one operation, touching exactly the shards it routes to."""
        self._require_active()
        database = self._database
        if operation.action in ("define", "drop"):
            target: Optional[int] = None
        else:
            target = database.partitioner.shard_of_operation(
                database.schema(operation.relation).key, operation)
        if target is None:
            self.touch(operation.relation)  # broadcast: every shard
        else:
            self.touch_shard(operation.relation, target)
        self._operations.append(operation)

    # The base class's DML methods pre-touch the whole relation before
    # handing the database the ``txn=`` seam; here that would broadcast
    # every keyed write to all shards and reintroduce exactly the false
    # sharing this layer exists to remove.  Route through :meth:`add`
    # alone — it touches the shards the operation actually lands on.

    def insert(self, name: str, values: Mapping[str, Any],
               **valid_bounds: Any) -> None:
        self._require_active()
        self._database.insert(name, values, txn=self, **valid_bounds)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               **valid_bounds: Any) -> None:
        self._require_active()
        self._database.delete(name, match, txn=self, **valid_bounds)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any], **valid_bounds: Any) -> None:
        self._require_active()
        self._database.replace(name, match, updates, txn=self,
                               **valid_bounds)

    # -- reads -------------------------------------------------------------------

    def _consistent(self, compute: Callable[[], Any]) -> Any:
        # The sharded store's query methods already run under per-shard
        # locks inside a coordinator consistent cut; wrapping them in a
        # further certify would lock all shards for no added guarantee.
        return compute()

    def get(self, name: str, key: Mapping[str, Any]) -> List[Row]:
        """The rows of *name* matching *key*, read from their shard only.

        *key* must pin the relation's full primary key (else
        :class:`~repro.errors.ShardConfigError`): the point is a
        single-shard footprint.  Returns the matching rows of that
        shard's current snapshot (at most one under a key constraint).
        """
        database = self._database
        shard = database.shard_of_key(name, key)
        self.touch_shard(name, shard)
        shard_db = database.shard_databases[shard]
        holder: List[Any] = []
        shard_db.manager.certify(
            lambda: holder.append(shard_db.snapshot(name)))
        return [row for row in holder[0]
                if all(row[attr] == value for attr, value in key.items())]


class ShardedSessionLayer(SessionLayer):
    """Concurrent optimistic sessions over a :class:`ShardedDatabase`.

    Same admission/retry/deadline envelope as the base layer; only the
    session class and the commit path differ.  Commit tokens are the
    store's **vector tokens** — per-shard commit-log lengths — because a
    single integer cannot say which shard's replica must catch up
    (docs/SHARDING.md).
    """

    def begin(self) -> ShardedSession:
        with self._id_lock:
            session_id = self._next_id
            self._next_id += 1
        _obs.current().metrics.counter("concurrency.sessions").inc()
        return ShardedSession(self, session_id)

    def commit_session(self, session: ConcurrentSession,
                       deadline: Optional[float] = None,
                       ) -> Optional[Instant]:
        """Validate per ``relation@shard`` and commit through the router.

        Mirrors the base layer's contract (first-committer-wins under
        the locks, :class:`~repro.errors.DeadlineExceeded` past the
        deadline, read-only sessions certify without committing) with
        the locks scoped to the involved shards only.
        """
        obs = _obs.current()
        metrics = obs.metrics
        if deadline is not None and self._clock() >= deadline:
            session._status = SessionStatus.ABORTED
            raise DeadlineExceeded(
                f"session {session.session_id} reached its deadline "
                f"before commit; aborting instead of committing late")

        def validate() -> None:
            stale = session.conflicts()
            if stale:
                metrics.counter("concurrency.conflicts").inc()
                for key in stale:
                    metrics.counter(
                        f"shard.{key.rpartition('@')[2]}.conflicts").inc()
                obs.events.emit("txn.conflict", txn=session.txn_id,
                                relations=stale)
                raise ConflictError(
                    f"session {session.session_id} lost first-committer-"
                    f"wins validation: {', '.join(stale)} changed since "
                    f"it began", relations=stale)

        database = self.database
        coordinator = database.coordinator
        involved = session.footprint_shards()
        try:
            if not session.operations:
                # Read-only: certify the footprint under exactly the
                # involved shards' locks; no commit record anywhere.
                coordinator.commit({}, lock_shards=involved,
                                   validate=validate)
                session._status = SessionStatus.COMMITTED
                session._commit_token = database.log.vector()
                obs.events.emit("txn.commit", txn=session.txn_id,
                                op_class="read",
                                token=session._commit_token)
                return None
            with obs.tracer.span("concurrency.commit",
                                 txn=session.txn_id,
                                 shards=involved):
                with metrics.histogram("concurrency.commit_seconds").time():
                    grouped = coordinator.group(session.operations,
                                                database.schema)
                    times = coordinator.commit(grouped,
                                               lock_shards=involved,
                                               validate=validate)
        except Exception:
            session._status = SessionStatus.ABORTED
            raise
        session._status = SessionStatus.COMMITTED
        session._commit_time = max(times.values()) if times else None
        session._commit_token = database.log.vector()
        metrics.counter("concurrency.commits").inc()
        obs.events.emit("txn.commit", txn=session.txn_id,
                        op_class=session.op_class,
                        token=session._commit_token)
        return session._commit_time
