"""The shard coordinator: per-shard commit pipelines, cross-shard 2PC.

One :class:`ShardCoordinator` fronts the N per-shard databases of a
:class:`~repro.sharding.store.ShardedDatabase`.  It is the sharded
store's analogue of :class:`~repro.txn.manager.TransactionManager` — the
session layer talks to it through the same ``run(operations,
validate=)`` / ``certify(validate)`` seam — but where the single-writer
manager owns *one* commit lock, the coordinator owns none: every shard
keeps its own serialization lock, journal stream and transaction clock,
so transactions whose footprint stays inside one shard commit fully in
parallel.  Only transactions that *span* shards pay for coordination.

**Single-shard commits** (the common case) take exactly one lock — the
owning shard's — and are indistinguishable from a commit against an
unsharded database of that shard's kind.

**Cross-shard commits** run two-phase commit over the per-shard
serialization locks:

1. *Lock* every involved shard in ascending shard order (a global order,
   so two cross-shard transactions can never deadlock);
2. *Validate* the caller's first-committer-wins check under all of those
   locks, then **rehearse** each shard's batch
   (:meth:`~repro.core.base.Database.rehearse`) so a participant only
   votes yes for a batch it can actually apply — a constraint violation
   aborts here, before anything is journaled anywhere;
3. *Prepare*: journal a ``prepare`` record (gid, shard, journal position,
   operations) to each shard's 2PC log;
4. *Decide*: journal one ``commit`` decision record to the coordinator's
   decision log — **this append is the commit point** of the whole
   transaction;
5. *Apply*: commit each shard's batch through its own manager (the locks
   are already held, reentrantly), journaling normal commit records.

A crash before step 4 leaves prepares with no decision: recovery
(:mod:`repro.sharding.durability`) presumes abort and the transaction
never happened on any shard.  A crash after step 4 leaves a durable
decision: recovery re-applies the prepared operations on every shard
whose journal stops short of its prepare's recorded position.  Either
way all shards agree — the docs/SHARDING.md recovery contract.

**Consistent cuts.**  Readers never block writers: a shard-merging read
runs optimistically, sampling the coordinator's cross-commit epoch
before and after reading the shards (each shard read is individually
atomic under that shard's lock).  Single-shard commits may land between
two shard reads — any interleaving of independent per-shard histories
is a consistent cut — but if a *cross-shard* commit overlapped the read
window the epoch moved and the read retries, so a multi-shard
transaction is never observed half-applied.  After
``CONSISTENT_READ_RETRIES`` failed rounds the reader falls back to
locking all shards (bounded starvation).
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    TYPE_CHECKING)

from repro.obs import context as _trace
from repro.obs import runtime as _obs
from repro.storage.journal import encode_operation
from repro.txn.transaction import Operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sharding.partition import Partitioner
    from repro.time.instant import Instant

#: Optimistic rounds before a consistent read falls back to locking.
CONSISTENT_READ_RETRIES = 64


class ShardCoordinator:
    """Commit router and 2PC coordinator over N per-shard databases.

    *shard_dbs* are the per-shard kind instances (every relation defined
    on all of them, rows partitioned by *partitioner*).  *two_phase* is
    the durable 2PC log seam — an object with ``prepare(shard, entry)``,
    ``decide(entry)`` and ``record_count(shard)`` (see
    :class:`~repro.sharding.durability.ShardedDurabilityManager`) — or
    ``None`` for an in-memory store, where the per-shard locks alone
    make the cross-shard commit atomic and there is no crash to recover.
    """

    def __init__(self, shard_dbs: Sequence[Any],
                 partitioner: "Partitioner",
                 two_phase: Optional[Any] = None) -> None:
        self._shards = list(shard_dbs)
        self.partitioner = partitioner
        self._two_phase = two_phase
        # Cross-commit epoch: guards shard-merging reads.  ``active`` is
        # how many cross-shard commits currently hold locks; ``done``
        # counts completed ones.  Both only ever move under ``_cut_lock``.
        self._cut_lock = threading.Lock()
        self._cross_active = 0
        self._cross_done = 0
        # Globally-unique-enough transaction ids: a per-construction
        # random boot token plus a counter, so gids from a previous
        # incarnation still sitting in an uncompacted 2PC log can never
        # alias a new transaction.
        self._boot = uuid.uuid4().hex[:8]
        self._gid_counter = itertools.count(1)

    # -- accessors ------------------------------------------------------------

    @property
    def shards(self) -> int:
        """How many shards this coordinator fronts."""
        return len(self._shards)

    @property
    def shard_databases(self) -> List[Any]:
        """The per-shard databases, in shard order (a copy)."""
        return list(self._shards)

    @property
    def two_phase(self) -> Optional[Any]:
        """The durable 2PC log seam (``None`` for in-memory stores)."""
        return self._two_phase

    def attach_two_phase(self, two_phase: Any) -> None:
        """Bind the durable 2PC log (done by the durability manager)."""
        self._two_phase = two_phase

    def now(self) -> "Instant":
        """The store's notion of *now*: the latest of the shard nows."""
        return max(shard.manager.now() for shard in self._shards)

    def _next_gid(self) -> str:
        return f"x-{self._boot}-{next(self._gid_counter)}"

    # -- routing ----------------------------------------------------------------

    def group(self, operations: Sequence[Operation],
              schema_of: Callable[[str], Any]) -> Dict[int, List[Operation]]:
        """Partition a batch into per-shard batches, preserving order.

        *schema_of* maps a relation name to its schema (the store's
        lookup).  A broadcast operation (DDL, partial-key delete) is
        appended to *every* shard's batch.
        """
        grouped: Dict[int, List[Operation]] = {}
        for op in operations:
            if op.action in ("define", "drop"):
                key_attrs: Sequence[str] = ()
                target = None
            else:
                key_attrs = schema_of(op.relation).key
                target = self.partitioner.shard_of_operation(key_attrs, op)
            if target is None:
                for sid in range(len(self._shards)):
                    grouped.setdefault(sid, []).append(op)
            else:
                grouped.setdefault(target, []).append(op)
        return grouped

    # -- locking ------------------------------------------------------------------

    def _acquire(self, shard_ids: Sequence[int]) -> List[int]:
        """Take the named shards' serialization locks in ascending order.

        Returns the acquired ids (for :meth:`_release`).  The per-shard
        ``shard.<i>.lock_waiters`` gauge counts threads currently
        waiting on that shard's commit pipeline (queue depth).
        """
        metrics = _obs.current().metrics
        held: List[int] = []
        try:
            for sid in sorted(shard_ids):
                gauge = metrics.gauge(f"shard.{sid}.lock_waiters")
                gauge.add(1)
                try:
                    self._shards[sid].manager.serialization_lock.acquire()
                finally:
                    gauge.add(-1)
                held.append(sid)
        except BaseException:
            self._release(held)
            raise
        return held

    def _release(self, held: Sequence[int]) -> None:
        for sid in reversed(list(held)):
            self._shards[sid].manager.serialization_lock.release()

    # -- the commit pipeline --------------------------------------------------------

    def commit(self, grouped: Dict[int, List[Operation]],
               lock_shards: Optional[Sequence[int]] = None,
               validate: Optional[Callable[[], None]] = None,
               ) -> Dict[int, "Instant"]:
        """Commit per-shard batches atomically; returns shard → commit time.

        *lock_shards* names every shard the transaction's footprint
        touches (defaults to the written shards); read-only members are
        locked and validated but receive no operations.  *validate*
        runs under all of those locks — the optimistic-concurrency seam,
        exactly as in :meth:`TransactionManager.run
        <repro.txn.manager.TransactionManager.run>` but spanning shards.
        """
        metrics = _obs.current().metrics
        write_shards = sorted(sid for sid, ops in grouped.items() if ops)
        involved = sorted(set(write_shards)
                          | set(lock_shards if lock_shards is not None
                                else ()))
        held = self._acquire(involved)
        try:
            if validate is not None:
                validate()
            if len(write_shards) <= 1:
                times: Dict[int, "Instant"] = {}
                if write_shards:
                    sid = write_shards[0]
                    times[sid] = self._shards[sid].manager.run(grouped[sid])
                    metrics.counter(f"shard.{sid}.commits").inc()
                return times
            return self._commit_cross(grouped, write_shards)
        finally:
            self._release(held)

    def _commit_cross(self, grouped: Dict[int, List[Operation]],
                      write_shards: List[int]) -> Dict[int, "Instant"]:
        """The 2PC leg of :meth:`commit`; all involved locks are held."""
        obs = _obs.current()
        metrics = obs.metrics
        txn = _trace.current_txn()
        with obs.tracer.span("sharding.cross_commit",
                             shards=len(write_shards)) as cross_span:
            # Prepare vote: rehearse every part before journaling
            # anything — an unappliable batch aborts the whole
            # transaction with no 2PC record on any shard.
            for sid in write_shards:
                database = self._shards[sid]
                database.rehearse(grouped[sid],
                                  database.manager.clock.peek())
            gid = self._next_gid()
            cross_span.set(gid=gid)
            if self._two_phase is not None:
                for sid in write_shards:
                    with obs.tracer.span("sharding.prepare", gid=gid,
                                         shard=sid):
                        self._two_phase.prepare(sid, {
                            "kind": "prepare",
                            "gid": gid,
                            "shard": sid,
                            "base": self._two_phase.record_count(sid),
                            "operations": [encode_operation(op)
                                           for op in grouped[sid]],
                        })
                    obs.events.emit("2pc.prepare", txn=txn, gid=gid,
                                    shard=sid)
                # The commit point: once this decision record is
                # durable the transaction commits on every shard, by
                # recovery if not by the applies below.
                with obs.tracer.span("sharding.decide", gid=gid):
                    self._two_phase.decide({
                        "kind": "decision",
                        "gid": gid,
                        "decision": "commit",
                        "shards": write_shards,
                    })
                obs.events.emit("2pc.decide", txn=txn, gid=gid,
                                shards=write_shards)
            with self._cut_lock:
                self._cross_active += 1
            times: Dict[int, "Instant"] = {}
            try:
                for sid in write_shards:
                    with obs.tracer.span("sharding.apply", gid=gid,
                                         shard=sid):
                        times[sid] = self._shards[sid].manager.run(
                            grouped[sid])
                    metrics.counter(f"shard.{sid}.commits").inc()
                    obs.events.emit("2pc.apply", txn=txn, gid=gid,
                                    shard=sid)
            finally:
                with self._cut_lock:
                    self._cross_active -= 1
                    self._cross_done += 1
            metrics.counter("sharding.cross_commits").inc()
            return times

    # -- the manager facade -----------------------------------------------------------

    def run(self, operations: Sequence[Operation],
            validate: Optional[Callable[[], None]] = None,
            schema_of: Optional[Callable[[str], Any]] = None,
            ) -> Optional["Instant"]:
        """The :meth:`TransactionManager.run`-shaped seam, shard-routed.

        With *validate* given but no explicit shard knowledge, every
        shard is locked — the caller's validation may read any shard's
        versions, so the conservative footprint is all of them.  The
        sharded session layer avoids this by calling :meth:`commit`
        directly with its exact footprint.  Returns the latest of the
        assigned commit times (they differ across shards).
        """
        if schema_of is None:
            schema_of = self._shards[0].schema
        grouped = self.group(operations, schema_of)
        lock = range(len(self._shards)) if validate is not None else None
        times = self.commit(grouped, lock_shards=lock, validate=validate)
        return max(times.values()) if times else None

    def certify(self, validate: Callable[[], None]) -> None:
        """Run *validate* atomically against every shard's commits.

        The all-shards analogue of :meth:`TransactionManager.certify
        <repro.txn.manager.TransactionManager.certify>`: every shard's
        serialization lock is held, so no commit anywhere — single- or
        cross-shard — can interleave with the check.
        """
        held = self._acquire(range(len(self._shards)))
        try:
            validate()
        finally:
            self._release(held)

    # -- consistent cuts -----------------------------------------------------------

    def _epoch(self) -> tuple:
        with self._cut_lock:
            return self._cross_active, self._cross_done

    def consistent_read(self, compute: Callable[[], Any]) -> Any:
        """Run *compute* against a consistent cut of the shards.

        *compute* must read each shard it touches under that shard's own
        serialization lock (e.g. via per-shard ``manager.certify``) and
        must be safe to re-run.  Optimistic: retried until no
        cross-shard commit overlapped the read window, then falls back
        to locking every shard after ``CONSISTENT_READ_RETRIES`` rounds.
        """
        metrics = _obs.current().metrics
        for _ in range(CONSISTENT_READ_RETRIES):
            active, done = self._epoch()
            if active:
                time.sleep(0)  # a cross-commit is mid-flight; yield
                continue
            result = compute()
            active_after, done_after = self._epoch()
            if active_after == 0 and done_after == done:
                return result
            metrics.counter("sharding.consistent_read_retries").inc()
        # Pathological cross-commit churn: take every lock and read a
        # cut nothing can move under.
        metrics.counter("sharding.consistent_read_fallbacks").inc()
        held = self._acquire(range(len(self._shards)))
        try:
            return compute()
        finally:
            self._release(held)

    def __repr__(self) -> str:
        return (f"ShardCoordinator({len(self._shards)} shards, "
                f"{self._cross_done} cross-shard commits)")
