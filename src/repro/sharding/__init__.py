"""Sharding: per-shard commit pipelines under one logical store.

The single-writer transaction manager serializes every commit of a
database behind one lock — correct, and the wall the concurrency layer's
throughput flattens against.  This package breaks the wall by
*partitioning*: a :class:`ShardedDatabase` hash-partitions every
relation by primary key over N complete per-shard databases, each with
its own commit lock, clock, journal stream and index cache
(:mod:`repro.sharding.partition`, :mod:`repro.sharding.store`).
Single-shard transactions commit fully in parallel; cross-shard
transactions run a two-phase protocol over the per-shard locks
(:mod:`repro.sharding.coordinator`), made durable and crash-recoverable
by per-shard prepare logs plus a coordinator decision log
(:mod:`repro.sharding.durability`).  Sessions validate optimistically at
``relation@shard`` granularity (:mod:`repro.sharding.session`), and
per-shard replication streams compose with a vector commit token
(:mod:`repro.sharding.replication`).  See docs/SHARDING.md.
"""

from repro.sharding.coordinator import ShardCoordinator
from repro.sharding.durability import (ShardedDurabilityManager,
                                       ShardedRecoveryReport)
from repro.sharding.partition import SCHEME, Partitioner, stable_hash
from repro.sharding.replication import (ShardedPrimary, ShardedReplica,
                                        combined_digest, sharded_digest)
from repro.sharding.session import ShardedSession, ShardedSessionLayer
from repro.sharding.store import ShardedDatabase, ShardLog

__all__ = [
    "SCHEME", "Partitioner", "stable_hash",
    "ShardCoordinator", "ShardedDatabase", "ShardLog",
    "ShardedSession", "ShardedSessionLayer",
    "ShardedDurabilityManager", "ShardedRecoveryReport",
    "ShardedPrimary", "ShardedReplica", "combined_digest", "sharded_digest",
]
