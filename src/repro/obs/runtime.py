"""The live instrumentation switchboard.

One process-local :class:`Instrumentation` (a metrics registry + a
tracer) is *current* at any moment; instrumented call sites fetch it
with :func:`current` and bump instruments on whatever it holds.  The
default is :data:`NULL` — the no-op registry and tracer — so the
instrumented hot paths (commit apply, index cache, TQuel pipeline,
transaction lifecycle) cost a global read and a no-op call until someone
turns recording on:

>>> from repro import obs
>>> with obs.recording() as inst:
...     ...  # run a workload
...     inst.metrics.snapshot()

or, imperatively, ``obs.enable()`` / ``obs.disable()`` (what the
``repro stats`` CLI and the benchmark harness use).

The switch is process-wide on purpose: the paper's engine is a
single-writer system and the observability layer follows the same model
— a snapshot describes *this process*, not one database object.
``db.stats()`` is a convenience view over the same current
instrumentation.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional

from repro.obs.events import EventLog, NULL_EVENTS
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.slo import NULL_SLO, SloTracker
from repro.obs.tracing import NULL_TRACER, Tracer

__all__ = ["Instrumentation", "NULL", "current", "install", "enable",
           "disable", "recording", "stats"]


class Instrumentation:
    """Metrics, tracer, event log and SLO tracker that travel together."""

    __slots__ = ("metrics", "tracer", "events", "slo")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 events: Optional[EventLog] = None,
                 slo: Optional[SloTracker] = None,
                 capacity: int = 2048,
                 event_capacity: int = 4096) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(capacity)
        self.events = events if events is not None \
            else EventLog(event_capacity)
        self.slo = slo if slo is not None else SloTracker()

    @property
    def enabled(self) -> bool:
        """True when this instrumentation records anything."""
        return self.metrics.enabled

    def stats(self) -> Dict[str, Any]:
        """The combined snapshot ``db.stats()`` and ``repro stats`` print."""
        return {
            "instrumentation_enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.aggregate(),
            "spans_retained": len(self.tracer),
            "spans_dropped": self.tracer.spans_dropped,
            "events": {
                "recorded": self.events.recorded,
                "retained": len(self.events),
                "dropped": self.events.dropped,
                "by_kind": self.events.aggregate(),
            },
            "slo": self.slo.health(),
        }

    def reset(self) -> None:
        """Drop all recorded metrics, spans, events and SLO windows."""
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()
        self.slo.reset()

    def __repr__(self) -> str:
        state = "recording" if self.enabled else "no-op"
        return f"Instrumentation({state})"


#: The no-op instrumentation: the process default.
NULL = Instrumentation(NULL_REGISTRY, NULL_TRACER, NULL_EVENTS, NULL_SLO)

_current: Instrumentation = NULL


def current() -> Instrumentation:
    """The instrumentation the process is writing to right now."""
    return _current


def install(instrumentation: Instrumentation) -> Instrumentation:
    """Make *instrumentation* current; returns the previous one."""
    global _current
    previous = _current
    _current = instrumentation
    return previous


def enable(capacity: int = 2048,
           event_capacity: int = 4096) -> Instrumentation:
    """Start recording into a fresh instrumentation and return it.

    If recording is already on, the existing instrumentation is kept (so
    repeated ``enable()`` calls don't silently drop data).
    """
    if _current.enabled:
        return _current
    install(Instrumentation(capacity=capacity,
                            event_capacity=event_capacity))
    return _current


def disable() -> Instrumentation:
    """Stop recording; returns the instrumentation that was current."""
    previous = install(NULL)
    return previous


@contextlib.contextmanager
def recording(capacity: int = 2048,
              event_capacity: int = 4096) -> Iterator[Instrumentation]:
    """Record within a ``with`` block; restores the previous state after.

    Yields the fresh :class:`Instrumentation`, which stays readable after
    the block (it is merely no longer *current*).
    """
    instrumentation = Instrumentation(capacity=capacity,
                                      event_capacity=event_capacity)
    previous = install(instrumentation)
    try:
        yield instrumentation
    finally:
        install(previous)


def stats() -> Dict[str, Any]:
    """Snapshot of the current instrumentation (empty when disabled)."""
    return _current.stats()
