"""Trace/correlation context: the thread-local carrier of commit lineage.

A :class:`TraceContext` names a position in one logical transaction's
trace: the ``trace_id`` (the transaction's correlation id, ``txn-N``)
plus the ``span_id`` of the span that position should parent to.  The
tracer's per-thread open-span stack already parents same-thread nesting;
this module covers the two cases the stack cannot:

- **explicit handoff** — code that runs on *another* thread (a replica's
  pump loop applying a shipped record) receives a serialized context in
  the message and opens its span with ``tracer.span(..., parent=ctx)``;
- **ambient activation** — a layer that owns the transaction (the
  session layer's retry loop) activates its context with
  :func:`attach`, so downstream code with no span on its stack (event
  emission, journal appends on the commit path) can still discover the
  transaction id with :func:`current_txn`.

Transaction ids are process-unique and cheap (a shared
:class:`itertools.count`); they are deliberately *not* random so
deterministic tests can pin them down.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Any, Dict, Iterator, Optional

__all__ = ["TraceContext", "attach", "current", "current_txn", "new_txn_id",
           "from_wire"]


class TraceContext:
    """An immutable (trace_id, span_id) pair naming a parent position."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: Optional[str],
                 span_id: Optional[int]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> Dict[str, Any]:
        """A JSON-ready dict for carrying the context inside a message."""
        return {"txn": self.trace_id, "span": self.span_id}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, span #{self.span_id})"


def from_wire(payload: Optional[Dict[str, Any]]) -> Optional[TraceContext]:
    """Rebuild a context from :meth:`TraceContext.to_wire` (None-safe)."""
    if not payload:
        return None
    return TraceContext(payload.get("txn"), payload.get("span"))


_txn_ids = itertools.count(1)
_local = threading.local()


def new_txn_id() -> str:
    """A fresh process-unique transaction id (``txn-N``)."""
    return f"txn-{next(_txn_ids)}"


def current() -> Optional[TraceContext]:
    """The context attached to this thread, or None."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def current_txn() -> Optional[str]:
    """The attached transaction id, or None outside any transaction."""
    context = current()
    return context.trace_id if context is not None else None


@contextlib.contextmanager
def attach(context: TraceContext) -> Iterator[TraceContext]:
    """Make *context* current on this thread for the ``with`` block.

    Attachments nest (re-entrant layers push and pop); the previous
    context is restored on exit even when the block raises.
    """
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(context)
    try:
        yield context
    finally:
        stack.pop()
