"""Process-local metrics: counters, gauges and monotonic-clock histograms.

The registry is the write side of the instrumentation layer
(:mod:`repro.obs`): hot paths ask it for an instrument by name and bump
it; :meth:`MetricsRegistry.snapshot` is the read side, a plain dict that
``db.stats()``, the ``repro stats`` CLI and the benchmark harness embed
verbatim.

Two implementations share one interface:

- :class:`MetricsRegistry` records everything;
- :class:`NullRegistry` (the process default, see :mod:`repro.obs.runtime`)
  returns shared singleton no-op instruments, so an instrumented call
  site costs a dict lookup and a no-op method call — and **allocates
  nothing** — when observability is off.

Durations are measured with :func:`time.perf_counter`, the monotonic
clock; this module (and :mod:`repro.obs.tracing`) are the only places in
``repro`` allowed to touch it directly — everything else times itself
through :meth:`Histogram.time` or a tracer span, which CI enforces with a
grep guard.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "quantile", "DEFAULT_RESERVOIR",
]


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """The *q*-quantile of pre-sorted values, linearly interpolated.

    Uses the standard ``idx = q * (n - 1)`` rule (numpy's default): the
    result is ``v[floor(idx)]`` blended with ``v[ceil(idx)]`` by the
    fractional part.  Raises :class:`ValueError` on an empty sequence.
    """
    if not sorted_values:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    fraction = position - lower
    if fraction == 0.0:
        return float(sorted_values[lower])
    return (sorted_values[lower]
            + (sorted_values[lower + 1] - sorted_values[lower]) * fraction)


class Counter:
    """A monotonically increasing count.

    Thread-safe: the stress harness bumps counters from many sessions at
    once, and ``value += amount`` is a read-modify-write that loses
    increments without the lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1)."""
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (sizes, active counts).

    Thread-safe for the same reason as :class:`Counter`: ``add`` is a
    read-modify-write.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        """Record the current reading."""
        with self._lock:
            self.value = value

    def add(self, amount) -> None:
        """Move the reading by *amount* (may be negative)."""
        with self._lock:
            self.value += amount


class _Timer:
    """Context manager: observes the elapsed monotonic time on exit."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


#: Retained samples per histogram before reservoir sampling kicks in.
DEFAULT_RESERVOIR = 8192


class Histogram:
    """Bounded-sample histogram with p50/p95/p99/max summaries.

    Below *reservoir* observations every sample is retained and the
    summary is exact.  Above it, Vitter's Algorithm R keeps a uniform
    random sample of the stream in constant memory, so quantiles become
    unbiased estimates while ``count``/``total`` (and therefore the
    mean) stay exact; ``max`` degrades to the maximum of the retained
    sample.  The reservoir RNG is seeded from the histogram's name, so
    runs are reproducible.  Thread-safe.
    """

    __slots__ = ("name", "_values", "_lock", "_reservoir", "_seen",
                 "_total", "_max", "_rng")

    def __init__(self, name: str,
                 reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError("histogram reservoir must be positive")
        self.name = name
        self._values: List[float] = []
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._seen = 0
        self._total = 0.0
        self._max = 0.0
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._seen += 1
            self._total += value
            if self._seen == 1 or value > self._max:
                self._max = value
            if len(self._values) < self._reservoir:
                self._values.append(value)
            else:  # Algorithm R: replace a random slot with prob k/seen
                slot = self._rng.randrange(self._seen)
                if slot < self._reservoir:
                    self._values[slot] = value

    def time(self) -> _Timer:
        """A context manager observing the wrapped block's duration."""
        return _Timer(self)

    @property
    def count(self) -> int:
        """How many samples have been observed (exact, not retained)."""
        return self._seen

    @property
    def reservoir(self) -> int:
        """The retained-sample cap."""
        return self._reservoir

    @property
    def sampled(self) -> bool:
        """True once the stream outgrew the reservoir (estimates apply)."""
        return self._seen > self._reservoir

    @property
    def values(self) -> List[float]:
        """A copy of the retained samples (all of them below the cap)."""
        with self._lock:
            return list(self._values)

    def summary(self) -> Dict[str, float]:
        """``{count, total, p50, p95, p99, max}`` over the samples so far.

        ``count``/``total``/``max`` are exact; the quantiles are exact
        below the reservoir cap and uniform-sample estimates above it.
        """
        with self._lock:
            if not self._values:
                return {"count": 0, "total": 0.0, "p50": 0.0, "p95": 0.0,
                        "p99": 0.0, "max": 0.0}
            ordered = sorted(self._values)
            seen, total, maximum = self._seen, self._total, self._max
        return {
            "count": seen,
            "total": float(total),
            "p50": quantile(ordered, 0.50),
            "p95": quantile(ordered, 0.95),
            "p99": quantile(ordered, 0.99),
            "max": float(maximum),
        }


class MetricsRegistry:
    """A process-local, name-keyed home for instruments.

    Instruments are created on first use and live for the registry's
    lifetime; asking twice for the same name returns the same object, so
    call sites may cache the handle.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created empty on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created at 0 on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name* (created empty on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict snapshot of every instrument, sorted by name."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (used between benchmark series)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def add(self, amount) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullRegistry(MetricsRegistry):
    """The zero-cost registry: every lookup returns a shared no-op.

    No instrument is ever created, no sample stored, and — the property
    the no-op tests pin down — no call on it allocates: the singletons
    below are returned by reference and their methods do nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


#: The shared no-op registry (the process default until recording is on).
NULL_REGISTRY = NullRegistry()
