"""Process-local metrics: counters, gauges and monotonic-clock histograms.

The registry is the write side of the instrumentation layer
(:mod:`repro.obs`): hot paths ask it for an instrument by name and bump
it; :meth:`MetricsRegistry.snapshot` is the read side, a plain dict that
``db.stats()``, the ``repro stats`` CLI and the benchmark harness embed
verbatim.

Two implementations share one interface:

- :class:`MetricsRegistry` records everything;
- :class:`NullRegistry` (the process default, see :mod:`repro.obs.runtime`)
  returns shared singleton no-op instruments, so an instrumented call
  site costs a dict lookup and a no-op method call — and **allocates
  nothing** — when observability is off.

Durations are measured with :func:`time.perf_counter`, the monotonic
clock; this module (and :mod:`repro.obs.tracing`) are the only places in
``repro`` allowed to touch it directly — everything else times itself
through :meth:`Histogram.time` or a tracer span, which CI enforces with a
grep guard.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "quantile",
]


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """The *q*-quantile of pre-sorted values, linearly interpolated.

    Uses the standard ``idx = q * (n - 1)`` rule (numpy's default): the
    result is ``v[floor(idx)]`` blended with ``v[ceil(idx)]`` by the
    fractional part.  Raises :class:`ValueError` on an empty sequence.
    """
    if not sorted_values:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    fraction = position - lower
    if fraction == 0.0:
        return float(sorted_values[lower])
    return (sorted_values[lower]
            + (sorted_values[lower + 1] - sorted_values[lower]) * fraction)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1)."""
        self.value += amount


class Gauge:
    """A value that goes up and down (sizes, active counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        """Record the current reading."""
        self.value = value

    def add(self, amount) -> None:
        """Move the reading by *amount* (may be negative)."""
        self.value += amount


class _Timer:
    """Context manager: observes the elapsed monotonic time on exit."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class Histogram:
    """Raw-sample histogram with p50/p95/p99/max summaries.

    Keeps every observation (these are process-local diagnostics, not a
    long-running telemetry pipeline); :meth:`summary` sorts once and
    reads the quantiles off the sorted samples.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._values.append(value)

    def time(self) -> _Timer:
        """A context manager observing the wrapped block's duration."""
        return _Timer(self)

    @property
    def count(self) -> int:
        """How many samples have been observed."""
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """A copy of the raw samples, in observation order."""
        return list(self._values)

    def summary(self) -> Dict[str, float]:
        """``{count, total, p50, p95, p99, max}`` over the samples so far."""
        if not self._values:
            return {"count": 0, "total": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        ordered = sorted(self._values)
        return {
            "count": len(ordered),
            "total": float(sum(ordered)),
            "p50": quantile(ordered, 0.50),
            "p95": quantile(ordered, 0.95),
            "p99": quantile(ordered, 0.99),
            "max": float(ordered[-1]),
        }


class MetricsRegistry:
    """A process-local, name-keyed home for instruments.

    Instruments are created on first use and live for the registry's
    lifetime; asking twice for the same name returns the same object, so
    call sites may cache the handle.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created empty on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created at 0 on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name* (created empty on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict snapshot of every instrument, sorted by name."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (used between benchmark series)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def add(self, amount) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullRegistry(MetricsRegistry):
    """The zero-cost registry: every lookup returns a shared no-op.

    No instrument is ever created, no sample stored, and — the property
    the no-op tests pin down — no call on it allocates: the singletons
    below are returned by reference and their methods do nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


#: The shared no-op registry (the process default until recording is on).
NULL_REGISTRY = NullRegistry()
