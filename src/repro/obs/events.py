"""Structured lifecycle events: the machine-readable commit record.

Spans answer "how long"; the event log answers "what happened, in what
order, to which transaction".  Every event is one of the schema'd
:data:`EVENT_KINDS` below — emitting an unknown kind raises, so the
vocabulary stays a contract rather than a convention — and carries the
transaction id it belongs to (defaulting to the thread's attached
:mod:`repro.obs.context`).

The log is a bounded ring (old events fall off the back and are counted
in :attr:`EventLog.dropped`) with a JSON-lines sink, mirroring the
tracer's design: constant memory under chaos runs, exportable for
offline reconstruction.  :class:`NullEventLog` is the zero-cost twin
used while recording is off.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, IO, Iterator, List, Optional

__all__ = ["Event", "EventLog", "NullEventLog", "NULL_EVENTS", "EVENT_KINDS"]

from repro.obs import context as trace_context

#: The lifecycle vocabulary (docs/OBSERVABILITY.md documents each kind).
EVENT_KINDS = (
    "txn.begin",          # SessionLayer.run accepted a transaction
    "txn.attempt",        # one optimistic attempt started {attempt}
    "txn.shed",           # admission refused the attempt {retry_after}
    "txn.conflict",       # first-committer-wins validation failed {relation}
    "txn.commit",         # the transaction committed {token, op_class}
    "txn.abort",          # the transaction gave up {error}
    "txn.deadline",       # the deadline expired before commit
    "2pc.prepare",        # coordinator journaled a shard prepare {gid, shard}
    "2pc.decide",         # decision-log append: THE commit point {gid}
    "2pc.apply",          # one shard applied its decided batch {gid, shard}
    "journal.append",     # a commit record became durable {shard, records}
    "replication.ship",   # primary published a record {node, seq}
    "replication.apply",  # replica applied a shipped record {node, seq}
    "replication.failover",  # FailoverCoordinator promoted {node, epoch}
    "integrity.audit",    # a scrub/audit pass finished {findings, records}
    "integrity.damage",   # one classified finding {file, damage, index}
    "integrity.quarantine",  # a damaged file was quarantined {file}
    "integrity.repair",   # a damaged suffix was re-fetched {records, path}
    "integrity.degraded",  # a node limited itself to its verified prefix
    "integrity.healed",   # a degraded node converged with its source
    "server.request",     # the server accepted a request {conn, id, klass}
    "server.reply",       # the final reply frame was sent {conn, id, status}
    "server.shed",        # admission refused a request {tenant, retry_after,
                          #   queued, active}
    "server.error",       # a request failed with a typed error {error}
    "server.slow_client",  # a stalled connection was aborted {conn}
    "server.drain",       # the drain state machine moved {phase, in_flight}
)

_KIND_SET = frozenset(EVENT_KINDS)


class Event:
    """One lifecycle event: schema'd kind, txn id, free attributes."""

    __slots__ = ("seq", "ts", "kind", "txn", "attrs")

    def __init__(self, seq: int, ts: float, kind: str, txn: Optional[str],
                 attrs: Dict[str, Any]) -> None:
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.txn = txn
        self.attrs = attrs

    def describe(self) -> Dict[str, Any]:
        """A JSON-ready dict (the exporter's row format)."""
        return {
            "seq": self.seq,
            "ts": round(self.ts, 9),
            "kind": self.kind,
            "txn": self.txn,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        txn = f" {self.txn}" if self.txn else ""
        return f"Event(#{self.seq} {self.kind}{txn} {self.attrs!r})"


class EventLog:
    """A bounded, thread-safe ring of lifecycle events."""

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("event-log capacity must be positive")
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0

    @property
    def capacity(self) -> int:
        """The ring size (events retained)."""
        return self._events.maxlen  # type: ignore[return-value]

    @property
    def recorded(self) -> int:
        """Events ever emitted (including ones that fell off the ring)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring to make room."""
        return self._dropped

    def emit(self, kind: str, txn: Optional[str] = None,
             **attrs: Any) -> None:
        """Append one event; *kind* must be in :data:`EVENT_KINDS`.

        When *txn* is omitted the thread's attached trace context supplies
        it (None outside any transaction).
        """
        if kind not in _KIND_SET:
            raise ValueError(f"unknown event kind {kind!r} "
                             f"(schema: {', '.join(EVENT_KINDS)})")
        if txn is None:
            txn = trace_context.current_txn()
        ts = time.perf_counter()
        with self._lock:
            self._seq += 1
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append(Event(self._seq, ts, kind, txn, attrs))

    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def for_txn(self, txn: str) -> List[Event]:
        """The retained events belonging to transaction *txn*."""
        return [event for event in self.events() if event.txn == txn]

    def aggregate(self) -> Dict[str, int]:
        """Per-kind counts over the retained events, sorted by kind."""
        counts: Dict[str, int] = {}
        for event in self.events():
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def export_jsonl(self, target) -> int:
        """Write the retained events as JSON lines; returns the count.

        *target* is an open text file or a path.
        """
        if hasattr(target, "write"):
            return self._write_jsonl(target)
        with open(target, "w", encoding="utf-8") as handle:
            return self._write_jsonl(handle)

    def _write_jsonl(self, handle: IO[str]) -> int:
        count = 0
        for event in self.events():
            handle.write(json.dumps(event.describe(), sort_keys=True,
                                    default=str))
            handle.write("\n")
            count += 1
        return count

    def reset(self) -> None:
        """Drop the retained events and the drop count."""
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events())

    def __repr__(self) -> str:
        return (f"EventLog({len(self)}/{self.capacity} retained, "
                f"{self.dropped} dropped)")


class NullEventLog(EventLog):
    """The disabled event log: emits nothing, retains nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def emit(self, kind: str, txn: Optional[str] = None,
             **attrs: Any) -> None:
        pass

    def events(self) -> List[Event]:
        return []

    def export_jsonl(self, target) -> int:
        return 0


#: The shared no-op event log (the process default until recording is on).
NULL_EVENTS = NullEventLog()
