"""Exporters: OpenMetrics text exposition and benchmark-baseline diffing.

Two read-side consumers of the snapshots the rest of the layer already
produces:

- :func:`to_openmetrics` renders a :meth:`MetricsRegistry.snapshot`
  dict in the OpenMetrics / Prometheus text format (counters as
  ``_total``, histograms as quantile summaries), so ``repro stats
  --openmetrics`` can feed a scraper without any new dependency;
- :func:`bench_diff` compares a freshly produced ``BENCH_*.json`` report
  against the committed baseline, extracting the *directional* metrics
  (throughput: higher is better; per-op latency and overhead ratios:
  lower is better) and flagging relative regressions beyond a tolerance.
  ``repro bench-diff`` wraps it with a non-zero exit on regression.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

__all__ = ["to_openmetrics", "bench_diff", "DIRECTION_RULES"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str = "repro") -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    try:
        return repr(float(value))
    except (TypeError, ValueError):
        return "0"


def to_openmetrics(snapshot: Dict[str, Any], prefix: str = "repro") -> str:
    """Render a metrics snapshot as OpenMetrics text exposition.

    *snapshot* is the ``{"counters", "gauges", "histograms"}`` dict from
    :meth:`MetricsRegistry.snapshot`.  Histogram summaries become
    Prometheus *summary* families (quantile series + ``_count`` +
    ``_sum``).  The output ends with the mandatory ``# EOF`` marker.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for q_label, key in (("0.5", "p50"), ("0.95", "p95"),
                             ("0.99", "p99")):
            if key in summary:
                lines.append(f'{metric}{{quantile="{q_label}"}} '
                             f"{_format_value(summary[key])}")
        lines.append(f"{metric}_count {_format_value(summary.get('count', 0))}")
        lines.append(f"{metric}_sum {_format_value(summary.get('total', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


#: Which leaf metrics in a BENCH_*.json report are directional, and how.
#: Matched against the dotted path of each numeric leaf.
DIRECTION_RULES: Tuple[Tuple[str, str], ...] = (
    (r"\bper_commit_us$", "lower"),
    (r"\bper_record_us$", "lower"),
    (r"\bper_query_us$", "lower"),
    (r"\boverhead_ratio$", "lower"),
    (r"\bflatness_ratio$", "lower"),
    # Of the latency percentiles the workload reports carry, only the
    # median is directional: tail percentiles (p95/p99) on a shared CI
    # runner are scheduler noise, not capability, and would flap any
    # tolerance tight enough to mean something.
    (r"\blatency_p50_us$", "lower"),
    (r"\bops_per_sec$", "higher"),
    (r"\bthroughput_tps$", "higher"),
    (r"\bthroughput_rps$", "higher"),
    (r"\bspeedup$", "higher"),
)

_COMPILED_RULES = tuple((re.compile(pattern), direction)
                        for pattern, direction in DIRECTION_RULES)


def _numeric_leaves(report: Any, path: str = "") -> Dict[str, float]:
    leaves: Dict[str, float] = {}
    if isinstance(report, dict):
        for key, value in report.items():
            child = f"{path}.{key}" if path else str(key)
            leaves.update(_numeric_leaves(value, child))
    elif isinstance(report, list):
        for index, value in enumerate(report):
            leaves.update(_numeric_leaves(value, f"{path}[{index}]"))
    elif isinstance(report, (int, float)) and not isinstance(report, bool):
        leaves[path] = float(report)
    return leaves


def _direction(path: str) -> str:
    for pattern, direction in _COMPILED_RULES:
        if pattern.search(path):
            return direction
    return ""


def bench_diff(baseline: Dict[str, Any], fresh: Dict[str, Any],
               tolerance: float = 0.5) -> Dict[str, Any]:
    """Compare two benchmark reports metric-by-metric.

    Walks both reports for numeric leaves whose dotted path matches a
    :data:`DIRECTION_RULES` entry and is present in *both*.  For each,
    computes the relative change *in the bad direction* — a positive
    ``change`` always means "got worse" regardless of polarity — and
    flags a regression when it exceeds *tolerance* (0.5 = 50% worse).

    Returns ``{"compared", "regressions", "ok", "rows"}``; rows carry
    ``{metric, direction, baseline, fresh, change, regression}`` sorted
    worst-first.  Baselines at 0 are skipped (no relative change).
    """
    base_leaves = _numeric_leaves(baseline)
    fresh_leaves = _numeric_leaves(fresh)
    rows: List[Dict[str, Any]] = []
    for path in sorted(set(base_leaves) & set(fresh_leaves)):
        direction = _direction(path)
        if not direction:
            continue
        base_value = base_leaves[path]
        fresh_value = fresh_leaves[path]
        if base_value == 0.0:
            continue
        if direction == "lower":
            change = (fresh_value - base_value) / abs(base_value)
        else:
            change = (base_value - fresh_value) / abs(base_value)
        rows.append({
            "metric": path,
            "direction": direction,
            "baseline": base_value,
            "fresh": fresh_value,
            "change": round(change, 6),
            "regression": change > tolerance,
        })
    rows.sort(key=lambda row: row["change"], reverse=True)
    regressions = sum(1 for row in rows if row["regression"])
    return {
        "compared": len(rows),
        "regressions": regressions,
        "ok": regressions == 0,
        "tolerance": tolerance,
        "rows": rows,
    }
