"""SLO / health: per-operation-class latency objectives with error budgets.

The session layers classify every committed transaction into one of
three operation classes — ``read`` (no buffered writes), a
``single_shard_write`` (one shard's fast path), or a
``cross_shard_write`` (the 2PC protocol) — and record its end-to-end
latency (admission + every retry attempt + commit) into the
:class:`SloTracker`'s per-class sliding window.

Health is evaluated lazily against an :class:`SloPolicy`: each class has
a latency objective and an **error budget** — the fraction of the
window allowed to miss the objective.  A class is healthy while its burn
rate (violations / samples) stays within budget; ``repro health`` exits
non-zero the moment any class burns through.  Evaluating at read time
(rather than at record time) means the same window can be re-judged
under a stricter policy without re-running the workload.

The default objectives are deliberately loose — they must hold on noisy
CI machines — and tunable per call (``repro health --read-ms ...``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.metrics import quantile

__all__ = ["Objective", "SloPolicy", "SloTracker", "NullSloTracker",
           "NULL_SLO", "OP_CLASSES", "DEFAULT_POLICY"]

#: The canonical operation classes (docs/OBSERVABILITY.md).
OP_CLASSES = ("read", "single_shard_write", "cross_shard_write")


class Objective:
    """One class's target: latency bound + tolerated miss fraction."""

    __slots__ = ("latency_s", "budget")

    def __init__(self, latency_s: float, budget: float) -> None:
        if latency_s <= 0.0:
            raise ValueError("latency objective must be positive")
        if not 0.0 <= budget < 1.0:
            raise ValueError("error budget must be in [0, 1)")
        self.latency_s = latency_s
        self.budget = budget

    def __repr__(self) -> str:
        return f"Objective(<= {self.latency_s * 1e3:.1f} ms, " \
               f"budget {self.budget:.0%})"


class SloPolicy:
    """A named set of per-class objectives."""

    __slots__ = ("objectives",)

    def __init__(self, objectives: Dict[str, Objective]) -> None:
        self.objectives = dict(objectives)

    def objective(self, op_class: str) -> Optional[Objective]:
        return self.objectives.get(op_class)

    def __repr__(self) -> str:
        return f"SloPolicy({self.objectives!r})"


#: Loose-by-design defaults: an in-process engine on a shared CI box.
DEFAULT_POLICY = SloPolicy({
    "read": Objective(latency_s=0.050, budget=0.10),
    "single_shard_write": Objective(latency_s=0.250, budget=0.10),
    "cross_shard_write": Objective(latency_s=1.000, budget=0.10),
})


class SloTracker:
    """Per-class sliding latency windows, judged against a policy."""

    enabled = True

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("SLO window must be positive")
        self._window = window
        self._samples: Dict[str, deque] = {}
        self._lock = threading.Lock()

    @property
    def window(self) -> int:
        """Samples retained per class (the sliding window length)."""
        return self._window

    def record(self, op_class: str, latency_s: float) -> None:
        """Add one completed operation's end-to-end latency."""
        with self._lock:
            samples = self._samples.get(op_class)
            if samples is None:
                samples = self._samples[op_class] = deque(maxlen=self._window)
            samples.append(latency_s)

    def classes(self) -> List[str]:
        """Classes with at least one recorded sample."""
        with self._lock:
            return sorted(self._samples)

    def samples(self, op_class: str) -> List[float]:
        """A copy of the class's window, oldest first."""
        with self._lock:
            return list(self._samples.get(op_class, ()))

    def health(self, policy: Optional[SloPolicy] = None) -> Dict[str, Any]:
        """Judge every class against *policy* (default loose objectives).

        Returns ``{"ok": bool, "classes": {name: {...}}}`` where each
        class entry carries its window stats, the objective, the
        violation count and the burn rate.  A class with no objective is
        reported but never unhealthy; an objective with no samples is
        healthy (nothing burned).
        """
        if policy is None:
            policy = DEFAULT_POLICY
        with self._lock:
            windows = {name: list(samples)
                       for name, samples in self._samples.items()}
        names = sorted(set(windows) | set(policy.objectives))
        classes: Dict[str, Any] = {}
        healthy = True
        for name in names:
            samples = windows.get(name, [])
            objective = policy.objective(name)
            entry: Dict[str, Any] = {"count": len(samples)}
            if samples:
                ordered = sorted(samples)
                entry.update(
                    p50=quantile(ordered, 0.50),
                    p95=quantile(ordered, 0.95),
                    max=float(ordered[-1]),
                )
            if objective is None:
                entry.update(objective_s=None, budget=None, violations=0,
                             burn=0.0, ok=True)
            else:
                violations = sum(1 for value in samples
                                 if value > objective.latency_s)
                burn = violations / len(samples) if samples else 0.0
                ok = burn <= objective.budget
                entry.update(objective_s=objective.latency_s,
                             budget=objective.budget, violations=violations,
                             burn=round(burn, 6), ok=ok)
                healthy = healthy and ok
            classes[name] = entry
        return {"ok": healthy, "classes": classes}

    def reset(self) -> None:
        """Drop every window."""
        with self._lock:
            self._samples.clear()

    def __repr__(self) -> str:
        return f"SloTracker({len(self.classes())} classes, " \
               f"window {self._window})"


class NullSloTracker(SloTracker):
    """The disabled tracker: records nothing, always healthy."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(window=1)

    def record(self, op_class: str, latency_s: float) -> None:
        pass


#: The shared no-op tracker (the process default until recording is on).
NULL_SLO = NullSloTracker()
