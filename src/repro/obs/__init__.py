"""Observability: metrics, tracing and the process-local switchboard.

The instrumentation layer the rest of ``repro`` writes to:

- :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` (counters, gauges,
  monotonic-clock histograms with p50/p95/max summaries) and its
  zero-cost :class:`NullRegistry` twin;
- :mod:`~repro.obs.tracing` — :class:`Tracer` producing nested
  :class:`Span`\\ s into a bounded ring buffer, with a JSON-lines
  exporter;
- :mod:`~repro.obs.runtime` — the *current* instrumentation: a no-op by
  default, swapped in with :func:`enable` / :func:`recording`.

Metric names and the span taxonomy are documented in
``docs/OBSERVABILITY.md``.  Instrumented layers: the commit applier
(:meth:`repro.core.base.Database._apply`), the incremental advance paths
(:mod:`repro.core.temporal`, :mod:`repro.core.rollback`), the index
cache and interval trees (:mod:`repro.core.indexing`), the TQuel
pipeline (:mod:`repro.tquel`), the transaction lifecycle
(:mod:`repro.txn`) and the workload driver (:mod:`repro.workload`).
"""

from repro.obs import context
from repro.obs.context import TraceContext
from repro.obs.events import (
    EVENT_KINDS, Event, EventLog, NULL_EVENTS, NullEventLog,
)
from repro.obs.export import bench_diff, to_openmetrics
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, NullRegistry, NULL_REGISTRY,
    quantile,
)
from repro.obs.slo import (
    DEFAULT_POLICY, NULL_SLO, NullSloTracker, Objective, OP_CLASSES,
    SloPolicy, SloTracker,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.runtime import (
    Instrumentation, NULL, current, disable, enable, install, recording,
    stats,
)

__all__ = [
    "Counter",
    "DEFAULT_POLICY",
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL",
    "NULL_EVENTS",
    "NULL_REGISTRY",
    "NULL_SLO",
    "NULL_TRACER",
    "NullEventLog",
    "NullRegistry",
    "NullSloTracker",
    "NullTracer",
    "OP_CLASSES",
    "Objective",
    "SloPolicy",
    "SloTracker",
    "Span",
    "TraceContext",
    "Tracer",
    "bench_diff",
    "context",
    "current",
    "disable",
    "enable",
    "install",
    "quantile",
    "recording",
    "stats",
    "to_openmetrics",
]
