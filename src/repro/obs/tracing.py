"""Nested spans over a ring buffer, with a JSON-lines exporter.

A :class:`Span` is one timed region — name, attributes, monotonic-clock
duration, and the id of the span it ran inside.  The :class:`Tracer`
keeps the *finished* spans in a bounded ring buffer (old spans fall off
the back), so tracing a long workload costs constant memory.

Nesting is tracked per thread with an open-span stack: a span started
while another is open records that span as its parent, which is how one
``commit.apply`` span owns its operation children and one
``tquel.statement`` span owns its lex/parse/analyze/evaluate phases.

Finished spans land in the buffer in *completion* order (children before
their parent, as in every tracing system), each carrying ``started_at``
(monotonic seconds) so exporters can re-derive wall ordering.

:class:`NullTracer` is the disabled twin: :meth:`NullTracer.span`
returns a shared no-op context manager, so tracing call sites cost a
method call when observability is off.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Dict, IO, Iterator, List, Optional

from repro.obs import context as trace_context
from repro.obs.context import TraceContext

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed region of execution.

    Created by :meth:`Tracer.span` and used as a context manager; set
    extra attributes mid-flight with :meth:`set`.  ``duration`` is in
    monotonic-clock seconds.  ``trace_id`` correlates the span with the
    logical transaction it served (None outside any transaction).
    """

    __slots__ = ("name", "attributes", "span_id", "parent_id", "trace_id",
                 "started_at", "duration", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], trace_id: Optional[str],
                 attributes: Dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.started_at = 0.0
        self.duration = 0.0
        self._tracer = tracer

    @property
    def context(self) -> TraceContext:
        """This span's position as a handoff-able :class:`TraceContext`."""
        return TraceContext(self.trace_id, self.span_id)

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the live span; returns the span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self.started_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.started_at
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._finish(self)
        return False

    def describe(self) -> Dict[str, Any]:
        """A JSON-ready dict (the exporter's row format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "started_at": round(self.started_at, 9),
            "duration_s": round(self.duration, 9),
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        parent = f" in #{self.parent_id}" if self.parent_id is not None else ""
        return (f"Span(#{self.span_id} {self.name!r}{parent}, "
                f"{self.duration * 1e3:.3f} ms)")


class Tracer:
    """Produces nested spans and retains the last *capacity* finished ones."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self._finished: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()  # per-thread open-span stack
        self._ring_lock = threading.Lock()
        self._dropped = 0

    @property
    def capacity(self) -> int:
        """The ring-buffer size (finished spans retained)."""
        return self._finished.maxlen  # type: ignore[return-value]

    @property
    def spans_dropped(self) -> int:
        """Finished spans evicted from the ring buffer to make room."""
        return self._dropped

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, parent: Optional[Any] = None,
             trace_id: Optional[str] = None, **attributes: Any) -> Span:
        """Open a span; use as a context manager.

        Parenting, most explicit first:

        1. *parent* — a :class:`Span` or :class:`TraceContext` handed
           across a thread (or process message) boundary;
        2. the span currently open on this thread's stack;
        3. the thread's attached :mod:`repro.obs.context`, if any.

        The trace id is inherited from the chosen parent unless
        *trace_id* overrides it (how a transaction's root span starts a
        new trace).
        """
        stack = self._stack()
        parent_id: Optional[int] = None
        inherited: Optional[str] = None
        if parent is not None:
            parent_id = parent.span_id
            inherited = parent.trace_id
        elif stack:
            parent_id = stack[-1].span_id
            inherited = stack[-1].trace_id
        else:
            ambient = trace_context.current()
            if ambient is not None:
                parent_id = ambient.span_id
                inherited = ambient.trace_id
        span = Span(self, name, next(self._ids), parent_id,
                    trace_id if trace_id is not None else inherited,
                    attributes)
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit (mis-nested manual use): drop from middle
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._ring_lock:
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)

    def spans(self) -> List[Span]:
        """The retained finished spans, oldest first (completion order)."""
        return list(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name ``{count, total_s, max_s}`` over the retained spans."""
        result: Dict[str, Dict[str, float]] = {}
        for span in self._finished:
            entry = result.setdefault(span.name,
                                      {"count": 0, "total_s": 0.0,
                                       "max_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += span.duration
            if span.duration > entry["max_s"]:
                entry["max_s"] = span.duration
        for entry in result.values():
            entry["total_s"] = round(entry["total_s"], 9)
            entry["max_s"] = round(entry["max_s"], 9)
        return result

    def export_jsonl(self, target) -> int:
        """Write the retained spans as JSON lines; returns the span count.

        *target* is an open text file or a path.
        """
        if hasattr(target, "write"):
            return self._write_jsonl(target)
        with open(target, "w", encoding="utf-8") as handle:
            return self._write_jsonl(handle)

    def _write_jsonl(self, handle: IO[str]) -> int:
        count = 0
        for span in self._finished:
            handle.write(json.dumps(span.describe(), sort_keys=True,
                                    default=str))
            handle.write("\n")
            count += 1
        return count

    def reset(self) -> None:
        """Drop the retained spans and the eviction count."""
        with self._ring_lock:
            self._finished.clear()
            self._dropped = 0

    def __repr__(self) -> str:
        return f"Tracer({len(self._finished)}/{self.capacity} spans retained)"


class _NullSpan:
    """The shared do-nothing span."""

    __slots__ = ()

    name = "null"
    attributes: Dict[str, Any] = {}
    span_id = 0
    parent_id = None
    trace_id = None
    started_at = 0.0
    duration = 0.0

    @property
    def context(self) -> TraceContext:
        return TraceContext(None, None)

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: spans are shared no-ops, nothing is retained."""

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def span(self, name: str, parent: Optional[Any] = None,  # type: ignore[override]
             trace_id: Optional[str] = None,
             **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        return {}

    def export_jsonl(self, target) -> int:
        return 0


#: The shared no-op tracer (the process default until recording is on).
NULL_TRACER = NullTracer()
