"""Static databases (§4.1 of the paper).

A static database "models the real world, as it changes dynamically, by a
snapshot at a particular point in time".  Updates (insertion, deletion,
replacement) take effect at commit and *destroy* the previous state: "past
states of the database, and those of the real world, are discarded and
forgotten completely".

Consequently a static database supports neither rollback (no transaction
time is kept) nor historical queries (no valid time is kept) — asking for
either raises the corresponding taxonomy error from the base class.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.core.base import Database
from repro.core.taxonomy import DatabaseKind
from repro.errors import JournalError, UnknownRelationError
from repro.relational.constraints import KeyConstraint, check_all
from repro.relational.relation import Predicate, Relation
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple
from repro.time.instant import Instant
from repro.txn.transaction import Operation, Transaction

_Store = Dict[str, Relation]


class StaticDatabase(Database):
    """The conventional snapshot database: one current state, no history."""

    kind = DatabaseKind.STATIC

    def __init__(self, clock=None, index: bool = True) -> None:
        # Static snapshots have no temporal axis to index; the knob is
        # accepted for API uniformity across the four kinds.
        super().__init__(clock, index=index)
        self._store: _Store = {}

    # -- DML API -----------------------------------------------------------------

    def insert(self, name: str, values: Mapping[str, Any],
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Insert one tuple (a no-op if an identical tuple exists: set semantics)."""
        checked = self._checked_values(name, values)
        return self._submit(Operation("insert", name, {"values": checked}), txn)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Delete every tuple agreeing with *match* (all tuples if ``None``)."""
        checked = self._checked_match(name, match or {})
        return self._submit(Operation("delete", name, {"match": checked}), txn)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any],
                txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Replace attributes of every tuple agreeing with *match*."""
        checked_match = self._checked_match(name, match)
        checked_updates = self._checked_match(name, updates)
        return self._submit(
            Operation("replace", name,
                      {"match": checked_match, "updates": checked_updates}),
            txn)

    def delete_where(self, name: str, predicate: Predicate,
                     txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Delete by predicate.

        The predicate is resolved against the *current* snapshot into
        concrete full-tuple matches, so the journaled operations are plain
        values and replay exactly.  Under the single-writer model this is
        equivalent to resolving at commit.
        """
        matched = self.snapshot(name).select(predicate)
        if txn is not None:
            for row in matched:
                self.delete(name, dict(row), txn=txn)
            return None
        with self.begin() as batch:
            for row in matched:
                self.delete(name, dict(row), txn=batch)
        return batch.commit_time

    # -- queries ---------------------------------------------------------------------

    def snapshot(self, name: str) -> Relation:
        """The current (and only) state of the relation."""
        self._require_defined(name)
        return self._store[name]

    # -- applier hooks ------------------------------------------------------------------

    def _stage(self) -> _Store:
        return dict(self._store)

    def _install(self, staged: _Store) -> None:
        for name in staged:
            if name in self._schemas:
                self._check_state(name, staged[name])
        self._store = staged

    def _check_state(self, name: str, relation: Relation) -> None:
        declared = list(self._constraints[name])
        if self._schemas[name].key:
            declared.append(KeyConstraint(self._schemas[name].key))
        check_all(relation, declared)

    def _create_store(self, staged: _Store, name: str, schema: Schema) -> None:
        staged[name] = Relation.empty(schema)

    def _drop_store(self, staged: _Store, name: str) -> None:
        staged.pop(name, None)

    def _apply_dml(self, staged: _Store, op: Operation,
                   commit_time: Instant) -> None:
        try:
            current = staged[op.relation]
        except KeyError:
            raise UnknownRelationError(f"no relation {op.relation!r}") from None
        schema = current.schema
        if op.action == "insert":
            row = Tuple(schema, op.arguments["values"])
            staged[op.relation] = current.with_tuple(row)
        elif op.action == "delete":
            match = op.arguments["match"]
            staged[op.relation] = current.select(
                lambda row: not self._matches(row, match))
        elif op.action == "replace":
            match = op.arguments["match"]
            updates = op.arguments["updates"]
            staged[op.relation] = Relation(schema, (
                row.replace(**updates) if self._matches(row, match) else row
                for row in current
            ))
        else:
            raise JournalError(
                f"static databases do not understand {op.action!r}"
            )
