"""Historical databases (§4.3 of the paper).

A historical database "records a single historical state per relation,
storing the history as it is best known.  As errors are discovered, they
are corrected by modifying the database."  It incorporates **valid time**
— the time the stored information models reality — and supports
*historical queries* (TQuel ``when`` / ``valid``), but keeps no record of
its own past states: "it is not possible to view the database as it was in
the past".

The central value type here, :class:`HistoricalRelation`, is shared with
the temporal database (a temporal relation *is* a sequence of historical
states, §4.4), as is the operation semantics in
:func:`apply_historical_operation`.

Update semantics (all arbitrary modifications, per Figure 12's
``Append-Only: No`` for valid time):

- ``insert(values, valid_from, valid_to)`` — a new fact with its validity;
- ``delete(match, valid_from, valid_to)`` — remove the matching facts'
  validity *within* the given period (splitting rows as needed);
- ``replace(match, updates, valid_from, valid_to)`` — within the period,
  the matching facts' attributes change to *updates*; outside it they are
  untouched.  This is how a promotion is recorded: replace rank to
  ``full`` from 12/01/82 onward turns one ``associate [09/01/77, ∞)`` row
  into ``associate [09/01/77, 12/01/82)`` + ``full [12/01/82, ∞)`` —
  exactly Figure 6.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Iterable, List, Mapping, NamedTuple,
                    Optional, Sequence, Tuple as PyTuple, Union)

from repro.core.base import Database, InstantLike
from repro.core.taxonomy import DatabaseKind
from repro.errors import ConstraintViolation, JournalError, UnknownRelationError
from repro.relational.constraints import Constraint, check_all
from repro.relational.expression import Expression
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple
from repro.time.element import TemporalElement
from repro.time.instant import Instant, POS_INF, instant as _coerce
from repro.time.period import Period
from repro.txn.transaction import Operation, Transaction

Predicate = Union[Expression, Callable[[Tuple], bool]]


class HistoricalRow(NamedTuple):
    """One fact plus the valid-time period during which it models reality."""

    data: Tuple
    valid: Period

    def valid_at(self, when: Instant) -> bool:
        """Does this fact hold at valid-time instant *when*?"""
        return self.valid.contains(when)


class HistoricalRelation:
    """A valid-time relation (Figure 6): an immutable value object.

    Rows pair a data tuple with a valid period.  Derived historical
    relations (from selections, projections, timeslices of temporal
    relations, TQuel retrieves) are the same type — the closure property
    the paper requires ("the derived relation is also an historical
    relation").
    """

    __slots__ = ("_schema", "_rows", "_coalesced")

    def __init__(self, schema: Schema,
                 rows: Iterable[HistoricalRow] = ()) -> None:
        self._schema = schema
        deduped: Dict[HistoricalRow, None] = {}
        for row in rows:
            deduped.setdefault(row, None)
        self._rows: PyTuple[HistoricalRow, ...] = tuple(deduped)
        self._coalesced: Optional["HistoricalRelation"] = None

    # -- accessors ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The explicit (non-temporal) schema."""
        return self._schema

    @property
    def rows(self) -> PyTuple[HistoricalRow, ...]:
        """All (fact, valid period) rows."""
        return self._rows

    @property
    def is_empty(self) -> bool:
        """True if no facts are recorded."""
        return not self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    # -- queries -------------------------------------------------------------------

    def timeslice(self, valid_at: InstantLike) -> Relation:
        """The static relation of facts valid at an instant."""
        when = _coerce(valid_at)
        return Relation(self._schema,
                        (row.data for row in self._rows if row.valid_at(when)))

    def during(self, period: Period) -> "HistoricalRelation":
        """The facts restricted (and clipped) to a valid period."""
        clipped = []
        for row in self._rows:
            common = row.valid.intersect(period)
            if common is not None:
                clipped.append(HistoricalRow(row.data, common))
        return HistoricalRelation(self._schema, clipped)

    def select(self, predicate: Predicate) -> "HistoricalRelation":
        """Facts whose data satisfies the predicate (validity untouched)."""
        if isinstance(predicate, Expression):
            test = lambda row: bool(predicate.evaluate(row))
        else:
            test = predicate
        return HistoricalRelation(
            self._schema, (row for row in self._rows if test(row.data)))

    def project(self, names: Sequence[str],
                coalesce: bool = True) -> "HistoricalRelation":
        """Project the data attributes; by default coalesce the result.

        Projection can make distinct facts equal, so their validities merge
        — the standard temporal-projection semantics.
        """
        projected_schema = self._schema.project(names)
        projected = HistoricalRelation(
            projected_schema,
            (HistoricalRow(row.data.project(names), row.valid)
             for row in self._rows))
        return projected.coalesce() if coalesce else projected

    def rename(self, mapping: Mapping[str, str]) -> "HistoricalRelation":
        """Rename data attributes."""
        renamed_schema = self._schema.rename(mapping)
        return HistoricalRelation(
            renamed_schema,
            (HistoricalRow(row.data.cast(renamed_schema), row.valid)
             for row in self._rows))

    def union(self, other: "HistoricalRelation") -> "HistoricalRelation":
        """Temporal union: a fact holds when it holds in either operand.

        Snapshot-homomorphic: ``(a ∪ b).timeslice(t) ==
        a.timeslice(t) ∪ b.timeslice(t)`` for every instant (property-
        tested, as for :meth:`intersect` and :meth:`difference`).
        """
        return HistoricalRelation(self._schema, self._rows + other._rows)

    def intersect(self, other: "HistoricalRelation") -> "HistoricalRelation":
        """Temporal intersection: a fact holds when both operands say so."""
        by_fact: Dict[Tuple, TemporalElement] = {}
        for row in other.coalesce().rows:
            element = by_fact.get(row.data, TemporalElement.empty())
            by_fact[row.data] = element | row.valid
        rows: List[HistoricalRow] = []
        for row in self._rows:
            theirs = by_fact.get(row.data)
            if theirs is None:
                continue
            for period in (TemporalElement([row.valid]) & theirs).periods:
                rows.append(HistoricalRow(row.data, period))
        return HistoricalRelation(self._schema, rows)

    def difference(self, other: "HistoricalRelation") -> "HistoricalRelation":
        """Temporal difference: a fact's validity minus the other's claim."""
        by_fact: Dict[Tuple, TemporalElement] = {}
        for row in other.coalesce().rows:
            element = by_fact.get(row.data, TemporalElement.empty())
            by_fact[row.data] = element | row.valid
        rows: List[HistoricalRow] = []
        for row in self._rows:
            theirs = by_fact.get(row.data)
            if theirs is None:
                rows.append(row)
                continue
            for period in (TemporalElement([row.valid]) - theirs).periods:
                rows.append(HistoricalRow(row.data, period))
        return HistoricalRelation(self._schema, rows)

    def coalesce(self) -> "HistoricalRelation":
        """Merge value-equivalent rows with overlapping or adjacent validity.

        The canonical form: per distinct fact, validity becomes a minimal
        set of disjoint, non-adjacent periods.  Coalescing never changes
        any timeslice (property-tested).  Memoized — the value is
        immutable and equality/hashing lean on the canonical form.
        """
        if self._coalesced is not None:
            return self._coalesced
        by_fact: Dict[Tuple, List[Period]] = {}
        order: List[Tuple] = []
        for row in self._rows:
            if row.data not in by_fact:
                order.append(row.data)
            by_fact.setdefault(row.data, []).append(row.valid)
        merged: List[HistoricalRow] = []
        for fact in order:
            element = TemporalElement(by_fact[fact])
            for period in element.periods:
                merged.append(HistoricalRow(fact, period))
        canonical = HistoricalRelation(self._schema, merged)
        canonical._coalesced = canonical  # its own canonical form
        self._coalesced = canonical
        return canonical

    def validity_of(self, predicate: Predicate) -> TemporalElement:
        """The total valid time during which any matching fact holds."""
        return TemporalElement(
            row.valid for row in self.select(predicate).rows)

    def lifespan(self) -> TemporalElement:
        """The union of every row's validity."""
        return TemporalElement(row.valid for row in self._rows)

    def storage_cells(self) -> int:
        """Stored cells: rows × (attributes + 2 timestamps).  For benches."""
        return len(self._rows) * (len(self._schema) + 2)

    def pretty(self, title: Optional[str] = None, event: bool = False) -> str:
        """Render like Figure 6 (or Figure 9's ``(at)`` style for events)."""
        from repro.tquel.printer import render_historical  # local: avoid cycle
        return render_historical(self, title, event=event)

    # -- equality ----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Snapshot equivalence: equal iff every timeslice agrees.

        Implemented as equality of the coalesced row sets, which is the
        same thing (proved by the property suite).
        """
        if not isinstance(other, HistoricalRelation):
            return NotImplemented
        if self._schema.names != other._schema.names:
            return False
        return (frozenset(self.coalesce().rows)
                == frozenset(other.coalesce().rows))

    def __hash__(self) -> int:
        return hash((self._schema.names, frozenset(self.coalesce().rows)))

    def __repr__(self) -> str:
        return (f"HistoricalRelation({', '.join(self._schema.names)}; "
                f"{len(self._rows)} rows)")


# ---------------------------------------------------------------------------
# Operation semantics, shared with the temporal database
# ---------------------------------------------------------------------------

def _period_from_args(arguments: Mapping[str, Any]) -> Period:
    """Build the valid period from operation arguments.

    Accepts ``valid_at`` (event semantics: a single chronon) or
    ``valid_from``/``valid_to`` (interval semantics; both optional,
    defaulting to ``[-∞, ∞)``... in practice ``valid_from`` is required
    for inserts by the databases).
    """
    if "valid_at" in arguments and arguments["valid_at"] is not None:
        return Period.at(_coerce(arguments["valid_at"]))
    start = arguments.get("valid_from")
    end = arguments.get("valid_to")
    return Period(
        _coerce(start) if start is not None else Period.always().start,
        _coerce(end) if end is not None else POS_INF,
    )


def _matches(row: Tuple, match: Mapping[str, Any]) -> bool:
    return all(row[attribute] == value for attribute, value in match.items())


def apply_historical_operation(relation: HistoricalRelation,
                               op: Operation) -> HistoricalRelation:
    """Apply one insert/delete/replace to a historical relation value.

    Pure function: returns the new historical state.  Used directly by
    :class:`HistoricalDatabase` and, via state-diffing, by
    :class:`~repro.core.temporal.TemporalDatabase` — which is what makes a
    temporal relation literally "a sequence of historical states" (§4.4).
    """
    schema = relation.schema
    if op.action == "insert":
        row = HistoricalRow(Tuple(schema, op.arguments["values"]),
                            _period_from_args(op.arguments))
        return HistoricalRelation(schema, relation.rows + (row,))

    if op.action == "delete":
        match = op.arguments["match"]
        period = _period_from_args(op.arguments)
        kept: List[HistoricalRow] = []
        for row in relation.rows:
            if not _matches(row.data, match):
                kept.append(row)
                continue
            for piece in row.valid.difference(period):
                kept.append(HistoricalRow(row.data, piece))
        return HistoricalRelation(schema, kept)

    if op.action == "replace":
        match = op.arguments["match"]
        updates = op.arguments["updates"]
        period = _period_from_args(op.arguments)
        result: List[HistoricalRow] = []
        for row in relation.rows:
            if not _matches(row.data, match):
                result.append(row)
                continue
            common = row.valid.intersect(period)
            if common is None:
                result.append(row)
                continue
            for piece in row.valid.difference(period):
                result.append(HistoricalRow(row.data, piece))
            result.append(HistoricalRow(row.data.replace(**updates), common))
        return HistoricalRelation(schema, result)

    raise JournalError(f"historical stores do not understand {op.action!r}")


def check_sequenced_key(relation: HistoricalRelation) -> None:
    """Enforce the sequenced key: at no valid instant may two distinct
    facts share the key.  (Coalesce-equal duplicates are merged first, so
    re-asserting the same fact is not a violation.)"""
    key = relation.schema.key
    if not key:
        return
    canonical = relation.coalesce()
    by_key: Dict[PyTuple[Any, ...], List[HistoricalRow]] = {}
    for row in canonical.rows:
        by_key.setdefault(tuple(row.data[name] for name in key), []).append(row)
    for key_value, rows in by_key.items():
        for index, mine in enumerate(rows):
            for other in rows[index + 1:]:
                if mine.data != other.data and mine.valid.overlaps(other.valid):
                    raise ConstraintViolation(
                        f"sequenced key violation: key {key_value!r} has two "
                        f"facts valid simultaneously during "
                        f"{mine.valid.intersect(other.valid)}"
                    )


def check_historical_constraints(relation: HistoricalRelation,
                                 constraints: Sequence[Constraint],
                                 now=None) -> None:
    """Apply declared constraints to the state, plus the sequenced key.

    Ordinary :class:`~repro.relational.constraints.Constraint`\\ s check the
    data tuples; :class:`~repro.core.temporal_constraints.
    TemporalConstraint`\\ s (when *now* is given) check the valid times.
    """
    facts = Relation(relation.schema, (row.data for row in relation.rows))
    data_constraints = [c for c in constraints
                        if isinstance(c, Constraint)
                        and not _is_key_constraint(c)]
    check_all(facts, data_constraints)
    check_sequenced_key(relation)
    if now is not None:
        from repro.core.temporal_constraints import check_temporal_constraints
        check_temporal_constraints(relation, constraints, now)


def _is_key_constraint(constraint: Constraint) -> bool:
    from repro.relational.constraints import KeyConstraint
    return isinstance(constraint, KeyConstraint)


# ---------------------------------------------------------------------------
# The database kind
# ---------------------------------------------------------------------------

_Store = Dict[str, HistoricalRelation]


class HistoricalDatabase(Database):
    """The historical database: valid time, arbitrary modification, no rollback."""

    kind = DatabaseKind.HISTORICAL

    def __init__(self, clock=None, index: bool = True) -> None:
        super().__init__(clock, index=index)
        self._store: _Store = {}

    # -- DML API -------------------------------------------------------------------------

    def insert(self, name: str, values: Mapping[str, Any],
               valid_from: Optional[InstantLike] = None,
               valid_to: Optional[InstantLike] = None,
               valid_at: Optional[InstantLike] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Record a fact with its valid time.

        Interval relations take ``valid_from`` (required) and ``valid_to``
        (default ∞); event relations take ``valid_at``.
        """
        checked = self._checked_values(name, values)
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=True)
        arguments["values"] = checked
        return self._submit(Operation("insert", name, arguments), txn)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               valid_from: Optional[InstantLike] = None,
               valid_to: Optional[InstantLike] = None,
               valid_at: Optional[InstantLike] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Remove matching facts' validity within the given period.

        With no period, the facts are removed entirely — including from the
        past, since "errors ... are corrected by modifying the database"
        and no record of the correction is kept.
        """
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=False)
        arguments["match"] = self._checked_match(name, match or {})
        return self._submit(Operation("delete", name, arguments), txn)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any],
                valid_from: Optional[InstantLike] = None,
                valid_to: Optional[InstantLike] = None,
                valid_at: Optional[InstantLike] = None,
                txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Change matching facts' attributes within the given period."""
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=False)
        arguments["match"] = self._checked_match(name, match)
        arguments["updates"] = self._checked_match(name, updates)
        return self._submit(Operation("replace", name, arguments), txn)

    def _valid_args(self, name: str, valid_from, valid_to, valid_at,
                    for_insert: bool) -> Dict[str, Any]:
        if valid_at is not None:
            if valid_from is not None or valid_to is not None:
                raise ConstraintViolation(
                    "give either valid_at or valid_from/valid_to, not both"
                )
            return {"valid_at": _coerce(valid_at)}
        if name in self._event_relations and for_insert:
            raise ConstraintViolation(
                f"{name!r} is an event relation; inserts take valid_at"
            )
        if for_insert and valid_from is None:
            raise ConstraintViolation(
                "inserting into a historical relation requires valid_from "
                "(the instant the fact began to hold)"
            )
        arguments: Dict[str, Any] = {}
        if valid_from is not None:
            arguments["valid_from"] = _coerce(valid_from)
        if valid_to is not None:
            arguments["valid_to"] = _coerce(valid_to)
        return arguments

    # -- queries --------------------------------------------------------------------------

    def history(self, name: str) -> HistoricalRelation:
        """The single historical state of the relation."""
        self._require_defined(name)
        return self._store[name]

    def snapshot(self, name: str) -> Relation:
        """The facts valid *now* (the historical DB always views 'as of now')."""
        return self.timeslice(name, self.now())

    def timeslice(self, name: str, valid_at: InstantLike) -> Relation:
        """The facts valid at an instant, as a static relation."""
        self.require_historical("timeslice")
        cache = self.index_cache
        if cache is not None:
            self._require_defined(name)
            return cache.historical(name).timeslice(valid_at)
        return self.history(name).timeslice(valid_at)

    # -- applier hooks ----------------------------------------------------------------------

    def _stage(self) -> _Store:
        return dict(self._store)

    def _install(self, staged: _Store) -> None:
        # The commit being applied has already ticked the clock, so the
        # manager's last reading is this transaction's commit instant.
        now = self._manager.clock.last
        for name, relation in staged.items():
            # Only relations this batch replaced are re-checked: an
            # untouched store is the same immutable value that already
            # passed, and no declared constraint tightens as now advances.
            if name in self._schemas and relation is not self._store.get(name):
                # The schema key is enforced as a sequenced key inside
                # check_historical_constraints (via relation.schema.key).
                check_historical_constraints(relation,
                                             self._constraints[name], now)
        self._store = staged

    def _create_store(self, staged: _Store, name: str, schema: Schema) -> None:
        staged[name] = HistoricalRelation(schema)

    def _drop_store(self, staged: _Store, name: str) -> None:
        staged.pop(name, None)

    def _apply_dml(self, staged: _Store, op: Operation,
                   commit_time: Instant) -> None:
        if op.relation not in staged:
            raise UnknownRelationError(f"no relation {op.relation!r}")
        staged[op.relation] = apply_historical_operation(staged[op.relation], op)
