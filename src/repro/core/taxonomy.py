"""The taxonomy itself: three kinds of time, four kinds of database.

This module is the paper's Section 4 and 5 as executable data:

- :class:`TimeKind` — transaction, valid and user-defined time, each
  carrying the three attributes of Figure 12 (append-only?,
  application-independent?, representation vs. reality);
- :class:`DatabaseKind` — static, static rollback, historical and
  temporal, derived from the two orthogonal capabilities of Figure 10
  (rollback and historical queries) and carrying the incidence matrix of
  Figure 11 (which kinds of time each database kind requires);
- :func:`classify` — Figure 10 as a function: capabilities in, kind out;
- the survey datasets behind Figure 1 (prior terminology and its
  attributes) and Figure 13 (time support in existing or proposed
  systems), with renderers that regenerate those tables.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple


class Models(enum.Enum):
    """What a time value is about: the stored representation, or reality."""

    REPRESENTATION = "representation"
    REALITY = "reality"


class TimeKind(enum.Enum):
    """The paper's three kinds of time (replacing 'physical'/'logical')."""

    TRANSACTION = "transaction"
    VALID = "valid"
    USER_DEFINED = "user-defined"

    # -- Figure 12: attributes of the new kinds of time --------------------

    @property
    def append_only(self) -> bool:
        """Whether values of this kind, once written, may never change."""
        return self is TimeKind.TRANSACTION

    @property
    def application_independent(self) -> bool:
        """Whether the DBMS can interpret the values without the application."""
        return self is not TimeKind.USER_DEFINED

    @property
    def models(self) -> Models:
        """Representation (database activity) or reality (the modeled world)."""
        if self is TimeKind.TRANSACTION:
            return Models.REPRESENTATION
        return Models.REALITY

    def __str__(self) -> str:
        return self.value


class DatabaseKind(enum.Enum):
    """The paper's four kinds of database (Figure 10)."""

    STATIC = "static"
    STATIC_ROLLBACK = "static rollback"
    HISTORICAL = "historical"
    TEMPORAL = "temporal"

    # -- Figure 10: the two orthogonal capabilities --------------------------

    @property
    def supports_rollback(self) -> bool:
        """Can the database be viewed as of a past transaction time?"""
        return self in (DatabaseKind.STATIC_ROLLBACK, DatabaseKind.TEMPORAL)

    @property
    def supports_historical_queries(self) -> bool:
        """Can the database answer queries about valid time?"""
        return self in (DatabaseKind.HISTORICAL, DatabaseKind.TEMPORAL)

    # -- Figure 11: which kinds of time each database kind incorporates -------

    @property
    def time_kinds(self) -> FrozenSet[TimeKind]:
        """The kinds of time the database kind supports.

        Transaction time comes with rollback; valid time comes with
        historical queries; user-defined time rides along with valid time
        ("both valid time and user-defined time concern modeling of
        reality, and so it is appropriate that they should appear
        together", §4.3).
        """
        kinds = set()
        if self.supports_rollback:
            kinds.add(TimeKind.TRANSACTION)
        if self.supports_historical_queries:
            kinds.add(TimeKind.VALID)
            kinds.add(TimeKind.USER_DEFINED)
        return frozenset(kinds)

    @property
    def append_only(self) -> bool:
        """DBMSs supporting rollback are append-only (§5)."""
        return self.supports_rollback

    def __str__(self) -> str:
        return self.value


def classify(rollback: bool, historical_queries: bool) -> DatabaseKind:
    """Figure 10 as a function: from capabilities to database kind."""
    if rollback and historical_queries:
        return DatabaseKind.TEMPORAL
    if rollback:
        return DatabaseKind.STATIC_ROLLBACK
    if historical_queries:
        return DatabaseKind.HISTORICAL
    return DatabaseKind.STATIC


# ---------------------------------------------------------------------------
# Figure 1: the prior literature's terminology and its attributes
# ---------------------------------------------------------------------------

class PriorTerm(NamedTuple):
    """One row of Figure 1: how an earlier paper characterized a time.

    ``append_only`` / ``application_independent`` are tri-state: ``True``,
    ``False``, or a footnote string for the qualified entries ("can make
    corrections only", ...).  ``models`` is ``None`` where the paper's
    table leaves the cell blank.
    """

    reference: str
    terminology: str
    append_only: object
    application_independent: object
    models: Optional[Models]
    supported: bool = True  # footnote (1): "not actually supported"


#: Figure 1 of the paper, verbatim.
FIGURE_1: Tuple[PriorTerm, ...] = (
    PriorTerm("Ariav & Morgan 1982", "Time", True, True, Models.REPRESENTATION),
    PriorTerm("Ben-Zvi 1982", "Registration", True, True, Models.REPRESENTATION),
    PriorTerm("Ben-Zvi 1982", "Effective", False, True, Models.REALITY),
    PriorTerm("Clifford & Warren 1983", "State", False, True, None),
    PriorTerm("Copeland & Maier 1984", "Transaction", True, True,
              Models.REPRESENTATION),
    PriorTerm("Copeland & Maier 1984", "Event", False, False, Models.REALITY,
              supported=False),
    PriorTerm("Dadam et al. 1984 & Lum et al. 1984", "Physical",
              "corrections only", True, Models.REPRESENTATION),
    PriorTerm("Dadam et al. 1984 & Lum et al. 1984", "Logical",
              False, False, Models.REALITY, supported=False),
    PriorTerm("Jones et al. 1979 & Jones & Mason 1980", "Start/End",
              "corrections only", True, Models.REALITY),
    PriorTerm("Jones et al. 1979 & Jones & Mason 1980", "User Defined",
              False, False, Models.REALITY),
    PriorTerm("Mueller & Steinbauer 1983", "Data-Valid-Time-From/To",
              "future changes only", True, Models.REPRESENTATION),
    PriorTerm("Reed 1978", "Start/End", True, True, Models.REPRESENTATION),
    PriorTerm("Snodgrass 1984", "Valid Time", False, True, Models.REALITY),
)


# ---------------------------------------------------------------------------
# Figure 13: time support in existing or proposed systems
# ---------------------------------------------------------------------------

class SurveyedSystem(NamedTuple):
    """One row of Figure 13: a 1985-era system and the times it supports."""

    reference: str
    system: str
    transaction_time: bool
    valid_time: bool
    user_defined_time: bool

    @property
    def time_kinds(self) -> FrozenSet[TimeKind]:
        """The supported kinds as a set."""
        kinds = set()
        if self.transaction_time:
            kinds.add(TimeKind.TRANSACTION)
        if self.valid_time:
            kinds.add(TimeKind.VALID)
        if self.user_defined_time:
            kinds.add(TimeKind.USER_DEFINED)
        return frozenset(kinds)

    @property
    def database_kind(self) -> DatabaseKind:
        """The kind of database the system realizes, via :func:`classify`."""
        return classify(rollback=self.transaction_time,
                        historical_queries=self.valid_time)


#: Figure 13 of the paper, verbatim.
FIGURE_13: Tuple[SurveyedSystem, ...] = (
    SurveyedSystem("Ariav & Morgan 1982", "MDM/DB", True, False, False),
    SurveyedSystem("Ben-Zvi 1982", "TRM", True, True, False),
    SurveyedSystem("Bontempo 1983", "QBE", False, False, True),
    SurveyedSystem("Breutmann et al. 1979", "CSL", False, True, False),
    SurveyedSystem("Clifford & Warren 1983", "IL_s", False, True, False),
    SurveyedSystem("Copeland & Maier 1984", "GemStone", True, False, False),
    SurveyedSystem("Findler & Chen 1971", "AMPPL-II", False, True, False),
    SurveyedSystem("Jones & Mason 1980", "LEGOL 2.0", False, True, True),
    SurveyedSystem("Klopprogge 1981", "TERM", False, True, False),
    SurveyedSystem("Lum et al. 1984", "AIM", True, False, False),
    SurveyedSystem("Relational 1984", "MicroINGRES", False, False, True),
    SurveyedSystem("Mueller & Steinbauer 1983", "CAM", True, False, False),
    SurveyedSystem("Overmyer & Stonebraker 1982", "INGRES", False, False, True),
    SurveyedSystem("Reed 1978", "SWALLOW", True, False, False),
    SurveyedSystem("Snodgrass 1985", "TQuel", True, True, True),
    SurveyedSystem("Tandem 1983", "ENFORM", False, False, True),
    SurveyedSystem("Wiederhold et al. 1975", "TODS", False, True, False),
)


# ---------------------------------------------------------------------------
# Table renderers: regenerate Figures 1, 10, 11, 12, 13
# ---------------------------------------------------------------------------

def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(headers, *rows)] if rows else [len(h) for h in headers]
    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(width)
                          for cell, width in zip(cells, widths)).rstrip()
    rule = "-+-".join("-" * width for width in widths)
    return "\n".join([line(headers), rule] + [line(row) for row in rows])


def _tri(value: object) -> str:
    if value is True:
        return "Yes"
    if value is False:
        return "No"
    return f"({value})"


def render_figure_1() -> str:
    """Figure 1: Types of Time (prior terminology vs. the three attributes)."""
    rows = []
    for term in FIGURE_1:
        models = term.models.value.capitalize() if term.models else ""
        name = term.terminology + ("" if term.supported else " (unsupported)")
        rows.append([term.reference, name, _tri(term.append_only),
                     _tri(term.application_independent), models])
    return _table(["Reference", "Terminology", "Append-Only",
                   "Application Independent", "Representation vs. Reality"],
                  rows)


def render_figure_10() -> str:
    """Figure 10: Types of Databases (the 2x2 classification)."""
    rows = [
        ["Static Queries", str(classify(False, False)), str(classify(True, False))],
        ["Historical Queries", str(classify(False, True)), str(classify(True, True))],
    ]
    return _table(["", "No Rollback", "Rollback"], rows)


def render_figure_11() -> str:
    """Figure 11: Attributes of the New Kinds of Databases (incidence matrix)."""
    rows = []
    for kind in DatabaseKind:
        marks = ["V" if time in kind.time_kinds else ""
                 for time in (TimeKind.TRANSACTION, TimeKind.VALID,
                              TimeKind.USER_DEFINED)]
        rows.append([str(kind).title()] + marks)
    return _table(["", "Transaction", "Valid", "User-defined"], rows)


def render_figure_12() -> str:
    """Figure 12: Attributes of the New Kinds of Time."""
    rows = []
    for time in TimeKind:
        rows.append([str(time).title(),
                     "Yes" if time.append_only else "No",
                     "Yes" if time.application_independent else "No",
                     time.models.value.capitalize()])
    return _table(["Terminology", "Append-Only", "Application Independent",
                   "Representation vs. Reality"], rows)


def render_figure_13() -> str:
    """Figure 13: Time Support in Existing or Proposed Systems."""
    rows = []
    for system in FIGURE_13:
        rows.append([system.reference, system.system,
                     "V" if system.transaction_time else "",
                     "V" if system.valid_time else "",
                     "V" if system.user_defined_time else ""])
    return _table(["Reference", "System or Language", "Transaction Time",
                   "Valid Time", "User-defined Time"], rows)
