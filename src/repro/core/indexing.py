"""Temporal indexing: interval trees over valid and transaction time.

The value types in :mod:`repro.core` answer ``timeslice`` and ``rollback``
by scanning their rows.  That is fine at paper scale; at workload scale
the natural accelerator is a *stabbing* index over the periods.  This
module provides:

- :class:`IntervalTree` — a classic centered interval tree over periods
  (including unbounded ones), answering "which intervals contain this
  instant" in ``O(log n + k)``, with a small *delta overlay* so
  insertions and removals cost O(1)/O(Δ) amortized between
  threshold-triggered rebuilds;
- :class:`HistoricalIndex` — a timeslice accelerator for one
  :class:`~repro.core.historical.HistoricalRelation`;
- :class:`RollbackIndex` — a rollback accelerator for one
  :class:`~repro.core.rollback.RollbackRelation`;
- :class:`BitemporalIndex` — both axes for one
  :class:`~repro.core.temporal.TemporalRelation`: a transaction-time tree
  into per-state valid-time slices.

Indexes are built over the *immutable* relation values, so a wrapper can
never silently go stale: the database kinds hand out fresh values per
commit, and :class:`DatabaseIndexCache` hands out a fresh wrapper per
relation *version*.  When successive versions share a storage lineage
(the incremental commit path), the cache patches the previous version's
tree with the row delta (``update``) instead of rebuilding from scratch —
a commit costs O(Δ log n) index upkeep.

The benchmark ``bench_indexing.py`` measures the win; the property suite
checks index answers against the naive scans they replace.
"""

from __future__ import annotations

import math
from typing import (Any, Dict, Generic, Iterable, List, Optional, Sequence,
                    Tuple as PyTuple, TypeVar)

from repro.core.historical import HistoricalRelation, HistoricalRow
from repro.core.rollback import RollbackRelation, TransactionTimeRow
from repro.core.temporal import BitemporalRow, TemporalRelation
from repro.obs import runtime as _obs
from repro.relational.relation import Relation
from repro.time.chronon import require_same_granularity
from repro.time.instant import Instant, instant as _coerce
from repro.time.period import Period

Payload = TypeVar("Payload")

#: Unbounded endpoints are mapped onto IEEE infinities so plain numeric
#: comparison orders them against integer chronons.
_NEG = -math.inf
_POS = math.inf


def _lo(period: Period) -> float:
    return period.start.chronon if period.start.is_finite else _NEG


def _hi(period: Period) -> float:
    """Exclusive upper bound as a number."""
    return period.end.chronon if period.end.is_finite else _POS


class _Node(Generic[Payload]):
    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: float) -> None:
        self.center = center
        # Intervals containing the center, sorted two ways for the
        # classic asymmetric stabbing scans.
        self.by_start: List[PyTuple[float, float, Payload]] = []
        self.by_end: List[PyTuple[float, float, Payload]] = []
        self.left: Optional["_Node[Payload]"] = None
        self.right: Optional["_Node[Payload]"] = None


class IntervalTree(Generic[Payload]):
    """A centered interval tree over half-open periods.

    Built from ``(period, payload)`` pairs; :meth:`stab` returns the
    payloads of every period containing a given instant.  Handles
    unbounded periods (``-∞`` / ``∞`` endpoints) transparently.

    Mutation happens through a delta overlay: :meth:`insert` appends to a
    small side list, :meth:`discard` tombstones a tree entry; queries
    consult both.  Once the overlay exceeds a fraction of the tree
    (:attr:`REBUILD_FRACTION`, floor :attr:`REBUILD_MIN`), the live
    intervals are folded into a fresh balanced tree — so a long edit
    stream costs O(Δ log n) amortized, never O(n log n) per edit.
    """

    #: Rebuild when pending edits exceed base_size / REBUILD_FRACTION ...
    REBUILD_FRACTION = 8
    #: ... but never before this many edits accumulate.
    REBUILD_MIN = 32

    def __init__(self, items: Iterable[PyTuple[Period, Payload]]) -> None:
        # The probe-time granularity the naive scans would have enforced
        # through Instant comparison; remembered from the first finite
        # endpoint and checked on every query.
        self._granularity = None
        triples = []
        for period, payload in items:
            self._note_granularity(period)
            triples.append((_lo(period), _hi(period), payload))
        self._reset(triples)

    def _note_granularity(self, period: Period) -> None:
        if self._granularity is None:
            if period.start.is_finite:
                self._granularity = period.start.granularity
            elif period.end.is_finite:
                self._granularity = period.end.granularity

    def _check_instant(self, when: Instant) -> None:
        if when.is_finite and self._granularity is not None:
            require_same_granularity(when.granularity, self._granularity,
                                     "stab a temporal index")

    def _check_period(self, period: Period) -> None:
        self._check_instant(period.start)
        self._check_instant(period.end)

    def _reset(self, triples: List[PyTuple[float, float, Payload]]) -> None:
        self._base = triples
        counts: Dict[PyTuple[float, float, Payload], int] = {}
        for triple in triples:
            counts[triple] = counts.get(triple, 0) + 1
        self._base_counts = counts
        self._extra: List[PyTuple[float, float, Payload]] = []
        self._dead: Dict[PyTuple[float, float, Payload], int] = {}
        self._pending = 0
        self._size = len(triples)
        self._root = self._build(triples)

    @property
    def size(self) -> int:
        """The number of live indexed intervals."""
        return self._size

    @property
    def pending_edits(self) -> int:
        """Overlay edits (inserts + tombstones) since the last rebuild."""
        return self._pending

    def _build(self, triples: List[PyTuple[float, float, Payload]]
               ) -> Optional[_Node[Payload]]:
        if not triples:
            return None
        # Median of the finite endpoints keeps the tree balanced even with
        # many unbounded intervals.
        endpoints = sorted(
            point
            for lo, hi, _ in triples
            for point in (lo, hi)
            if point not in (_NEG, _POS)
        )
        if endpoints:
            center = endpoints[len(endpoints) // 2]
        else:
            center = 0.0  # every interval is (-∞, ∞); all land here
        node = _Node[Payload](center)
        left_items: List[PyTuple[float, float, Payload]] = []
        right_items: List[PyTuple[float, float, Payload]] = []
        for triple in triples:
            lo, hi, _ = triple
            if hi <= center:
                left_items.append(triple)
            elif lo > center:
                right_items.append(triple)
            else:
                node.by_start.append(triple)
        # Guard against degenerate splits that would not shrink (possible
        # only when every interval shares the median endpoint structure).
        if len(left_items) == len(triples) or len(right_items) == len(triples):
            node.by_start.extend(left_items + right_items)
            left_items, right_items = [], []
        node.by_start.sort(key=lambda t: t[0])
        node.by_end = sorted(node.by_start, key=lambda t: -t[1])
        node.left = self._build(left_items)
        node.right = self._build(right_items)
        return node

    # -- incremental maintenance -----------------------------------------------

    def insert(self, period: Period, payload: Payload) -> None:
        """Add one interval through the overlay (O(1) amortized)."""
        self._note_granularity(period)
        self._extra.append((_lo(period), _hi(period), payload))
        self._size += 1
        self._pending += 1
        self._maybe_rebuild()

    def discard(self, period: Period, payload: Payload) -> bool:
        """Remove one interval; False if it is not in the index.

        A tree-resident interval is tombstoned (queries filter it out);
        an overlay interval is removed outright.  Duplicate identical
        intervals are respected: one call removes one copy.
        """
        triple = (_lo(period), _hi(period), payload)
        live_in_base = (self._base_counts.get(triple, 0)
                        - self._dead.get(triple, 0))
        if live_in_base > 0:
            self._dead[triple] = self._dead.get(triple, 0) + 1
            self._size -= 1
            self._pending += 1
            self._maybe_rebuild()
            return True
        try:
            self._extra.remove(triple)
        except ValueError:
            return False
        self._size -= 1
        return True

    def _maybe_rebuild(self) -> None:
        threshold = max(self.REBUILD_MIN,
                        len(self._base) // self.REBUILD_FRACTION)
        if self._pending <= threshold:
            return
        _obs.current().metrics.counter("index.tree.fold_rebuilds").inc()
        live: List[PyTuple[float, float, Payload]] = []
        remaining = dict(self._dead)
        for triple in self._base:
            count = remaining.get(triple, 0)
            if count:
                remaining[triple] = count - 1
                continue
            live.append(triple)
        live.extend(self._extra)
        self._reset(live)

    # -- queries --------------------------------------------------------------

    def stab(self, when) -> List[Payload]:
        """Payloads of every interval containing *when* (an instant)."""
        point_instant = _coerce(when)
        self._check_instant(point_instant)
        if point_instant.is_finite:
            point: float = point_instant.chronon
        elif point_instant.is_pos_inf:
            point = _POS
        else:
            point = _NEG
        # Tombstones are filtered against a local working copy so each
        # dead duplicate suppresses exactly one matching tree entry.
        dead = dict(self._dead) if self._dead else None
        found: List[Payload] = []
        node = self._root
        while node is not None:
            if point < node.center:
                # Only intervals starting at or before the point can match.
                for triple in node.by_start:
                    lo, hi, payload = triple
                    if lo > point:
                        break
                    if point < hi:
                        if dead is not None:
                            count = dead.get(triple, 0)
                            if count:
                                dead[triple] = count - 1
                                continue
                        found.append(payload)
                node = node.left
            else:
                # point >= center: every stored interval starts <= center
                # <= point, so filter on the (descending) exclusive ends.
                for triple in node.by_end:
                    lo, hi, payload = triple
                    if hi <= point:
                        break
                    if dead is not None:
                        count = dead.get(triple, 0)
                        if count:
                            dead[triple] = count - 1
                            continue
                    found.append(payload)
                node = node.right
        for lo, hi, payload in self._extra:
            if lo <= point < hi:
                found.append(payload)
        return found

    def overlapping(self, period: Period) -> List[Payload]:
        """Payloads of every interval sharing a chronon with *period*.

        Implemented by walking the whole relevant subtree span: an
        interval overlaps ``[lo, hi)`` iff it starts before ``hi`` and
        ends after ``lo``.  Backs transaction-time range queries
        (``as of ... through``) at index speed.
        """
        self._check_period(period)
        lo, hi = _lo(period), _hi(period)
        dead = dict(self._dead) if self._dead else None
        found: List[Payload] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if hi <= node.center:
                # Query lies left of the center: stored intervals need
                # start < hi to overlap.
                for triple in node.by_start:
                    start, end, payload = triple
                    if start >= hi:
                        break
                    if end > lo:
                        if dead is not None:
                            count = dead.get(triple, 0)
                            if count:
                                dead[triple] = count - 1
                                continue
                        found.append(payload)
                stack.append(node.left)
            elif lo > node.center:
                # Query lies right: stored intervals need end > lo.
                for triple in node.by_end:
                    start, end, payload = triple
                    if end <= lo:
                        break
                    if start < hi:
                        if dead is not None:
                            count = dead.get(triple, 0)
                            if count:
                                dead[triple] = count - 1
                                continue
                        found.append(payload)
                stack.append(node.right)
            else:
                # The query straddles the center: every stored interval
                # contains the center, hence overlaps; recurse both ways.
                for triple in node.by_start:
                    start, end, payload = triple
                    if start < hi and end > lo:
                        if dead is not None:
                            count = dead.get(triple, 0)
                            if count:
                                dead[triple] = count - 1
                                continue
                        found.append(payload)
                stack.append(node.left)
                stack.append(node.right)
        for start, end, payload in self._extra:
            if start < hi and end > lo:
                found.append(payload)
        return found

    def __len__(self) -> int:
        return self._size


def _partition_delta(old, new):
    """``(removed, added)`` rows between two versions of one partitioned
    store (:class:`TemporalRelation` or :class:`RollbackRelation`).

    Computed structurally — the closed-log suffix plus a value diff of the
    open maps, O(current state + Δ) with no look at the closed past.
    Returns ``None`` when the versions are unrelated (different storage
    lineage, e.g. after a drop/redefine or a deserialized overwrite) or
    non-canonical (duplicate open rows in a derived value), in which case
    the caller rebuilds from scratch.
    """
    if (old._lineage is not new._lineage or old._open_extra
            or new._open_extra or new._closed_len < old._closed_len):
        return None
    added = list(new._closed_log[old._closed_len:new._closed_len])
    removed = []
    old_open, new_open = old._open, new._open
    for key, row in old_open.items():
        if new_open.get(key) != row:
            removed.append(row)
    for key, row in new_open.items():
        if old_open.get(key) != row:
            added.append(row)
    return removed, added


class HistoricalIndex:
    """Timeslice acceleration for one historical relation value."""

    def __init__(self, relation: HistoricalRelation) -> None:
        self._relation = relation
        self._tree: IntervalTree = IntervalTree(
            (row.valid, row.data) for row in relation.rows)

    @property
    def relation(self) -> HistoricalRelation:
        """The indexed (immutable) relation value."""
        return self._relation

    def timeslice(self, valid_at) -> Relation:
        """Same result as ``relation.timeslice``, via the interval tree."""
        return Relation(self._relation.schema, self._tree.stab(valid_at))

    def update(self, new_relation: HistoricalRelation
               ) -> Optional["HistoricalIndex"]:
        """A fresh index over *new_relation*, patching this index's tree.

        The tree is edited with the row diff (O(Δ log n) amortized) and
        handed to a new wrapper; the stale wrapper must not be queried
        afterwards.  Returns ``None`` when a diff row is missing from the
        tree (unrelated values) — the caller then rebuilds.
        """
        old_rows = set(self._relation.rows)
        new_rows = set(new_relation.rows)
        tree = self._tree
        for row in old_rows - new_rows:
            if not tree.discard(row.valid, row.data):
                return None
        for row in new_rows - old_rows:
            tree.insert(row.valid, row.data)
        fresh = HistoricalIndex.__new__(HistoricalIndex)
        fresh._relation = new_relation
        fresh._tree = tree
        return fresh


class RollbackIndex:
    """Rollback acceleration for one interval-stamped rollback store."""

    def __init__(self, relation: RollbackRelation) -> None:
        self._relation = relation
        self._tree: IntervalTree = IntervalTree(
            (row.tt, row.data) for row in relation.rows)

    @property
    def relation(self) -> RollbackRelation:
        """The indexed (immutable) store value."""
        return self._relation

    def rollback(self, as_of) -> Relation:
        """Same result as ``relation.rollback``, via the interval tree."""
        return Relation(self._relation.schema, self._tree.stab(as_of))

    def visible_during(self, period: Period) -> Relation:
        """Same result as ``relation.visible_during``, via the tree."""
        return Relation(self._relation.schema, self._tree.overlapping(period))

    def update(self, new_relation: RollbackRelation
               ) -> Optional["RollbackIndex"]:
        """A fresh index over *new_relation*, patching this index's tree.

        Uses the structural partition delta — O(Δ log n) amortized per
        commit, independent of history size.  ``None`` when the two
        values do not share a storage lineage.
        """
        delta = _partition_delta(self._relation, new_relation)
        if delta is None:
            return None
        removed, added = delta
        tree = self._tree
        for row in removed:
            if not tree.discard(row.tt, row.data):
                return None
        for row in added:
            tree.insert(row.tt, row.data)
        fresh = RollbackIndex.__new__(RollbackIndex)
        fresh._relation = new_relation
        fresh._tree = tree
        return fresh


class BitemporalIndex:
    """Both axes of one temporal relation value.

    A transaction-time tree finds the rows visible as of ``t``; a
    valid-time tree over *those* rows answers the timeslice.  The
    valid-time trees are memoized per distinct rollback instant actually
    queried, which matches the access pattern of audit workloads (few
    distinct as-of instants, many valid-time probes each).
    """

    def __init__(self, relation: TemporalRelation) -> None:
        self._relation = relation
        self._tt_tree: IntervalTree = IntervalTree(
            (row.tt, row) for row in relation.rows)
        self._state_indexes: Dict[Instant, HistoricalIndex] = {}

    @property
    def relation(self) -> TemporalRelation:
        """The indexed (immutable) relation value."""
        return self._relation

    def visible(self, as_of) -> List[BitemporalRow]:
        """The bitemporal rows whose transaction time contains *as_of*."""
        return self._tt_tree.stab(as_of)

    def visible_during(self, period: Period) -> List[BitemporalRow]:
        """The bitemporal rows whose transaction time overlaps *period*."""
        return self._tt_tree.overlapping(period)

    def rollback(self, as_of) -> HistoricalRelation:
        """Same result as ``relation.rollback``, via the tt tree."""
        rows = [HistoricalRow(row.data, row.valid)
                for row in self._tt_tree.stab(as_of)]
        return HistoricalRelation(self._relation.schema, rows)

    def timeslice(self, valid_at, as_of) -> Relation:
        """Same result as ``relation.timeslice(valid_at, as_of)``."""
        when = _coerce(as_of)
        index = self._state_indexes.get(when)
        if index is None:
            index = HistoricalIndex(self.rollback(when))
            self._state_indexes[when] = index
        return index.timeslice(valid_at)

    def update(self, new_relation: TemporalRelation
               ) -> Optional["BitemporalIndex"]:
        """A fresh index over *new_relation*, patching this index's tree.

        Uses the structural partition delta — O(Δ log n) amortized per
        commit, independent of how many rows the relation has accumulated.
        ``None`` when the two values do not share a storage lineage (the
        caller rebuilds from scratch).
        """
        delta = _partition_delta(self._relation, new_relation)
        if delta is None:
            return None
        removed, added = delta
        tree = self._tt_tree
        for row in removed:
            if not tree.discard(row.tt, row):
                return None
        for row in added:
            tree.insert(row.tt, row)
        fresh = BitemporalIndex.__new__(BitemporalIndex)
        fresh._relation = new_relation
        fresh._tt_tree = tree
        # Per-as-of valid-time slices are rebuilt lazily on demand; the
        # memo keys (instants) would survive, but dropping them keeps the
        # wrapper's lifetime bounded by what is actually queried.
        fresh._state_indexes = {}
        return fresh


class DatabaseIndexCache:
    """Fresh-by-construction index cache for a live database.

    One slot per ``(relation name, index flavor)``, stamped with the
    relation's *version* (:meth:`~repro.core.base.Database.
    relation_version`): a commit that touches relation A no longer
    invalidates relation B's index, and DDL on other relations is
    invisible too.  On a version miss the previous index is *patched*
    with the commit delta when the storage lineage allows (O(Δ log n));
    only unrelated values force a full rebuild.

    The plain-int counters (:attr:`hits`, :attr:`misses`,
    :attr:`incremental_updates`) are always live for tests and benchmarks;
    the same events are mirrored into the process instrumentation
    (:mod:`repro.obs`) as ``index.cache.hits`` / ``index.cache.misses`` /
    ``index.cache.patches``, plus an ``index.tree.size.<name>.<flavor>``
    gauge per served index, whenever recording is on.
    """

    def __init__(self, database) -> None:
        self._db = database
        self._slots: Dict[PyTuple[str, str], PyTuple[int, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.incremental_updates = 0

    @staticmethod
    def _tree_size(index) -> int:
        tree = getattr(index, "_tree", None)
        if tree is None:
            tree = getattr(index, "_tt_tree", None)
        return tree.size if tree is not None else 0

    def _get(self, name: str, flavor: str, builder, updater):
        metrics = _obs.current().metrics
        version = self._db.relation_version(name)
        slot = self._slots.get((name, flavor))
        if slot is not None:
            cached_version, index = slot
            if cached_version == version:
                self.hits += 1
                metrics.counter("index.cache.hits").inc()
                return index
            fresh = updater(index)
            if fresh is not None:
                self.incremental_updates += 1
                self._slots[(name, flavor)] = (version, fresh)
                metrics.counter("index.cache.patches").inc()
                metrics.gauge(f"index.tree.size.{name}.{flavor}").set(
                    self._tree_size(fresh))
                return fresh
        self.misses += 1
        metrics.counter("index.cache.misses").inc()
        index = builder()
        self._slots[(name, flavor)] = (version, index)
        metrics.gauge(f"index.tree.size.{name}.{flavor}").set(
            self._tree_size(index))
        return index

    def historical(self, name: str) -> HistoricalIndex:
        """A current HistoricalIndex over ``database.history(name)``."""
        return self._get(
            name, "historical",
            lambda: HistoricalIndex(self._db.history(name)),
            lambda stale: stale.update(self._db.history(name)))

    def rollback(self, name: str) -> RollbackIndex:
        """A current RollbackIndex over the interval store of *name*."""
        return self._get(
            name, "rollback",
            lambda: RollbackIndex(self._db.store(name)),
            lambda stale: stale.update(self._db.store(name)))

    def bitemporal(self, name: str) -> BitemporalIndex:
        """A current BitemporalIndex over ``database.temporal(name)``."""
        return self._get(
            name, "bitemporal",
            lambda: BitemporalIndex(self._db.temporal(name)),
            lambda stale: stale.update(self._db.temporal(name)))
