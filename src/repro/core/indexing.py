"""Temporal indexing: interval trees over valid and transaction time.

The value types in :mod:`repro.core` answer ``timeslice`` and ``rollback``
by scanning their rows.  That is fine at paper scale; at workload scale
the natural accelerator is a *stabbing* index over the periods.  This
module provides:

- :class:`IntervalTree` — a classic centered interval tree over periods
  (including unbounded ones), answering "which intervals contain this
  instant" in ``O(log n + k)``;
- :class:`HistoricalIndex` — a timeslice accelerator for one
  :class:`~repro.core.historical.HistoricalRelation`;
- :class:`RollbackIndex` — a rollback accelerator for one
  :class:`~repro.core.rollback.RollbackRelation`;
- :class:`BitemporalIndex` — both axes for one
  :class:`~repro.core.temporal.TemporalRelation`: a transaction-time tree
  into per-state valid-time slices.

Indexes are built over the *immutable* relation values, so they can never
go stale: the database kinds hand out fresh values per commit, and the
caller re-indexes when it picks up a new value (see
:class:`DatabaseIndexCache`, which automates exactly that using the
commit log position).

The benchmark ``bench_indexing.py`` measures the win; the property suite
checks index answers against the naive scans they replace.
"""

from __future__ import annotations

import math
from typing import (Any, Dict, Generic, Iterable, List, Optional, Sequence,
                    Tuple as PyTuple, TypeVar)

from repro.core.historical import HistoricalRelation
from repro.core.rollback import RollbackRelation
from repro.core.temporal import TemporalRelation
from repro.relational.relation import Relation
from repro.time.instant import Instant, instant as _coerce
from repro.time.period import Period

Payload = TypeVar("Payload")

#: Unbounded endpoints are mapped onto IEEE infinities so plain numeric
#: comparison orders them against integer chronons.
_NEG = -math.inf
_POS = math.inf


def _lo(period: Period) -> float:
    return period.start.chronon if period.start.is_finite else _NEG


def _hi(period: Period) -> float:
    """Exclusive upper bound as a number."""
    return period.end.chronon if period.end.is_finite else _POS


class _Node(Generic[Payload]):
    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: float) -> None:
        self.center = center
        # Intervals containing the center, sorted two ways for the
        # classic asymmetric stabbing scans.
        self.by_start: List[PyTuple[float, float, Payload]] = []
        self.by_end: List[PyTuple[float, float, Payload]] = []
        self.left: Optional["_Node[Payload]"] = None
        self.right: Optional["_Node[Payload]"] = None


class IntervalTree(Generic[Payload]):
    """A centered interval tree over half-open periods.

    Built once from ``(period, payload)`` pairs; :meth:`stab` returns the
    payloads of every period containing a given instant.  Handles
    unbounded periods (``-∞`` / ``∞`` endpoints) transparently.
    """

    def __init__(self, items: Iterable[PyTuple[Period, Payload]]) -> None:
        triples = [(_lo(period), _hi(period), payload)
                   for period, payload in items]
        self._size = len(triples)
        self._root = self._build(triples)

    @property
    def size(self) -> int:
        """The number of indexed intervals."""
        return self._size

    def _build(self, triples: List[PyTuple[float, float, Payload]]
               ) -> Optional[_Node[Payload]]:
        if not triples:
            return None
        # Median of the finite endpoints keeps the tree balanced even with
        # many unbounded intervals.
        endpoints = sorted(
            point
            for lo, hi, _ in triples
            for point in (lo, hi)
            if point not in (_NEG, _POS)
        )
        if endpoints:
            center = endpoints[len(endpoints) // 2]
        else:
            center = 0.0  # every interval is (-∞, ∞); all land here
        node = _Node[Payload](center)
        left_items: List[PyTuple[float, float, Payload]] = []
        right_items: List[PyTuple[float, float, Payload]] = []
        for triple in triples:
            lo, hi, _ = triple
            if hi <= center:
                left_items.append(triple)
            elif lo > center:
                right_items.append(triple)
            else:
                node.by_start.append(triple)
        # Guard against degenerate splits that would not shrink (possible
        # only when every interval shares the median endpoint structure).
        if len(left_items) == len(triples) or len(right_items) == len(triples):
            node.by_start.extend(left_items + right_items)
            left_items, right_items = [], []
        node.by_start.sort(key=lambda t: t[0])
        node.by_end = sorted(node.by_start, key=lambda t: -t[1])
        node.left = self._build(left_items)
        node.right = self._build(right_items)
        return node

    def stab(self, when) -> List[Payload]:
        """Payloads of every interval containing *when* (an instant)."""
        point_instant = _coerce(when)
        if point_instant.is_finite:
            point: float = point_instant.chronon
        elif point_instant.is_pos_inf:
            point = _POS
        else:
            point = _NEG
        found: List[Payload] = []
        node = self._root
        while node is not None:
            if point < node.center:
                # Only intervals starting at or before the point can match.
                for lo, hi, payload in node.by_start:
                    if lo > point:
                        break
                    if point < hi:
                        found.append(payload)
                node = node.left
            else:
                # point >= center: every stored interval starts <= center
                # <= point, so filter on the (descending) exclusive ends.
                for lo, hi, payload in node.by_end:
                    if hi <= point:
                        break
                    found.append(payload)
                node = node.right
        return found

    def overlapping(self, period: Period) -> List[Payload]:
        """Payloads of every interval sharing a chronon with *period*.

        Implemented by walking the whole relevant subtree span: an
        interval overlaps ``[lo, hi)`` iff it starts before ``hi`` and
        ends after ``lo``.  Backs transaction-time range queries
        (``as of ... through``) at index speed.
        """
        lo, hi = _lo(period), _hi(period)
        found: List[Payload] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if hi <= node.center:
                # Query lies left of the center: stored intervals need
                # start < hi to overlap.
                for start, end, payload in node.by_start:
                    if start >= hi:
                        break
                    if end > lo:
                        found.append(payload)
                stack.append(node.left)
            elif lo > node.center:
                # Query lies right: stored intervals need end > lo.
                for start, end, payload in node.by_end:
                    if end <= lo:
                        break
                    if start < hi:
                        found.append(payload)
                stack.append(node.right)
            else:
                # The query straddles the center: every stored interval
                # contains the center, hence overlaps; recurse both ways.
                for start, end, payload in node.by_start:
                    if start < hi and end > lo:
                        found.append(payload)
                stack.append(node.left)
                stack.append(node.right)
        return found

    def __len__(self) -> int:
        return self._size


class HistoricalIndex:
    """Timeslice acceleration for one historical relation value."""

    def __init__(self, relation: HistoricalRelation) -> None:
        self._relation = relation
        self._tree: IntervalTree = IntervalTree(
            (row.valid, row.data) for row in relation.rows)

    @property
    def relation(self) -> HistoricalRelation:
        """The indexed (immutable) relation value."""
        return self._relation

    def timeslice(self, valid_at) -> Relation:
        """Same result as ``relation.timeslice``, via the interval tree."""
        return Relation(self._relation.schema, self._tree.stab(valid_at))


class RollbackIndex:
    """Rollback acceleration for one interval-stamped rollback store."""

    def __init__(self, relation: RollbackRelation) -> None:
        self._relation = relation
        self._tree: IntervalTree = IntervalTree(
            (row.tt, row.data) for row in relation.rows)

    @property
    def relation(self) -> RollbackRelation:
        """The indexed (immutable) store value."""
        return self._relation

    def rollback(self, as_of) -> Relation:
        """Same result as ``relation.rollback``, via the interval tree."""
        return Relation(self._relation.schema, self._tree.stab(as_of))


class BitemporalIndex:
    """Both axes of one temporal relation value.

    A transaction-time tree finds the rows visible as of ``t``; a
    valid-time tree over *those* rows answers the timeslice.  The
    valid-time trees are memoized per distinct rollback instant actually
    queried, which matches the access pattern of audit workloads (few
    distinct as-of instants, many valid-time probes each).
    """

    def __init__(self, relation: TemporalRelation) -> None:
        self._relation = relation
        self._tt_tree: IntervalTree = IntervalTree(
            (row.tt, row) for row in relation.rows)
        self._state_indexes: Dict[Instant, HistoricalIndex] = {}

    @property
    def relation(self) -> TemporalRelation:
        """The indexed (immutable) relation value."""
        return self._relation

    def rollback(self, as_of) -> HistoricalRelation:
        """Same result as ``relation.rollback``, via the tt tree."""
        from repro.core.historical import HistoricalRow
        rows = [HistoricalRow(row.data, row.valid)
                for row in self._tt_tree.stab(as_of)]
        return HistoricalRelation(self._relation.schema, rows)

    def timeslice(self, valid_at, as_of) -> Relation:
        """Same result as ``relation.timeslice(valid_at, as_of)``."""
        when = _coerce(as_of)
        index = self._state_indexes.get(when)
        if index is None:
            index = HistoricalIndex(self.rollback(when))
            self._state_indexes[when] = index
        return index.timeslice(valid_at)


class DatabaseIndexCache:
    """Fresh-by-construction index cache for a live database.

    Indexes are keyed by ``(relation name, commit-log length)``: any commit
    advances the log, so a stale index can never be served.  Works with
    rollback, historical and temporal databases.
    """

    def __init__(self, database) -> None:
        self._db = database
        self._cache: Dict[PyTuple[str, int], Any] = {}

    def _get(self, name: str, builder):
        key = (name, len(self._db.log))
        index = self._cache.get(key)
        if index is None:
            index = builder()
            # Drop entries from older log positions for this relation.
            stale = [k for k in self._cache
                     if k[0] == name and k[1] != key[1]]
            for k in stale:
                del self._cache[k]
            self._cache[key] = index
        return index

    def historical(self, name: str) -> HistoricalIndex:
        """A current HistoricalIndex over ``database.history(name)``."""
        return self._get(name,
                         lambda: HistoricalIndex(self._db.history(name)))

    def rollback(self, name: str) -> RollbackIndex:
        """A current RollbackIndex over the interval store of *name*."""
        return self._get(name,
                         lambda: RollbackIndex(self._db.store(name)))

    def bitemporal(self, name: str) -> BitemporalIndex:
        """A current BitemporalIndex over ``database.temporal(name)``."""
        return self._get(name,
                         lambda: BitemporalIndex(self._db.temporal(name)))
