"""Temporal databases (§4.4 of the paper): both transaction and valid time.

"While a static rollback database views tuples valid at some time as of
that time, and a historical database always views tuples valid at some
moment as of now, a temporal DBMS makes it possible to view tuples valid
at some moment seen as of some other moment, completely capturing the
history of retroactive/postactive changes."

A :class:`TemporalRelation` is implemented as the paper conceptualizes it:
**a sequence of historical states**.  Each committed transaction takes the
current historical state, applies the same valid-time operations a
historical database understands (:func:`~repro.core.historical.
apply_historical_operation`), and records the difference — rows that
disappeared get their transaction time closed at the commit instant, rows
that appeared open at it.  Hence temporal relations are append-only in
transaction time, and ``rollback(t)`` reconstructs exactly the historical
state any moment ``t`` saw.

The stored form is the four-timestamp table of Figure 8:
``(data ‖ valid from, valid to ‖ transaction start, transaction end)``.
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, List, Mapping, NamedTuple, Optional,
                    Sequence, Set, Tuple as PyTuple)

from repro.core.base import Database, InstantLike
from repro.core.historical import (HistoricalRelation, HistoricalRow,
                                   apply_historical_operation,
                                   check_historical_constraints)
from repro.core.taxonomy import DatabaseKind
from repro.errors import ConstraintViolation, UnknownRelationError
from repro.relational.constraints import Constraint
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple
from repro.time.instant import Instant, POS_INF, instant as _coerce
from repro.time.period import Period
from repro.txn.transaction import Operation, Transaction


class BitemporalRow(NamedTuple):
    """One fact with its valid period and its transaction-time period."""

    data: Tuple
    valid: Period
    tt: Period

    def visible_at(self, as_of: Instant) -> bool:
        """Was this row part of the historical state as of *as_of*?"""
        return self.tt.contains(as_of)


class TemporalRelation:
    """A bitemporal relation (Figure 8): an immutable value object."""

    __slots__ = ("_schema", "_rows")

    def __init__(self, schema: Schema,
                 rows: Iterable[BitemporalRow] = ()) -> None:
        self._schema = schema
        self._rows: PyTuple[BitemporalRow, ...] = tuple(rows)

    # -- accessors ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The explicit (non-temporal) schema."""
        return self._schema

    @property
    def rows(self) -> PyTuple[BitemporalRow, ...]:
        """Every bitemporal row, past and current."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    # -- the two time axes ------------------------------------------------------

    def rollback(self, as_of: InstantLike) -> HistoricalRelation:
        """The historical state as of a transaction time (§4.4's rollback)."""
        when = _coerce(as_of)
        return HistoricalRelation(
            self._schema,
            (HistoricalRow(row.data, row.valid)
             for row in self._rows if row.visible_at(when)))

    def current(self) -> HistoricalRelation:
        """The most recent historical state (transaction end = ∞)."""
        return HistoricalRelation(
            self._schema,
            (HistoricalRow(row.data, row.valid)
             for row in self._rows if row.tt.end.is_pos_inf))

    def visible_during(self, period: Period) -> "TemporalRelation":
        """The rows belonging to any historical state during the period.

        Backs TQuel's ``as of t1 through t2`` on temporal databases; the
        result keeps both time axes (it is itself a temporal relation).
        """
        return TemporalRelation(
            self._schema,
            (row for row in self._rows if row.tt.overlaps(period)))

    def timeslice(self, valid_at: InstantLike,
                  as_of: Optional[InstantLike] = None) -> Relation:
        """Facts valid at one instant, seen as of another (a bitemporal point)."""
        state = self.current() if as_of is None else self.rollback(as_of)
        return state.timeslice(valid_at)

    def commit_times(self) -> List[Instant]:
        """Every transaction time at which this relation changed, ascending."""
        times = {row.tt.start for row in self._rows}
        times.update(row.tt.end for row in self._rows if row.tt.end.is_finite)
        return sorted(times)

    def historical_states(self) -> List[PyTuple[Instant, HistoricalRelation]]:
        """The full sequence of historical states (Figure 7's cube)."""
        return [(when, self.rollback(when)) for when in self.commit_times()]

    def select(self, predicate) -> "TemporalRelation":
        """Rows whose data satisfies the predicate (both times untouched)."""
        from repro.relational.expression import Expression
        if isinstance(predicate, Expression):
            test = lambda row: bool(predicate.evaluate(row))
        else:
            test = predicate
        return TemporalRelation(
            self._schema, (row for row in self._rows if test(row.data)))

    def storage_cells(self) -> int:
        """Stored cells: rows × (attributes + 4 timestamps).  For benches."""
        return len(self._rows) * (len(self._schema) + 4)

    def pretty(self, title: Optional[str] = None, event: bool = False) -> str:
        """Render like Figure 8 (or Figure 9's event style)."""
        from repro.tquel.printer import render_temporal  # local: avoid cycle
        return render_temporal(self, title, event=event)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalRelation):
            return NotImplemented
        return (self._schema.names == other._schema.names
                and frozenset(self._rows) == frozenset(other._rows))

    def __hash__(self) -> int:
        return hash((self._schema.names, frozenset(self._rows)))

    def __repr__(self) -> str:
        return (f"TemporalRelation({', '.join(self._schema.names)}; "
                f"{len(self._rows)} rows)")


# ---------------------------------------------------------------------------
# The database kind
# ---------------------------------------------------------------------------

_Store = Dict[str, TemporalRelation]


class TemporalDatabase(Database):
    """The temporal database: transaction time *and* valid time.

    The update API is the historical database's (facts with valid-time
    arguments); the difference is that every change is also recorded on
    the transaction-time axis, so nothing is ever physically forgotten.
    """

    kind = DatabaseKind.TEMPORAL

    def __init__(self, clock=None) -> None:
        super().__init__(clock)
        self._store: _Store = {}

    # -- DML API (same shape as HistoricalDatabase) --------------------------------------

    def insert(self, name: str, values: Mapping[str, Any],
               valid_from: Optional[InstantLike] = None,
               valid_to: Optional[InstantLike] = None,
               valid_at: Optional[InstantLike] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Record a fact with its valid time (transaction time is assigned)."""
        checked = self._checked_values(name, values)
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=True)
        arguments["values"] = checked
        return self._submit(Operation("insert", name, arguments), txn)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               valid_from: Optional[InstantLike] = None,
               valid_to: Optional[InstantLike] = None,
               valid_at: Optional[InstantLike] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Remove matching facts' validity within the period — logically.

        The current historical state loses the validity; the previous
        belief remains on the transaction-time axis ("errors ... cannot be
        forgotten").
        """
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=False)
        arguments["match"] = self._checked_match(name, match or {})
        return self._submit(Operation("delete", name, arguments), txn)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any],
                valid_from: Optional[InstantLike] = None,
                valid_to: Optional[InstantLike] = None,
                valid_at: Optional[InstantLike] = None,
                txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Change matching facts' attributes within the period — logically."""
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=False)
        arguments["match"] = self._checked_match(name, match)
        arguments["updates"] = self._checked_match(name, updates)
        return self._submit(Operation("replace", name, arguments), txn)

    def _valid_args(self, name: str, valid_from, valid_to, valid_at,
                    for_insert: bool) -> Dict[str, Any]:
        if valid_at is not None:
            if valid_from is not None or valid_to is not None:
                raise ConstraintViolation(
                    "give either valid_at or valid_from/valid_to, not both"
                )
            return {"valid_at": _coerce(valid_at)}
        if name in self._event_relations and for_insert:
            raise ConstraintViolation(
                f"{name!r} is an event relation; inserts take valid_at"
            )
        if for_insert and valid_from is None:
            raise ConstraintViolation(
                "inserting into a temporal relation requires valid_from "
                "(the instant the fact began to hold)"
            )
        arguments: Dict[str, Any] = {}
        if valid_from is not None:
            arguments["valid_from"] = _coerce(valid_from)
        if valid_to is not None:
            arguments["valid_to"] = _coerce(valid_to)
        return arguments

    # -- queries --------------------------------------------------------------------------

    def temporal(self, name: str) -> TemporalRelation:
        """The full bitemporal relation (Figure 8)."""
        self._require_defined(name)
        return self._store[name]

    def history(self, name: str) -> HistoricalRelation:
        """The current historical state (what a historical DB would hold)."""
        return self.temporal(name).current()

    def rollback(self, name: str, as_of: InstantLike) -> HistoricalRelation:
        """The historical state as of a past transaction time."""
        self.require_rollback("rollback")
        return self.temporal(name).rollback(as_of)

    def rollback_range(self, name: str, from_: InstantLike,
                       through: InstantLike) -> TemporalRelation:
        """Rows of every historical state over the inclusive tt range."""
        self.require_rollback("rollback")
        period = Period.from_inclusive(_coerce(from_), _coerce(through))
        return self.temporal(name).visible_during(period)

    def snapshot(self, name: str) -> Relation:
        """Facts valid now, as of now."""
        return self.history(name).timeslice(self.now())

    def timeslice(self, name: str, valid_at: InstantLike,
                  as_of: Optional[InstantLike] = None) -> Relation:
        """Facts valid at an instant, optionally seen as of a past moment."""
        self.require_historical("timeslice")
        return self.temporal(name).timeslice(valid_at, as_of)

    # -- applier hooks ----------------------------------------------------------------------

    def _stage(self) -> _Store:
        return dict(self._store)

    def _install(self, staged: _Store) -> None:
        now = self._manager.clock.last
        for name, relation in staged.items():
            if name in self._schemas:
                check_historical_constraints(relation.current(),
                                             self._constraints[name], now)
        self._store = staged

    def _create_store(self, staged: _Store, name: str, schema: Schema) -> None:
        staged[name] = TemporalRelation(schema)

    def _drop_store(self, staged: _Store, name: str) -> None:
        staged.pop(name, None)

    def _apply_dml(self, staged: _Store, op: Operation,
                   commit_time: Instant) -> None:
        if op.relation not in staged:
            raise UnknownRelationError(f"no relation {op.relation!r}")
        staged[op.relation] = self._advance(staged[op.relation], op, commit_time)

    @staticmethod
    def _advance(relation: TemporalRelation, op: Operation,
                 commit_time: Instant) -> TemporalRelation:
        """Apply a valid-time operation and record the state difference."""
        old_state = relation.current()
        new_state = apply_historical_operation(old_state, op)
        old_rows: Set[HistoricalRow] = set(old_state.rows)
        new_rows: Set[HistoricalRow] = set(new_state.rows)

        result: List[BitemporalRow] = []
        for row in relation.rows:
            if not row.tt.end.is_pos_inf:
                result.append(row)  # already part of the immutable past
                continue
            if HistoricalRow(row.data, row.valid) in new_rows:
                result.append(row)  # survives this transaction
                continue
            if row.tt.start == commit_time:
                continue  # created and superseded within one transaction
            result.append(BitemporalRow(row.data, row.valid,
                                        Period(row.tt.start, commit_time)))
        for hist_row in new_state.rows:
            if hist_row not in old_rows:
                result.append(BitemporalRow(hist_row.data, hist_row.valid,
                                            Period(commit_time, POS_INF)))
        return TemporalRelation(relation.schema, result)
