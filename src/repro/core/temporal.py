"""Temporal databases (§4.4 of the paper): both transaction and valid time.

"While a static rollback database views tuples valid at some time as of
that time, and a historical database always views tuples valid at some
moment as of now, a temporal DBMS makes it possible to view tuples valid
at some moment seen as of some other moment, completely capturing the
history of retroactive/postactive changes."

A :class:`TemporalRelation` is implemented as the paper conceptualizes it:
**a sequence of historical states**.  Each committed transaction takes the
current historical state, applies the same valid-time operations a
historical database understands (:func:`~repro.core.historical.
apply_historical_operation`), and records the difference — rows that
disappeared get their transaction time closed at the commit instant, rows
that appeared open at it.  Hence temporal relations are append-only in
transaction time, and ``rollback(t)`` reconstructs exactly the historical
state any moment ``t`` saw.

The stored form is the four-timestamp table of Figure 8:
``(data ‖ valid from, valid to ‖ transaction start, transaction end)``.

Physically, a :class:`TemporalRelation` is *partitioned* along the
transaction-time axis: rows whose transaction period has closed belong to
the immutable past and live in an append-only segment shared structurally
between successive versions, while the open rows (transaction end = ∞) —
exactly the current historical state — live in a map keyed by
``(data, valid)``.  Committing a transaction therefore costs
O(current state + Δ), not O(all rows ever written): the closed past is
never re-read, re-diffed or re-tupled.  The value semantics (``rows``,
``rollback``, ``current``, equality) are unchanged; :func:`naive_advance`
keeps the original whole-relation diff as the executable specification
the incremental path is property-tested against.
"""

from __future__ import annotations

import itertools
from typing import (Any, Dict, Iterable, Iterator, List, Mapping, NamedTuple,
                    Optional, Sequence, Set, Tuple as PyTuple)

from repro.core.base import Database, InstantLike
from repro.core.historical import (HistoricalRelation, HistoricalRow,
                                   apply_historical_operation,
                                   check_historical_constraints)
from repro.core.taxonomy import DatabaseKind
from repro.errors import ConstraintViolation, UnknownRelationError
from repro.obs import runtime as _obs
from repro.relational.constraints import Constraint
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple
from repro.time.instant import Instant, POS_INF, instant as _coerce
from repro.time.period import Period
from repro.txn.transaction import Operation, Transaction


class BitemporalRow(NamedTuple):
    """One fact with its valid period and its transaction-time period."""

    data: Tuple
    valid: Period
    tt: Period

    def visible_at(self, as_of: Instant) -> bool:
        """Was this row part of the historical state as of *as_of*?"""
        return self.tt.contains(as_of)


#: The current-state key: a fact plus its valid period.  At most one open
#: row per key exists in any store the database maintains.
_OpenKey = PyTuple[Tuple, Period]


class TemporalRelation:
    """A bitemporal relation (Figure 8): an immutable value object.

    Internally partitioned into an append-only *closed* segment (rows
    whose transaction time has ended) and an *open* map keyed by
    ``(data, valid)`` (the current historical state).  Successive
    versions produced by :meth:`TemporalDatabase._advance` share the
    closed segment structurally, so a commit never copies the past.
    """

    __slots__ = ("_schema", "_closed_log", "_closed_len", "_open",
                 "_open_extra", "_lineage", "_rows_cache", "_current_cache",
                 "_times_cache")

    def __init__(self, schema: Schema,
                 rows: Iterable[BitemporalRow] = ()) -> None:
        closed: List[BitemporalRow] = []
        open_map: Dict[_OpenKey, BitemporalRow] = {}
        extra: List[BitemporalRow] = []
        for row in rows:
            if row.tt.end.is_pos_inf:
                key = (row.data, row.valid)
                if key in open_map:
                    extra.append(row)  # derived values may repeat a row
                else:
                    open_map[key] = row
            else:
                closed.append(row)
        self._init_parts(schema, closed, len(closed), open_map, extra,
                         object())

    def _init_parts(self, schema: Schema, closed_log: List[BitemporalRow],
                    closed_len: int, open_map: Dict[_OpenKey, BitemporalRow],
                    extra: List[BitemporalRow], lineage: object) -> None:
        self._schema = schema
        self._closed_log = closed_log
        self._closed_len = closed_len
        self._open = open_map
        self._open_extra = extra
        # Versions descending from the same original value share a lineage
        # token; within a lineage the closed log only ever grows, so index
        # maintenance can diff two versions structurally.
        self._lineage = lineage
        self._rows_cache: Optional[PyTuple[BitemporalRow, ...]] = None
        self._current_cache: Optional[HistoricalRelation] = None
        self._times_cache: Optional[List[Instant]] = None

    @classmethod
    def _from_parts(cls, schema: Schema, closed_log: List[BitemporalRow],
                    closed_len: int, open_map: Dict[_OpenKey, BitemporalRow],
                    lineage: object) -> "TemporalRelation":
        """Internal constructor for :meth:`TemporalDatabase._advance`."""
        value = cls.__new__(cls)
        value._init_parts(schema, closed_log, closed_len, open_map, [],
                          lineage)
        return value

    # -- accessors ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The explicit (non-temporal) schema."""
        return self._schema

    @property
    def rows(self) -> PyTuple[BitemporalRow, ...]:
        """Every bitemporal row, past and current."""
        if self._rows_cache is None:
            self._rows_cache = tuple(self._iter_rows())
        return self._rows_cache

    def _iter_rows(self) -> Iterator[BitemporalRow]:
        return itertools.chain(
            itertools.islice(self._closed_log, self._closed_len),
            self._open.values(), self._open_extra)

    def __len__(self) -> int:
        return self._closed_len + len(self._open) + len(self._open_extra)

    def __iter__(self):
        return self._iter_rows()

    # -- the two time axes ------------------------------------------------------

    def rollback(self, as_of: InstantLike) -> HistoricalRelation:
        """The historical state as of a transaction time (§4.4's rollback)."""
        when = _coerce(as_of)
        return HistoricalRelation(
            self._schema,
            (HistoricalRow(row.data, row.valid)
             for row in self._iter_rows() if row.visible_at(when)))

    def current(self) -> HistoricalRelation:
        """The most recent historical state (transaction end = ∞).

        The state is exactly the open partition, so this is O(current
        state); the result is memoized (the value is immutable, so the
        memo is per relation version).
        """
        if self._current_cache is None:
            self._current_cache = HistoricalRelation(
                self._schema,
                (HistoricalRow(row.data, row.valid)
                 for row in itertools.chain(self._open.values(),
                                            self._open_extra)))
        return self._current_cache

    def visible_during(self, period: Period) -> "TemporalRelation":
        """The rows belonging to any historical state during the period.

        Backs TQuel's ``as of t1 through t2`` on temporal databases; the
        result keeps both time axes (it is itself a temporal relation).
        """
        return TemporalRelation(
            self._schema,
            (row for row in self._iter_rows() if row.tt.overlaps(period)))

    def timeslice(self, valid_at: InstantLike,
                  as_of: Optional[InstantLike] = None) -> Relation:
        """Facts valid at one instant, seen as of another (a bitemporal point)."""
        state = self.current() if as_of is None else self.rollback(as_of)
        return state.timeslice(valid_at)

    def commit_times(self) -> List[Instant]:
        """Every transaction time at which this relation changed, ascending."""
        if self._times_cache is None:
            times = {row.tt.start for row in self._iter_rows()}
            times.update(row.tt.end for row in self._iter_rows()
                         if row.tt.end.is_finite)
            self._times_cache = sorted(times)
        return list(self._times_cache)

    def historical_states(self) -> List[PyTuple[Instant, HistoricalRelation]]:
        """The full sequence of historical states (Figure 7's cube)."""
        return [(when, self.rollback(when)) for when in self.commit_times()]

    def select(self, predicate) -> "TemporalRelation":
        """Rows whose data satisfies the predicate (both times untouched)."""
        from repro.relational.expression import Expression
        if isinstance(predicate, Expression):
            test = lambda row: bool(predicate.evaluate(row))
        else:
            test = predicate
        return TemporalRelation(
            self._schema, (row for row in self._iter_rows() if test(row.data)))

    def storage_cells(self) -> int:
        """Stored cells: rows × (attributes + 4 timestamps).  For benches."""
        return len(self) * (len(self._schema) + 4)

    def pretty(self, title: Optional[str] = None, event: bool = False) -> str:
        """Render like Figure 8 (or Figure 9's event style)."""
        from repro.tquel.printer import render_temporal  # local: avoid cycle
        return render_temporal(self, title, event=event)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalRelation):
            return NotImplemented
        return (self._schema.names == other._schema.names
                and frozenset(self.rows) == frozenset(other.rows))

    def __hash__(self) -> int:
        return hash((self._schema.names, frozenset(self.rows)))

    def __repr__(self) -> str:
        return (f"TemporalRelation({', '.join(self._schema.names)}; "
                f"{len(self)} rows)")


# ---------------------------------------------------------------------------
# The database kind
# ---------------------------------------------------------------------------

_Store = Dict[str, TemporalRelation]


class TemporalDatabase(Database):
    """The temporal database: transaction time *and* valid time.

    The update API is the historical database's (facts with valid-time
    arguments); the difference is that every change is also recorded on
    the transaction-time axis, so nothing is ever physically forgotten.
    """

    kind = DatabaseKind.TEMPORAL

    def __init__(self, clock=None, index: bool = True) -> None:
        super().__init__(clock, index=index)
        self._store: _Store = {}

    # -- DML API (same shape as HistoricalDatabase) --------------------------------------

    def insert(self, name: str, values: Mapping[str, Any],
               valid_from: Optional[InstantLike] = None,
               valid_to: Optional[InstantLike] = None,
               valid_at: Optional[InstantLike] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Record a fact with its valid time (transaction time is assigned)."""
        checked = self._checked_values(name, values)
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=True)
        arguments["values"] = checked
        return self._submit(Operation("insert", name, arguments), txn)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               valid_from: Optional[InstantLike] = None,
               valid_to: Optional[InstantLike] = None,
               valid_at: Optional[InstantLike] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Remove matching facts' validity within the period — logically.

        The current historical state loses the validity; the previous
        belief remains on the transaction-time axis ("errors ... cannot be
        forgotten").
        """
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=False)
        arguments["match"] = self._checked_match(name, match or {})
        return self._submit(Operation("delete", name, arguments), txn)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any],
                valid_from: Optional[InstantLike] = None,
                valid_to: Optional[InstantLike] = None,
                valid_at: Optional[InstantLike] = None,
                txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Change matching facts' attributes within the period — logically."""
        arguments = self._valid_args(name, valid_from, valid_to, valid_at,
                                     for_insert=False)
        arguments["match"] = self._checked_match(name, match)
        arguments["updates"] = self._checked_match(name, updates)
        return self._submit(Operation("replace", name, arguments), txn)

    def _valid_args(self, name: str, valid_from, valid_to, valid_at,
                    for_insert: bool) -> Dict[str, Any]:
        if valid_at is not None:
            if valid_from is not None or valid_to is not None:
                raise ConstraintViolation(
                    "give either valid_at or valid_from/valid_to, not both"
                )
            return {"valid_at": _coerce(valid_at)}
        if name in self._event_relations and for_insert:
            raise ConstraintViolation(
                f"{name!r} is an event relation; inserts take valid_at"
            )
        if for_insert and valid_from is None:
            raise ConstraintViolation(
                "inserting into a temporal relation requires valid_from "
                "(the instant the fact began to hold)"
            )
        arguments: Dict[str, Any] = {}
        if valid_from is not None:
            arguments["valid_from"] = _coerce(valid_from)
        if valid_to is not None:
            arguments["valid_to"] = _coerce(valid_to)
        return arguments

    # -- queries --------------------------------------------------------------------------

    def temporal(self, name: str) -> TemporalRelation:
        """The full bitemporal relation (Figure 8)."""
        self._require_defined(name)
        return self._store[name]

    def history(self, name: str) -> HistoricalRelation:
        """The current historical state (what a historical DB would hold)."""
        return self.temporal(name).current()

    def rollback(self, name: str, as_of: InstantLike) -> HistoricalRelation:
        """The historical state as of a past transaction time."""
        self.require_rollback("rollback")
        cache = self.index_cache
        if cache is not None:
            self._require_defined(name)
            return cache.bitemporal(name).rollback(as_of)
        return self.temporal(name).rollback(as_of)

    def rollback_range(self, name: str, from_: InstantLike,
                       through: InstantLike) -> TemporalRelation:
        """Rows of every historical state over the inclusive tt range."""
        self.require_rollback("rollback")
        period = Period.from_inclusive(_coerce(from_), _coerce(through))
        cache = self.index_cache
        if cache is not None:
            self._require_defined(name)
            return TemporalRelation(self._store[name].schema,
                                    cache.bitemporal(name).visible_during(period))
        return self.temporal(name).visible_during(period)

    def visible(self, name: str, as_of: InstantLike) -> List[BitemporalRow]:
        """The bitemporal rows visible as of a transaction time.

        The TQuel evaluator's relation access: with the index cache on,
        this is a stab (O(log n + k)) instead of a scan of every row ever
        written.
        """
        self._require_defined(name)
        cache = self.index_cache
        if cache is not None:
            return cache.bitemporal(name).visible(as_of)
        when = _coerce(as_of)
        return [row for row in self._store[name]
                if row.visible_at(when)]

    def snapshot(self, name: str) -> Relation:
        """Facts valid now, as of now."""
        cache = self.index_cache
        if cache is not None:
            self._require_defined(name)
            return cache.historical(name).timeslice(self.now())
        return self.history(name).timeslice(self.now())

    def timeslice(self, name: str, valid_at: InstantLike,
                  as_of: Optional[InstantLike] = None) -> Relation:
        """Facts valid at an instant, optionally seen as of a past moment."""
        self.require_historical("timeslice")
        cache = self.index_cache
        if cache is not None:
            self._require_defined(name)
            if as_of is None:
                return cache.historical(name).timeslice(valid_at)
            return cache.bitemporal(name).timeslice(valid_at, as_of)
        return self.temporal(name).timeslice(valid_at, as_of)

    # -- applier hooks ----------------------------------------------------------------------

    def _stage(self) -> _Store:
        return dict(self._store)

    def _install(self, staged: _Store) -> None:
        now = self._manager.clock.last
        for name, relation in staged.items():
            # Only relations this batch actually replaced need re-checking:
            # an untouched store is the very same (immutable) value that
            # passed its checks when it was installed, and no declared
            # constraint tightens as `now` advances.
            if name in self._schemas and relation is not self._store.get(name):
                check_historical_constraints(relation.current(),
                                             self._constraints[name], now)
        self._store = staged

    def _create_store(self, staged: _Store, name: str, schema: Schema) -> None:
        staged[name] = TemporalRelation(schema)

    def _drop_store(self, staged: _Store, name: str) -> None:
        staged.pop(name, None)

    def _apply_dml(self, staged: _Store, op: Operation,
                   commit_time: Instant) -> None:
        if op.relation not in staged:
            raise UnknownRelationError(f"no relation {op.relation!r}")
        staged[op.relation] = self._advance(staged[op.relation], op, commit_time)

    @staticmethod
    def _advance(relation: TemporalRelation, op: Operation,
                 commit_time: Instant) -> TemporalRelation:
        """Apply a valid-time operation and record the state difference.

        Incremental: the closed past is carried over by reference (shared
        structurally with the input version), and only the open partition
        — the current historical state — is diffed against the state the
        operation produces.  Cost is O(current state + Δ) regardless of how
        many rows the relation has accumulated.  Semantically identical to
        :func:`naive_advance` (property-tested), which also handles the
        one case the partition cannot: a derived value holding duplicate
        open rows.
        """
        metrics = _obs.current().metrics
        if relation._open_extra:
            metrics.counter("commit.fallback_naive").inc()
            return naive_advance(relation, op, commit_time)
        old_state = relation.current()
        new_state = apply_historical_operation(old_state, op)
        new_keys: Dict[_OpenKey, HistoricalRow] = {
            (hist_row.data, hist_row.valid): hist_row
            for hist_row in new_state.rows
        }

        closed_log = relation._closed_log
        if len(closed_log) != relation._closed_len:
            # A sibling version already extended the shared log (an aborted
            # or superseded commit): diverge onto a private copy.
            closed_log = closed_log[:relation._closed_len]
        closed_before = len(closed_log)
        old_open = relation._open
        new_open: Dict[_OpenKey, BitemporalRow] = {}
        for key, row in old_open.items():
            if key in new_keys:
                new_open[key] = row  # survives this transaction
            elif row.tt.start == commit_time:
                continue  # created and superseded within one transaction
            else:
                closed_log.append(BitemporalRow(
                    row.data, row.valid, Period(row.tt.start, commit_time)))
        opened = 0
        for key, hist_row in new_keys.items():
            if key not in old_open:
                new_open[key] = BitemporalRow(hist_row.data, hist_row.valid,
                                              Period(commit_time, POS_INF))
                opened += 1
        metrics.counter("commit.rows_closed").inc(
            len(closed_log) - closed_before)
        metrics.counter("commit.rows_opened").inc(opened)
        return TemporalRelation._from_parts(relation.schema, closed_log,
                                            len(closed_log), new_open,
                                            relation._lineage)


def naive_advance(relation: TemporalRelation, op: Operation,
                  commit_time: Instant) -> TemporalRelation:
    """The whole-relation advance: the executable specification.

    Materializes the full old and new historical states, walks every row
    ever written, and rebuilds the relation — O(n) per commit.  Kept as
    the reference the incremental :meth:`TemporalDatabase._advance` is
    property-tested against, and as the fallback for non-canonical values
    (duplicate open rows in a derived relation).
    """
    old_state = relation.current()
    new_state = apply_historical_operation(old_state, op)
    old_rows: Set[HistoricalRow] = set(old_state.rows)
    new_rows: Set[HistoricalRow] = set(new_state.rows)

    result: List[BitemporalRow] = []
    for row in relation.rows:
        if not row.tt.end.is_pos_inf:
            result.append(row)  # already part of the immutable past
            continue
        if HistoricalRow(row.data, row.valid) in new_rows:
            result.append(row)  # survives this transaction
            continue
        if row.tt.start == commit_time:
            continue  # created and superseded within one transaction
        result.append(BitemporalRow(row.data, row.valid,
                                    Period(row.tt.start, commit_time)))
    for hist_row in new_state.rows:
        if hist_row not in old_rows:
            result.append(BitemporalRow(hist_row.data, hist_row.valid,
                                        Period(commit_time, POS_INF)))
    return TemporalRelation(relation.schema, result)
