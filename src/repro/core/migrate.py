"""Migration between database kinds: moving up (and down) the taxonomy.

The paper ends by arguing that "future database management systems should
support all three times".  Real systems get there by *migrating*: a shop
with a static database starts keeping transaction time, a historical
database is upgraded to temporal.  This module provides that path:

:func:`migrate(database, target_class, clock=None)` builds a new database
of the target kind carrying over schemas, declared constraints,
event-relation flags, and as much content as the target can hold:

==================  =====================================================
upgrade             information carried
==================  =====================================================
static → rollback   the current snapshot becomes the first stored state
static → historical the snapshot becomes facts valid ``[migration, ∞)``
static → temporal   both of the above
rollback → temporal each past state replayed, preserving the original
                    commit instants (rollbacks keep working!); each
                    state's tuples become facts valid from their own
                    commit instant (valid time tracking transaction
                    time, the best a snapshot history can assert)
historical → temporal  the current history becomes the first historical
                    state
==================  =====================================================

Downgrades (any kind → static, temporal → historical, …) keep what the
target can represent — the current snapshot / current history — and
**discard the rest**; they raise unless ``allow_loss=True``, so nobody
drops an audit trail by accident.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.core.base import Database
from repro.core.rollback import RollbackDatabase, StateSequence
from repro.core.temporal import TemporalDatabase
from repro.errors import TemporalSupportError
from repro.time.clock import SimulatedClock


def _is_lossy(source: Database, target_class: Type[Database]) -> bool:
    if source.kind.supports_rollback and not target_class(
            clock=SimulatedClock(1)).kind.supports_rollback:
        return True
    if source.kind.supports_historical_queries and not target_class(
            clock=SimulatedClock(1)).kind.supports_historical_queries:
        return True
    return False


def migrate(source: Database, target_class: Type[Database],
            clock=None, allow_loss: bool = False) -> Database:
    """Build a database of *target_class* from *source* (see module doc).

    ``clock`` defaults to a simulated clock resuming just after the
    source's last commit, so the migrated database's transaction times
    continue where the source's stopped.  Lossy migrations (dropping an
    axis the source has) require ``allow_loss=True``.
    """
    target_probe = target_class(clock=SimulatedClock(1))
    if _is_lossy(source, target_class) and not allow_loss:
        raise TemporalSupportError(
            f"migrating a {source.kind} database to {target_probe.kind} "
            f"discards a time axis; pass allow_loss=True to proceed"
        )

    replaying = (isinstance(source, RollbackDatabase)
                 and target_class is TemporalDatabase)
    last = source.manager.clock.last
    if clock is None:
        if replaying:
            # The replay drives the clock through the source's original
            # commit instants, so it must start before the first of them.
            first = (source.log.records[0].commit_time
                     if len(source.log) else source.now())
            clock = SimulatedClock(first - 1)
        else:
            resume_at = (last + 1) if last is not None else source.now()
            clock = SimulatedClock(resume_at)
    target = target_class(clock=clock)

    if replaying:
        _replay_rollback_history(source, target)
        return target

    # Generic path: one migration commit carrying the current content.
    for name in source.relation_names():
        target.define(name, source.schema(name),
                      constraints=source.constraints(name),
                      event=_carries_event_flag(source, target, name))
    for name in source.relation_names():
        _copy_current(source, target, name)
    return target


def _carries_event_flag(source: Database, target: Database,
                        name: str) -> bool:
    if not target.kind.supports_historical_queries:
        return False
    is_event = getattr(source, "is_event_relation", None)
    return bool(is_event and is_event(name))


def _copy_current(source: Database, target: Database, name: str) -> None:
    migration_instant = target.now()
    with target.begin() as txn:
        if (source.kind.supports_historical_queries
                and target.kind.supports_historical_queries):
            # Carry the full current history, validity preserved.
            for row in source.history(name).rows:
                _insert_fact(target, name, dict(row.data), row.valid, txn)
        elif target.kind.supports_historical_queries:
            # Snapshot only: facts valid from the migration on.
            for row in source.snapshot(name):
                target.insert(name, dict(row),
                              valid_from=migration_instant, txn=txn)
        else:
            for row in source.snapshot(name):
                target.insert(name, dict(row), txn=txn)


def _insert_fact(target: Database, name: str, values, valid, txn) -> None:
    if getattr(target, "is_event_relation", lambda _: False)(name):
        target.insert(name, values, valid_at=valid.start, txn=txn)
    else:
        target.insert(name, values, valid_from=valid.start,
                      valid_to=valid.end, txn=txn)


def _replay_rollback_history(source: RollbackDatabase,
                             target: TemporalDatabase) -> None:
    """Rollback → temporal: replay every state at its original commit.

    The target's clock is driven through the source's commit instants so
    ``rollback(t)`` on the migrated database reproduces the source's
    ``rollback(t)`` (as a valid-timeslice at ``t``); each state's tuples
    are asserted valid from their commit instant — the strongest claim a
    snapshot history supports.
    """
    clock = target.manager.clock.source
    if not isinstance(clock, SimulatedClock):
        raise TemporalSupportError(
            "replaying rollback history needs the target on a simulated "
            "clock (the default); pass clock=None"
        )

    # Chronological interleaving of DDL and per-relation state changes.
    events = []
    for record in source.log:
        for op in record.operations:
            if op.action in ("define", "drop"):
                events.append((record.commit_time, op.action, op.relation,
                               op.arguments))
    for name in source.relation_names():
        store = source.store(name)
        if isinstance(store, StateSequence):
            pairs = list(store.states)
        else:
            times = sorted({bound
                            for row in store.rows
                            for bound in (row.tt.start, row.tt.end)
                            if bound.is_finite})
            pairs = [(when, store.rollback(when)) for when in times]
        for when, state in pairs:
            events.append((when, "state", name, state))
    events.sort(key=lambda event: (event[0], event[1] != "define"))

    previous = {}
    for when, action, name, payload in events:
        if clock.current() < when:
            clock.set(when)
        if action == "define":
            target.define(name, payload["schema"],
                          constraints=tuple(payload["constraints"]))
            previous[name] = frozenset()
            continue
        if action == "drop":
            target.drop(name)
            previous.pop(name, None)
            continue
        if name not in previous:
            continue  # state of a relation dropped later (already gone)
        current = frozenset(payload.tuples)
        removed = previous[name] - current
        added = current - previous[name]
        if removed or added:
            with target.begin() as txn:
                for row in removed:
                    # End (don't erase) the fact's validity: it really was
                    # current until this commit.
                    target.delete(name, dict(row), valid_from=when, txn=txn)
                for row in added:
                    target.insert(name, dict(row), valid_from=when, txn=txn)
        previous[name] = current
