"""The abstract database: what all four kinds share.

A :class:`Database` is a set of named relations (schemas + stores), a
single-writer :class:`~repro.txn.manager.TransactionManager`, and a
position in the taxonomy (:attr:`Database.kind`).  The four concrete kinds
in :mod:`repro.core` differ *only* in what history their stores keep and
which query operations they can therefore support:

======================  ==========  ==========  ===========  =========
operation               static      rollback    historical   temporal
======================  ==========  ==========  ===========  =========
``snapshot``            yes         yes         yes          yes
``rollback`` (as of)    —           yes         —            yes
``timeslice`` (valid)   —           —           yes          yes
``history``             —           —           yes          yes
======================  ==========  ==========  ===========  =========

The dashes are not missing features but *category errors*: the base class
raises :class:`~repro.errors.RollbackNotSupportedError` /
:class:`~repro.errors.HistoricalNotSupportedError` with the database kind
named, which is Figure 11 of the paper enforced at runtime (and, for
TQuel, at analysis time).

DDL (``define``/``drop``) is immediate and journaled as its own
transaction; DML is buffered in transactions and applied atomically at a
system-assigned commit time.
"""

from __future__ import annotations

import abc
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple as PyTuple,
                    Union)

from repro.core.taxonomy import DatabaseKind
from repro.errors import (DuplicateRelationError, HistoricalNotSupportedError,
                          RollbackNotSupportedError, UnknownRelationError)
from repro.obs import runtime as _obs
from repro.relational.constraints import Constraint
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple
from repro.time.clock import Clock
from repro.time.instant import Instant
from repro.txn.log import CommitLog
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Operation, Transaction

InstantLike = Union[Instant, str, int]


class Database(abc.ABC):
    """Base class of the four database kinds."""

    #: The kind of database, per the taxonomy (set by each subclass).
    kind: DatabaseKind

    def __init__(self, clock: Optional[Clock] = None,
                 index: bool = True) -> None:
        self._schemas: Dict[str, Schema] = {}
        self._constraints: Dict[str, List[Constraint]] = {}
        self._event_relations: set = set()
        self._manager = TransactionManager(self._apply, clock)
        # Per-relation version counters: bumped once per committed batch
        # that touches the relation (DML, define, drop).  Monotone across
        # drop/redefine, so a version never aliases an older value.
        self._versions: Dict[str, int] = {}
        # Per-relation commit time of the latest touching batch.  The
        # result cache uses it to decide whether an as-of pin lies
        # entirely in the immutable past.
        self._last_change: Dict[str, Instant] = {}
        self._index_enabled = bool(index)
        self._index_cache: Optional[Any] = None
        self._columnar_cache: Optional[Any] = None
        self._result_cache: Optional[Any] = None

    # -- capabilities ----------------------------------------------------------

    @property
    def supports_rollback(self) -> bool:
        """True if the database incorporates transaction time (Figure 11)."""
        return self.kind.supports_rollback

    @property
    def supports_historical_queries(self) -> bool:
        """True if the database incorporates valid time (Figure 11)."""
        return self.kind.supports_historical_queries

    def require_rollback(self, operation: str = "as of") -> None:
        """Raise unless this kind supports transaction time."""
        if not self.supports_rollback:
            raise RollbackNotSupportedError(
                f"{operation!r} requires transaction time, which a "
                f"{self.kind} database does not support"
            )

    def require_historical(self, operation: str = "when") -> None:
        """Raise unless this kind supports valid time."""
        if not self.supports_historical_queries:
            raise HistoricalNotSupportedError(
                f"{operation!r} requires valid time, which a "
                f"{self.kind} database does not support"
            )

    # -- bookkeeping --------------------------------------------------------------

    @property
    def manager(self) -> TransactionManager:
        """The transaction manager (clock + log)."""
        return self._manager

    @property
    def log(self) -> CommitLog:
        """The append-only commit log."""
        return self._manager.log

    def now(self) -> Instant:
        """The database clock's current reading."""
        return self._manager.now()

    def relation_version(self, name: str) -> int:
        """How many committed batches have touched *name* (0 if none).

        The counter keys the index cache: an index built for
        ``(name, version)`` stays valid until another commit touches that
        very relation — commits elsewhere no longer invalidate it.
        """
        return self._versions.get(name, 0)

    def last_change(self, name: str) -> Optional[Instant]:
        """The commit time of the latest batch that touched *name*.

        ``None`` before any commit has.  An ``as of`` pin at or before
        this instant reads only rows whose membership in the answer can
        no longer change — the immutability test behind the result
        cache's cache-forever flavor (see :mod:`repro.core.resultcache`;
        the evaluator additionally requires every contributing
        transaction period to be closed).
        """
        return self._last_change.get(name)

    @property
    def index_cache(self):
        """The live :class:`~repro.core.indexing.DatabaseIndexCache`.

        ``None`` when the database was created with ``index=False``; the
        cache is built lazily on first use otherwise.  The default query
        paths (``snapshot``/``timeslice``/``rollback`` and the TQuel
        evaluator) go through it when present.
        """
        if not self._index_enabled:
            return None
        if self._index_cache is None:
            from repro.core.indexing import DatabaseIndexCache  # avoid cycle
            self._index_cache = DatabaseIndexCache(self)
        return self._index_cache

    @property
    def columnar_cache(self):
        """The live :class:`~repro.core.columnar.ColumnarCache`.

        Built lazily on first use; follows the ``index=False`` switch (a
        database created without acceleration structures gets neither
        trees nor chunks, and the planner falls back to naive scans).
        """
        if not self._index_enabled:
            return None
        if self._columnar_cache is None:
            from repro.core.columnar import ColumnarCache  # avoid cycle
            self._columnar_cache = ColumnarCache(self)
        return self._columnar_cache

    @property
    def result_cache(self):
        """The live :class:`~repro.core.resultcache.ResultCache`.

        Built lazily on first use; follows the ``index=False`` switch so
        an acceleration-free database also reports honest per-query
        costs.
        """
        if not self._index_enabled:
            return None
        if self._result_cache is None:
            from repro.core.resultcache import ResultCache  # avoid cycle
            self._result_cache = ResultCache(self)
        return self._result_cache

    def relation_names(self) -> List[str]:
        """All defined relation names, sorted."""
        return sorted(self._schemas)

    def schema(self, name: str) -> Schema:
        """The schema of a relation."""
        self._require_defined(name)
        return self._schemas[name]

    def constraints(self, name: str) -> PyTuple[Constraint, ...]:
        """The declared constraints of a relation."""
        self._require_defined(name)
        return tuple(self._constraints[name])

    def __contains__(self, name: object) -> bool:
        return name in self._schemas

    def _require_defined(self, name: str) -> None:
        if name not in self._schemas:
            known = ", ".join(self.relation_names()) or "<none>"
            raise UnknownRelationError(
                f"no relation {name!r}; database has: {known}"
            )

    # -- DDL ----------------------------------------------------------------------------

    def define(self, name: str, schema: Schema,
               constraints: Sequence[Constraint] = (),
               event: bool = False) -> Instant:
        """Create a relation; returns the commit time of the DDL transaction.

        ``event=True`` declares an *event* relation (Figure 9): its valid
        time is a single instant per tuple (``valid_at``).  Only database
        kinds with valid time accept it.
        """
        if event:
            self.require_historical("an event relation")
        from repro.core.temporal_constraints import TemporalConstraint
        if any(isinstance(c, TemporalConstraint) for c in constraints):
            self.require_historical("a temporal constraint")
        if name in self._schemas:
            raise DuplicateRelationError(f"relation {name!r} already exists")
        op = Operation("define", name,
                       {"schema": schema, "constraints": tuple(constraints),
                        "event": event})
        return self._manager.run([op])

    def is_event_relation(self, name: str) -> bool:
        """True if the relation was defined with ``event=True``."""
        self._require_defined(name)
        return name in self._event_relations

    def drop(self, name: str) -> Instant:
        """Remove a relation (and, in this implementation, its history)."""
        self._require_defined(name)
        return self._manager.run([Operation("drop", name, {})])

    # -- DML plumbing ------------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a multi-operation transaction (single-writer: one at a
        time; for many concurrent callers use :meth:`sessions`)."""
        return self._manager.begin()

    def sessions(self, retry: Optional[Any] = None,
                 admission: Optional[Any] = None, **kwargs: Any):
        """A concurrent session layer over this database.

        N threads may call :meth:`SessionLayer.run
        <repro.concurrency.layer.SessionLayer.run>` on the returned
        layer concurrently; commits validate optimistically
        (first-committer-wins) and still serialize into the paper's
        strictly-increasing transaction-time order.  ``retry`` /
        ``admission`` override the default
        :class:`~repro.concurrency.retry.RetryPolicy` and
        :class:`~repro.concurrency.admission.AdmissionController`;
        see docs/CONCURRENCY.md for the isolation contract.
        """
        from repro.concurrency import SessionLayer  # avoid cycle
        return SessionLayer(self, retry=retry, admission=admission, **kwargs)

    def _submit(self, op: Operation,
                txn: Optional[Transaction]) -> Optional[Instant]:
        """Buffer *op* in *txn*, or run it as a single-op transaction.

        Returns the commit time when run immediately, ``None`` when
        buffered.
        """
        self._require_defined(op.relation)
        if txn is not None:
            txn.add(op)
            return None
        return self._manager.run([op])

    def _checked_values(self, name: str, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate a full tuple of values against the relation schema."""
        self._require_defined(name)
        row = Tuple(self._schemas[name], values)  # raises on mismatch
        return dict(row)

    def _checked_match(self, name: str, match: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate a partial equality-match against the relation schema."""
        self._require_defined(name)
        schema = self._schemas[name]
        for attribute in match:
            schema.attribute(attribute)
        return dict(match)

    @staticmethod
    def _matches(row: Tuple, match: Mapping[str, Any]) -> bool:
        """True if *row* agrees with every attribute in *match*."""
        return all(row[attribute] == value for attribute, value in match.items())

    # -- the applier -----------------------------------------------------------------------------

    def _apply(self, operations: Sequence[Operation],
               commit_time: Instant) -> None:
        """Apply a committed batch (called by the manager, under its lock).

        DDL is dispatched here; DML is handed to the kind-specific
        :meth:`_apply_dml`.  Any exception aborts the whole batch — stores
        must not be left half-updated, so kinds stage into fresh values
        that are installed only at the end, and the schema/constraint/
        event-flag bookkeeping is snapshotted and restored on failure.

        The whole batch runs inside a ``commit.apply`` span with the
        batch size timed into the ``commit.apply_seconds`` histogram
        (no-ops unless recording is on — see :mod:`repro.obs`).

        Durability note: this runs *before* the commit record is logged
        and journaled, so an exception here rejects the commit cleanly —
        nothing reaches the journal and nothing needs recovery.  Once
        ``_apply`` returns, the manager logs the record and fires
        ``on_commit``; only that journal append makes the commit durable
        (docs/DURABILITY.md).
        """
        obs = _obs.current()
        metrics = obs.metrics
        with obs.tracer.span("commit.apply", kind=str(self.kind),
                             operations=len(operations)), \
                metrics.histogram("commit.apply_seconds").time():
            staged = self._stage()
            snapshot = (dict(self._schemas), dict(self._constraints),
                        set(self._event_relations))
            try:
                self._execute(staged, operations, commit_time)
                self._install(staged)
            except Exception:
                self._schemas, self._constraints, self._event_relations = \
                    snapshot
                metrics.counter("commit.failed").inc()
                raise
            for name in {op.relation for op in operations}:
                self._versions[name] = self._versions.get(name, 0) + 1
                self._last_change[name] = commit_time
            if self._result_cache is not None:
                # DDL reuses names for unrelated stores, so even the
                # cache-forever entries of a dropped/redefined relation
                # must die with it.
                for op in operations:
                    if op.action in ("define", "drop"):
                        self._result_cache.purge(op.relation)
        metrics.counter("commit.batches").inc()
        metrics.counter("commit.operations").inc(len(operations))

    def _execute(self, staged: Any, operations: Sequence[Operation],
                 commit_time: Instant) -> None:
        """Run one batch against *staged* (shared by apply and rehearse).

        Mutates the schema/constraint/event bookkeeping as it goes (DDL
        must be visible to later operations of the same batch); the
        caller snapshots that bookkeeping beforehand and restores it on
        failure (:meth:`_apply`) or unconditionally (:meth:`rehearse`).
        """
        for op in operations:
            if op.action == "define":
                if op.relation in self._schemas:
                    raise DuplicateRelationError(
                        f"relation {op.relation!r} already exists"
                    )
                self._schemas[op.relation] = op.arguments["schema"]
                self._constraints[op.relation] = list(
                    op.arguments["constraints"])
                if op.arguments.get("event"):
                    self._event_relations.add(op.relation)
                self._create_store(staged, op.relation,
                                   op.arguments["schema"])
            elif op.action == "drop":
                self._require_defined(op.relation)
                del self._schemas[op.relation]
                del self._constraints[op.relation]
                self._event_relations.discard(op.relation)
                self._drop_store(staged, op.relation)
            else:
                self._apply_dml(staged, op, commit_time)

    def rehearse(self, operations: Sequence[Operation],
                 commit_time: Instant) -> None:
        """Dry-run a batch: raise exactly when :meth:`_apply` would.

        Runs the whole batch against a staged copy and then discards it
        — no install, no version bump, no observable state change.  The
        sharded store's two-phase commit rehearses each shard's part
        during *prepare*, so a participant only votes yes for a batch it
        can actually apply (a constraint violation surfaces before the
        commit decision is journaled, never after another shard already
        applied its part).  Callers must hold the commit serialization
        lock for the answer to remain true at apply time.
        """
        staged = self._stage()
        snapshot = (dict(self._schemas), dict(self._constraints),
                    set(self._event_relations))
        try:
            self._execute(staged, operations, commit_time)
        finally:
            self._schemas, self._constraints, self._event_relations = \
                snapshot

    # -- observability -----------------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A snapshot of the process-local instrumentation.

        Metric names and the span taxonomy are documented in
        ``docs/OBSERVABILITY.md``.  All-empty (with
        ``instrumentation_enabled: False``) unless recording was turned
        on via :func:`repro.obs.enable` / :func:`repro.obs.recording`.
        """
        return _obs.stats()

    # -- kind-specific hooks ------------------------------------------------------------------------

    @abc.abstractmethod
    def _stage(self) -> Any:
        """A mutable working copy of the stores for one commit."""

    @abc.abstractmethod
    def _install(self, staged: Any) -> None:
        """Make the staged stores current (the commit point)."""

    @abc.abstractmethod
    def _create_store(self, staged: Any, name: str, schema: Schema) -> None:
        """Create an empty store for a newly defined relation."""

    @abc.abstractmethod
    def _drop_store(self, staged: Any, name: str) -> None:
        """Remove the store of a dropped relation."""

    @abc.abstractmethod
    def _apply_dml(self, staged: Any, op: Operation,
                   commit_time: Instant) -> None:
        """Apply one DML operation to the staged stores."""

    # -- queries: the capability matrix -----------------------------------------------------------------

    @abc.abstractmethod
    def snapshot(self, name: str) -> Relation:
        """The current static view of a relation (available in every kind)."""

    def rollback(self, name: str, as_of: InstantLike):
        """The relation as of a past transaction time.

        Supported by static rollback and temporal databases only; the
        result is a static relation for the former and a historical
        relation for the latter.
        """
        self.require_rollback("rollback")
        raise NotImplementedError  # pragma: no cover - kinds override

    def timeslice(self, name: str, valid_at: InstantLike) -> Relation:
        """The tuples valid at an instant of valid time, as a static relation.

        Supported by historical and temporal databases only.
        """
        self.require_historical("timeslice")
        raise NotImplementedError  # pragma: no cover - kinds override

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({len(self._schemas)} relations, "
                f"{len(self.log)} commits)")
