"""Static rollback databases (§4.2 of the paper).

A static rollback database "stores all past states, indexed by time, of
the static database as it evolves" — it incorporates **transaction time**
and supports the **rollback** operation: a vertical slice of the cube in
Figure 3 yielding the static relation as of some past moment.

Two representations are implemented, exactly the two the paper discusses:

- :class:`StateSequence` — the conceptual cube of Figure 3: a literal
  sequence of complete static relations, one appended per transaction.
  The paper calls this "impractical, due to excessive duplication" — a
  claim the benchmark ``bench_storage_duplication.py`` quantifies.
- :class:`RollbackRelation` — the practical representation of Figure 4:
  each tuple carries the start and end of its transaction time, "the
  points in time when the tuple was in the database".

The two are observationally equivalent — ``rollback(t)`` agrees for every
``t`` — which the property-based test suite verifies over arbitrary
transaction sequences.

Transaction time is append-only: "once a transaction has completed, the
static relations in the static rollback relation may not be altered".
There is *no* API that edits a past state; updates apply to the most
recent state only, and errors in past states "can sometimes be overridden
(if they are in the current state) but they cannot be forgotten".
"""

from __future__ import annotations

import bisect
import itertools
from typing import (Any, Dict, Iterable, List, Mapping, NamedTuple, Optional,
                    Sequence, Tuple as PyTuple)

from repro.core.base import Database, InstantLike
from repro.core.taxonomy import DatabaseKind
from repro.errors import JournalError, UnknownRelationError
from repro.obs import runtime as _obs
from repro.relational.constraints import KeyConstraint, check_all
from repro.relational.relation import Predicate, Relation
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple
from repro.time.instant import Instant, POS_INF, instant as _coerce
from repro.time.period import Period
from repro.txn.transaction import Operation, Transaction


class TransactionTimeRow(NamedTuple):
    """One tuple plus its transaction-time period ``[start, end)``.

    ``end`` is ``∞`` while the tuple is in the current state — the paper's
    ``∞`` entries in Figure 4.
    """

    data: Tuple
    tt: Period

    def visible_at(self, when: Instant) -> bool:
        """Was this tuple in the database state as of *when*?"""
        return self.tt.contains(when)


class RollbackRelation:
    """The interval-stamped representation (Figure 4): immutable value object.

    Like :class:`~repro.core.temporal.TemporalRelation`, the rows are
    partitioned along transaction time: closed rows live in an append-only
    segment shared structurally between successive versions; open rows
    (the current state) live in a map keyed by their data tuple.  A commit
    therefore costs O(current state + Δ), never O(history).
    """

    __slots__ = ("_schema", "_closed_log", "_closed_len", "_open",
                 "_open_extra", "_lineage", "_rows_cache", "_current_cache")

    def __init__(self, schema: Schema,
                 rows: Iterable[TransactionTimeRow] = ()) -> None:
        closed: List[TransactionTimeRow] = []
        open_map: Dict[Tuple, TransactionTimeRow] = {}
        extra: List[TransactionTimeRow] = []
        for row in rows:
            if row.tt.end.is_pos_inf:
                if row.data in open_map:
                    extra.append(row)  # derived values may repeat a tuple
                else:
                    open_map[row.data] = row
            else:
                closed.append(row)
        self._init_parts(schema, closed, len(closed), open_map, extra,
                         object())

    def _init_parts(self, schema: Schema,
                    closed_log: List[TransactionTimeRow], closed_len: int,
                    open_map: Dict[Tuple, TransactionTimeRow],
                    extra: List[TransactionTimeRow], lineage: object) -> None:
        self._schema = schema
        self._closed_log = closed_log
        self._closed_len = closed_len
        self._open = open_map
        self._open_extra = extra
        self._lineage = lineage
        self._rows_cache: Optional[PyTuple[TransactionTimeRow, ...]] = None
        self._current_cache: Optional[Relation] = None

    @classmethod
    def _from_parts(cls, schema: Schema,
                    closed_log: List[TransactionTimeRow], closed_len: int,
                    open_map: Dict[Tuple, TransactionTimeRow],
                    lineage: object) -> "RollbackRelation":
        """Internal constructor for :meth:`RollbackDatabase._advance`."""
        value = cls.__new__(cls)
        value._init_parts(schema, closed_log, closed_len, open_map, [],
                          lineage)
        return value

    @property
    def schema(self) -> Schema:
        """The explicit (non-temporal) schema."""
        return self._schema

    @property
    def rows(self) -> PyTuple[TransactionTimeRow, ...]:
        """Every timestamped row, current and past."""
        if self._rows_cache is None:
            self._rows_cache = tuple(self._iter_rows())
        return self._rows_cache

    def _iter_rows(self):
        return itertools.chain(
            itertools.islice(self._closed_log, self._closed_len),
            self._open.values(), self._open_extra)

    def rollback(self, as_of: InstantLike) -> Relation:
        """The static relation as of a transaction time (the vertical slice)."""
        when = _coerce(as_of)
        return Relation(self._schema,
                        (row.data for row in self._iter_rows()
                         if row.visible_at(when)))

    def current(self) -> Relation:
        """The most recent static state (rows whose transaction end is ∞).

        Exactly the open partition — O(current state), memoized per
        version.
        """
        if self._current_cache is None:
            self._current_cache = Relation(
                self._schema,
                (row.data for row in itertools.chain(self._open.values(),
                                                     self._open_extra)))
        return self._current_cache

    def visible_during(self, period: Period) -> Relation:
        """Every tuple that was in *some* state during the period.

        This backs TQuel's ``as of t1 through t2``: the union of the
        rollback states over the transaction-time range.
        """
        return Relation(self._schema,
                        (row.data for row in self._iter_rows()
                         if row.tt.overlaps(period)))

    def storage_cells(self) -> int:
        """Stored cells: tuples × (attributes + 2 timestamps).  For benches."""
        return len(self) * (len(self._schema) + 2)

    def pretty(self, title: Optional[str] = None) -> str:
        """Render like Figure 4: data columns ‖ transaction (start, end)."""
        from repro.tquel.printer import render_rollback  # local: avoid cycle
        return render_rollback(self, title)

    def __len__(self) -> int:
        return self._closed_len + len(self._open) + len(self._open_extra)

    def __repr__(self) -> str:
        return (f"RollbackRelation({', '.join(self._schema.names)}; "
                f"{len(self)} timestamped rows)")


class StateSequence:
    """The conceptual cube (Figure 3): one full static relation per transaction."""

    __slots__ = ("_schema", "_times", "_states")

    def __init__(self, schema: Schema,
                 states: Iterable[PyTuple[Instant, Relation]] = ()) -> None:
        self._schema = schema
        pairs = list(states)
        self._times: List[Instant] = [time for time, _ in pairs]
        self._states: List[Relation] = [state for _, state in pairs]

    @property
    def schema(self) -> Schema:
        """The explicit (non-temporal) schema."""
        return self._schema

    @property
    def states(self) -> PyTuple[PyTuple[Instant, Relation], ...]:
        """Every ``(commit time, static relation)`` pair, oldest first."""
        return tuple(zip(self._times, self._states))

    def rollback(self, as_of: InstantLike) -> Relation:
        """The newest state with commit time ≤ *as_of* (empty before the first)."""
        when = _coerce(as_of)
        position = bisect.bisect_right(self._times, when)
        if position == 0:
            return Relation.empty(self._schema)
        return self._states[position - 1]

    def current(self) -> Relation:
        """The most recent state."""
        if not self._states:
            return Relation.empty(self._schema)
        return self._states[-1]

    def visible_during(self, period: Period) -> Relation:
        """Every tuple present in some state during the period.

        A state stamped at commit ``c_i`` is in force over
        ``[c_i, c_{i+1})`` (the last one to ∞); the union of states whose
        in-force interval overlaps *period* is returned.  Equivalent to
        :meth:`RollbackRelation.visible_during` (property-tested).
        """
        union = Relation.empty(self._schema)
        for index, (commit, state) in enumerate(zip(self._times, self._states)):
            next_commit = (self._times[index + 1]
                           if index + 1 < len(self._times) else POS_INF)
            in_force = Period(commit, next_commit)
            if in_force.overlaps(period):
                union = union.union(state)
        return union

    def storage_cells(self) -> int:
        """Stored cells across all duplicated states.  For benches."""
        return sum(len(state) * len(self._schema) for state in self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return (f"StateSequence({', '.join(self._schema.names)}; "
                f"{len(self._states)} states)")


#: Representation selector for :class:`RollbackDatabase`.
INTERVAL = "interval"
STATES = "states"

_Store = Dict[str, Any]  # name -> RollbackRelation | StateSequence


class RollbackDatabase(Database):
    """The static rollback database: transaction time, append-only.

    ``representation`` selects between the practical interval-stamped store
    (:data:`INTERVAL`, the default) and the duplicating cube
    (:data:`STATES`).  The two answer every query identically.
    """

    kind = DatabaseKind.STATIC_ROLLBACK

    def __init__(self, clock=None, representation: str = INTERVAL,
                 index: bool = True) -> None:
        if representation not in (INTERVAL, STATES):
            raise ValueError(
                f"representation must be {INTERVAL!r} or {STATES!r}"
            )
        super().__init__(clock, index=index)
        self._representation = representation
        self._store: _Store = {}

    @property
    def representation(self) -> str:
        """Which physical representation this database uses."""
        return self._representation

    # -- DML API (identical to the static database: updates hit the newest state) --

    def insert(self, name: str, values: Mapping[str, Any],
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Insert into the current state; the old state remains retrievable."""
        checked = self._checked_values(name, values)
        return self._submit(Operation("insert", name, {"values": checked}), txn)

    def delete(self, name: str, match: Optional[Mapping[str, Any]] = None,
               txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Delete from the current state (past states keep the tuples)."""
        checked = self._checked_match(name, match or {})
        return self._submit(Operation("delete", name, {"match": checked}), txn)

    def replace(self, name: str, match: Mapping[str, Any],
                updates: Mapping[str, Any],
                txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Replace in the current state (recorded as delete + insert in time)."""
        checked_match = self._checked_match(name, match)
        checked_updates = self._checked_match(name, updates)
        return self._submit(
            Operation("replace", name,
                      {"match": checked_match, "updates": checked_updates}),
            txn)

    def delete_where(self, name: str, predicate: Predicate,
                     txn: Optional[Transaction] = None) -> Optional[Instant]:
        """Delete by predicate, resolved now against the current state."""
        matched = self.snapshot(name).select(predicate)
        if txn is not None:
            for row in matched:
                self.delete(name, dict(row), txn=txn)
            return None
        with self.begin() as batch:
            for row in matched:
                self.delete(name, dict(row), txn=batch)
        return batch.commit_time

    # -- queries ------------------------------------------------------------------------

    def snapshot(self, name: str) -> Relation:
        """The current static state."""
        self._require_defined(name)
        return self._store[name].current()

    def rollback(self, name: str, as_of: InstantLike) -> Relation:
        """The static relation as of a past transaction time.

        The result is "a pure static relation" (§4.2): it can be queried
        with the ordinary algebra but carries no temporal columns.
        """
        self.require_rollback("rollback")
        self._require_defined(name)
        cache = self.index_cache
        if cache is not None and isinstance(self._store[name],
                                            RollbackRelation):
            return cache.rollback(name).rollback(as_of)
        return self._store[name].rollback(as_of)

    def rollback_range(self, name: str, from_: InstantLike,
                       through: InstantLike) -> Relation:
        """Tuples in any state over the inclusive transaction-time range.

        TQuel's ``as of t1 through t2``: the union of every rollback state
        between the two instants.
        """
        self.require_rollback("rollback")
        self._require_defined(name)
        period = Period.from_inclusive(_coerce(from_), _coerce(through))
        cache = self.index_cache
        if cache is not None and isinstance(self._store[name],
                                            RollbackRelation):
            return cache.rollback(name).visible_during(period)
        return self._store[name].visible_during(period)

    def store(self, name: str):
        """The underlying representation object (for display and benches)."""
        self._require_defined(name)
        return self._store[name]

    # -- applier hooks ----------------------------------------------------------------------

    def _stage(self) -> Dict[str, Any]:
        # Stage as {name: (current Relation, base store)}; reassembled on install.
        return {"store": dict(self._store), "currents": {}, "touched": set()}

    def _current_of(self, staged: Dict[str, Any], name: str) -> Relation:
        if name not in staged["currents"]:
            staged["currents"][name] = staged["store"][name].current()
        return staged["currents"][name]

    def _set_current(self, staged: Dict[str, Any], name: str,
                     relation: Relation) -> None:
        staged["currents"][name] = relation
        staged["touched"].add(name)

    def _install(self, staged: Dict[str, Any]) -> None:
        # Constraint-check every touched new state first (abort-safe), then
        # append the new states to the history.
        for name in staged["touched"]:
            if name in self._schemas:
                self._check_state(name, staged["currents"][name])
        self._store = staged["store"]

    def _check_state(self, name: str, relation: Relation) -> None:
        declared = list(self._constraints[name])
        if self._schemas[name].key:
            declared.append(KeyConstraint(self._schemas[name].key))
        check_all(relation, declared)

    def _create_store(self, staged: Dict[str, Any], name: str,
                      schema: Schema) -> None:
        if self._representation == INTERVAL:
            staged["store"][name] = RollbackRelation(schema)
        else:
            staged["store"][name] = StateSequence(schema)

    def _drop_store(self, staged: Dict[str, Any], name: str) -> None:
        staged["store"].pop(name, None)
        staged["currents"].pop(name, None)
        staged["touched"].discard(name)

    def _apply_dml(self, staged: Dict[str, Any], op: Operation,
                   commit_time: Instant) -> None:
        if op.relation not in staged["store"]:
            raise UnknownRelationError(f"no relation {op.relation!r}")
        current = self._current_of(staged, op.relation)
        schema = current.schema
        if op.action == "insert":
            new = current.with_tuple(Tuple(schema, op.arguments["values"]))
        elif op.action == "delete":
            match = op.arguments["match"]
            new = current.select(lambda row: not self._matches(row, match))
        elif op.action == "replace":
            match = op.arguments["match"]
            updates = op.arguments["updates"]
            new = Relation(schema, (
                row.replace(**updates) if self._matches(row, match) else row
                for row in current
            ))
        else:
            raise JournalError(
                f"rollback databases do not understand {op.action!r}"
            )
        self._set_current(staged, op.relation, new)
        # Fold the new current state into the staged store immediately so a
        # later op in the same transaction sees it; the commit time stamps
        # the whole batch.
        staged["store"][op.relation] = self._advance(
            staged["store"][op.relation], new, commit_time)

    def _advance(self, store, new_current: Relation, commit_time: Instant):
        """Record *new_current* as the state from *commit_time* on.

        Interval representation: close the open rows that vanished from
        the state, open rows for the tuples that appeared — O(current
        state + Δ) against the open partition, never re-reading the
        closed past (see :func:`naive_rollback_advance` for the original
        whole-relation walk, kept as the executable specification).
        """
        if isinstance(store, StateSequence):
            states = [pair for pair in store.states if pair[0] < commit_time]
            states.append((commit_time, new_current))
            return StateSequence(store.schema, states)
        metrics = _obs.current().metrics
        if store._open_extra:
            metrics.counter("commit.fallback_naive").inc()
            return naive_rollback_advance(store, new_current, commit_time)
        new_set = set(new_current.tuples)
        closed_log = store._closed_log
        if len(closed_log) != store._closed_len:
            # A sibling version extended the shared log (an aborted
            # commit): diverge onto a private copy.
            closed_log = closed_log[:store._closed_len]
        closed_before = len(closed_log)
        old_open = store._open
        new_open: Dict[Tuple, TransactionTimeRow] = {}
        for data, row in old_open.items():
            if data in new_set:
                new_open[data] = row  # survives this transaction
            elif row.tt.start == commit_time:
                continue  # opened and removed within one transaction
            else:
                closed_log.append(TransactionTimeRow(
                    data, Period(row.tt.start, commit_time)))
        opened = 0
        for data in new_current.tuples:
            if data not in old_open:
                new_open[data] = TransactionTimeRow(
                    data, Period(commit_time, POS_INF))
                opened += 1
        metrics.counter("commit.rows_closed").inc(
            len(closed_log) - closed_before)
        metrics.counter("commit.rows_opened").inc(opened)
        return RollbackRelation._from_parts(store.schema, closed_log,
                                            len(closed_log), new_open,
                                            store._lineage)


def naive_rollback_advance(store: RollbackRelation, new_current: Relation,
                           commit_time: Instant) -> RollbackRelation:
    """The original whole-relation advance: O(n) per commit.

    The reference the incremental :meth:`RollbackDatabase._advance` is
    property-tested against, and the fallback for non-canonical values
    (duplicate open tuples in a derived relation).
    """
    rows: List[TransactionTimeRow] = []
    new_set = set(new_current.tuples)
    carried = set()
    for row in store.rows:
        if not row.tt.end.is_pos_inf:
            rows.append(row)
            continue
        if row.data in new_set:
            rows.append(row)
            carried.add(row.data)
        else:
            if row.tt.start == commit_time:
                continue  # opened and removed within one transaction
            rows.append(TransactionTimeRow(
                row.data, Period(row.tt.start, commit_time)))
    for data in new_current.tuples:
        if data not in carried and not any(
                r.data == data and r.tt.end.is_pos_inf for r in rows):
            rows.append(TransactionTimeRow(data, Period(commit_time, POS_INF)))
    return RollbackRelation(store.schema, rows)
