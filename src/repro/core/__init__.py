"""The paper's contribution: three kinds of time, four kinds of database.

This package implements Section 4 of *A Taxonomy of Time in Databases*:

- :mod:`~repro.core.taxonomy` — the classification itself (Figures 1 and
  10–13 as executable data);
- :mod:`~repro.core.static` — static databases (§4.1);
- :mod:`~repro.core.rollback` — static rollback databases with both the
  state-cube and interval-stamped representations (§4.2, Figures 3–4);
- :mod:`~repro.core.historical` — historical databases and the
  :class:`~repro.core.historical.HistoricalRelation` value type (§4.3,
  Figures 5–6);
- :mod:`~repro.core.temporal` — temporal (bitemporal) databases as
  sequences of historical states (§4.4, Figures 7–8);
- :mod:`~repro.core.operations` — temporal joins, snapshot equivalence,
  representation equivalence;
- :mod:`~repro.core.vacuum` — the controlled forget-the-past extension.

User-defined time (§4.5, Figure 9) needs no dedicated class: it is an
ordinary schema attribute over
:meth:`repro.relational.domain.Domain.user_defined_time`, and event
relations are declared with ``define(..., event=True)``.
"""

from repro.core.taxonomy import (
    DatabaseKind, Models, TimeKind, classify,
    FIGURE_1, FIGURE_13, PriorTerm, SurveyedSystem,
    render_figure_1, render_figure_10, render_figure_11, render_figure_12,
    render_figure_13,
)
from repro.core.base import Database
from repro.core.static import StaticDatabase
from repro.core.rollback import (
    INTERVAL, STATES, RollbackDatabase, RollbackRelation, StateSequence,
    TransactionTimeRow, naive_rollback_advance,
)
from repro.core.historical import (
    HistoricalDatabase, HistoricalRelation, HistoricalRow,
    apply_historical_operation,
)
from repro.core.temporal import (BitemporalRow, TemporalDatabase,
                                 TemporalRelation, naive_advance)
from repro.core.operations import (
    changed_instants, diff_states, history_series, rollback_equivalent,
    snapshot_equivalent, temporal_timeslice_matrix, when_join,
)
from repro.core.vacuum import vacuum_rollback, vacuum_states, vacuum_temporal
from repro.core.indexing import (
    BitemporalIndex, DatabaseIndexCache, HistoricalIndex, IntervalTree,
    RollbackIndex,
)
from repro.core.migrate import migrate
from repro.core.temporal_constraints import (
    BoundedValidity, ContiguousHistory, NoFutureValidity, TemporalConstraint,
    ValidityDuration,
)

__all__ = [
    "BitemporalIndex",
    "BitemporalRow",
    "BoundedValidity",
    "ContiguousHistory",
    "NoFutureValidity",
    "TemporalConstraint",
    "ValidityDuration",
    "Database",
    "DatabaseIndexCache",
    "HistoricalIndex",
    "IntervalTree",
    "RollbackIndex",
    "DatabaseKind",
    "FIGURE_1",
    "FIGURE_13",
    "HistoricalDatabase",
    "HistoricalRelation",
    "HistoricalRow",
    "INTERVAL",
    "Models",
    "PriorTerm",
    "RollbackDatabase",
    "RollbackRelation",
    "STATES",
    "StateSequence",
    "StaticDatabase",
    "SurveyedSystem",
    "TemporalDatabase",
    "TemporalRelation",
    "TimeKind",
    "TransactionTimeRow",
    "apply_historical_operation",
    "changed_instants",
    "classify",
    "diff_states",
    "history_series",
    "migrate",
    "naive_advance",
    "naive_rollback_advance",
    "render_figure_1",
    "render_figure_10",
    "render_figure_11",
    "render_figure_12",
    "render_figure_13",
    "rollback_equivalent",
    "snapshot_equivalent",
    "temporal_timeslice_matrix",
    "vacuum_rollback",
    "vacuum_states",
    "vacuum_temporal",
    "when_join",
]
