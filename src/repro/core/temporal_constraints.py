"""Temporal integrity constraints: rules over valid time itself.

Ordinary constraints (:mod:`repro.relational.constraints`) see a relation
of data tuples.  Temporal applications also need rules about *validity*:

- :class:`ContiguousHistory` — per key, the recorded validity must form
  one gap-free block ("an employee has exactly one salary at every moment
  between hire and termination; no accidental uncovered days");
- :class:`NoFutureValidity` — facts may not claim validity beyond the
  current instant plus a horizon (some shops forbid postactive recording
  entirely, horizon 0; the paper's examples obviously allow it — this is
  opt-in policy, not taxonomy);
- :class:`BoundedValidity` — all validity must fall inside a window
  (e.g. nothing before the company existed);
- :class:`ValidityDuration` — per fact, validity pieces must respect a
  minimum/maximum duration (e.g. contracts run at least a full day).

These are :class:`TemporalConstraint` subclasses; historical and temporal
databases check them — against the *current* historical state — on every
commit, alongside the sequenced key.  Declare them in ``define(...,
constraints=[...])`` next to ordinary constraints; the kinds route each
constraint to the right checker.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.core.historical import HistoricalRelation
from repro.errors import ConstraintViolation
from repro.time.element import TemporalElement
from repro.time.instant import Instant
from repro.time.period import Period


class TemporalConstraint(abc.ABC):
    """A named integrity rule over a historical state's valid times."""

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def check_history(self, relation: HistoricalRelation,
                      now: Instant) -> None:
        """Raise :class:`ConstraintViolation` if the state breaks the rule."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ContiguousHistory(TemporalConstraint):
    """Per key, validity must be one gap-free block.

    A key may be absent entirely, but once present its total validity
    (union over all its facts) must coalesce to a single period — no
    holes.  Value *changes* are fine; uncovered instants between them are
    not.
    """

    def __init__(self, key: Sequence[str], name: str = "") -> None:
        self.key = tuple(key)
        super().__init__(name or f"contiguous({', '.join(self.key)})")

    def check_history(self, relation: HistoricalRelation,
                      now: Instant) -> None:
        coverage: Dict[PyTuple, TemporalElement] = {}
        for row in relation.rows:
            key_value = tuple(row.data[attribute] for attribute in self.key)
            element = coverage.get(key_value, TemporalElement.empty())
            coverage[key_value] = element | row.valid
        for key_value, element in coverage.items():
            if len(element.periods) > 1:
                gaps = element.complement().intersect(element.span())
                raise ConstraintViolation(
                    f"{self.name}: key {key_value!r} has gaps in its "
                    f"history at {gaps}"
                )


class NoFutureValidity(TemporalConstraint):
    """Validity may not start more than *horizon* chronons after now.

    ``horizon=0`` forbids postactive recording outright; a positive
    horizon allows scheduling that far ahead.  (Open-ended ``to ∞`` facts
    are fine — the rule constrains when a fact may *begin*.)
    """

    def __init__(self, horizon: int = 0, name: str = "") -> None:
        self.horizon = horizon
        super().__init__(name or f"no_future_validity(+{horizon})")

    def check_history(self, relation: HistoricalRelation,
                      now: Instant) -> None:
        limit = now + self.horizon
        for row in relation.rows:
            if row.valid.start.is_finite and row.valid.start > limit:
                raise ConstraintViolation(
                    f"{self.name}: fact {dict(row.data)!r} claims validity "
                    f"from {row.valid.start}, beyond the horizon {limit}"
                )


class BoundedValidity(TemporalConstraint):
    """All validity must lie inside a fixed window."""

    def __init__(self, bounds: Period, name: str = "") -> None:
        self.bounds = bounds
        super().__init__(name or f"bounded_validity({bounds})")

    def check_history(self, relation: HistoricalRelation,
                      now: Instant) -> None:
        for row in relation.rows:
            if not self.bounds.contains_period(row.valid):
                raise ConstraintViolation(
                    f"{self.name}: fact {dict(row.data)!r} valid "
                    f"{row.valid} escapes the window {self.bounds}"
                )


class ValidityDuration(TemporalConstraint):
    """Each validity piece must last between *at_least* and *at_most* chronons.

    Open-ended pieces satisfy any maximum (they may still be cut short
    later) and any minimum (they are unbounded).
    """

    def __init__(self, at_least: Optional[int] = None,
                 at_most: Optional[int] = None, name: str = "") -> None:
        if at_least is None and at_most is None:
            raise ValueError("give at_least and/or at_most")
        self.at_least = at_least
        self.at_most = at_most
        super().__init__(
            name or f"duration(min={at_least}, max={at_most})")

    def check_history(self, relation: HistoricalRelation,
                      now: Instant) -> None:
        for row in relation.coalesce().rows:
            length = row.valid.duration()
            if length is None:
                continue
            if self.at_least is not None and length < self.at_least:
                raise ConstraintViolation(
                    f"{self.name}: fact {dict(row.data)!r} valid for only "
                    f"{length} chronons ({row.valid})"
                )
            if self.at_most is not None and length > self.at_most:
                raise ConstraintViolation(
                    f"{self.name}: fact {dict(row.data)!r} valid for "
                    f"{length} chronons ({row.valid}), over the maximum"
                )


def check_temporal_constraints(relation: HistoricalRelation,
                               constraints: Sequence, now: Instant) -> None:
    """Apply every :class:`TemporalConstraint` in *constraints*."""
    for constraint in constraints:
        if isinstance(constraint, TemporalConstraint):
            constraint.check_history(relation, now)
