"""Columnar chunks over the temporal stores: the vectorized access path.

The taxonomy makes the closed (transaction-time) partition of a rollback
or temporal relation append-only and immutable, so a *columnar* layout
over it is safe by construction: per-attribute value arrays plus packed
period columns (``valid start/end``, ``transaction start/end``) can be
built once per relation version and reused until the next commit.

This module provides:

- :class:`ColumnarChunk` — one relation version decomposed into packed
  float time columns (chronons, with unbounded endpoints mapped onto IEEE
  infinities exactly like :mod:`repro.core.indexing`) and lazily
  materialized per-attribute value columns.  The mask kernels —
  visibility stab, transaction-time overlap, valid-time ``when``
  comparison, attribute comparison — each owe strict result equivalence
  to the naive row-at-a-time scan they replace; the differential suite
  (``tests/tquel/test_differential.py``) and the kernel unit tests
  enforce it.
- :class:`ColumnarCache` — fresh-by-construction chunk cache for a live
  database, one slot per relation stamped with the relation *version*
  (the :class:`~repro.core.indexing.DatabaseIndexCache` pattern).  When
  successive relation versions share a storage lineage, the closed-prefix
  columns are *extended* instead of rebuilt: a commit re-packs only the
  new closed rows and the open partition, never the closed past.

NumPy is optional.  When importable, the time columns are ``float64``
ndarrays and the kernels are true vector operations; otherwise the same
columns are plain Python lists and the kernels are tight comprehension
loops over floats (still several times faster than evaluating
``Period``/``Instant`` objects per row).  CI runs without NumPy, so every
kernel has both shapes and the tests exercise both.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple as PyTuple

try:  # optional accelerator; the GitHub CI image has no numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

from repro.core.historical import HistoricalRelation
from repro.core.rollback import RollbackRelation
from repro.core.temporal import TemporalRelation
from repro.obs import runtime as _obs
from repro.relational.expression import _COMPARATORS
from repro.errors import ExpressionError
from repro.time.chronon import require_same_granularity
from repro.time.instant import Instant
from repro.time.period import Period

__all__ = ["ColumnarChunk", "ColumnarCache", "numpy_available"]

_NEG = -math.inf
_POS = math.inf


def numpy_available() -> bool:
    """True when the vectorized (ndarray) kernel shapes are in use."""
    return _np is not None


def _lo(period: Period) -> float:
    return period.start.chronon if period.start.is_finite else _NEG


def _hi(period: Period) -> float:
    """Exclusive upper bound as a number."""
    return period.end.chronon if period.end.is_finite else _POS


def _point(when: Instant) -> float:
    if when.is_finite:
        return float(when.chronon)
    return _POS if when.is_pos_inf else _NEG


class _Axis:
    """One packed period column pair (starts, exclusive ends).

    ``starts``/``ends`` are parallel float sequences — ndarrays when NumPy
    is importable, plain lists otherwise.  The granularity of the first
    finite endpoint is remembered and every probe is checked against it,
    mirroring what the per-row ``Instant`` comparisons of the naive scan
    would have enforced.
    """

    __slots__ = ("starts", "ends", "granularity")

    def __init__(self, starts: List[float], ends: List[float],
                 granularity) -> None:
        if _np is not None:
            self.starts: Any = _np.asarray(starts, dtype=_np.float64)
            self.ends: Any = _np.asarray(ends, dtype=_np.float64)
        else:
            self.starts = starts
            self.ends = ends
        self.granularity = granularity

    @classmethod
    def pack(cls, rows: Sequence[Any],
             period_of: Callable[[Any], Period]) -> "_Axis":
        starts: List[float] = []
        ends: List[float] = []
        granularity = None
        for row in rows:
            period = period_of(row)
            start, end = period.start, period.end
            starts.append(start.chronon if start.is_finite else _NEG)
            ends.append(end.chronon if end.is_finite else _POS)
            if granularity is None:
                if start.is_finite:
                    granularity = start.granularity
                elif end.is_finite:
                    granularity = end.granularity
        return cls(starts, ends, granularity)

    def extended(self, new_rows: Sequence[Any],
                 period_of: Callable[[Any], Period],
                 keep: int) -> "_Axis":
        """A fresh axis reusing the first *keep* packed endpoints.

        Only *new_rows* are walked as Python objects; the kept prefix is
        copied as raw floats (a memcpy under NumPy, a pointer-slice
        otherwise).  This is what makes chunk upkeep O(Δ + open) per
        commit instead of O(history).
        """
        tail = _Axis.pack(new_rows, period_of)
        granularity = self.granularity or tail.granularity
        fresh = _Axis.__new__(_Axis)
        fresh.granularity = granularity
        if _np is not None:
            fresh.starts = _np.concatenate((self.starts[:keep], tail.starts))
            fresh.ends = _np.concatenate((self.ends[:keep], tail.ends))
        else:
            fresh.starts = self.starts[:keep] + tail.starts
            fresh.ends = self.ends[:keep] + tail.ends
        return fresh

    def check_instant(self, when: Instant, what: str) -> None:
        if when.is_finite and self.granularity is not None:
            require_same_granularity(when.granularity, self.granularity, what)


#: ``when``-comparison formulas over half-open periods, variable on the
#: LEFT: row period ``P = [vs, ve)`` against constant ``C = [lo, hi)``.
#: Each lambda is the float transliteration of the corresponding
#: :class:`~repro.time.period.Period` predicate (or its derivation in
#: :func:`repro.tquel.evaluator.eval_temporal_predicate`) — the
#: equivalence the differential tests enforce.
_WHEN_LEFT: Dict[str, Callable[[float, float, float, float], bool]] = {
    # P.overlaps(C): vs < hi and lo < ve
    "overlap": lambda vs, ve, lo, hi: vs < hi and lo < ve,
    # P.precedes(C): ve <= lo
    "precede": lambda vs, ve, lo, hi: ve <= lo,
    # P == C
    "equal": lambda vs, ve, lo, hi: vs == lo and ve == hi,
    # P.meets(C): ve == lo
    "meets": lambda vs, ve, lo, hi: ve == lo,
    # before = precedes and not meets: ve < lo  (half-open, so strict)
    "before": lambda vs, ve, lo, hi: ve < lo,
    # after = C precedes P and not C meets P: hi < vs
    "after": lambda vs, ve, lo, hi: hi < vs,
    # during = C.contains_period(P): lo <= vs and ve <= hi
    "during": lambda vs, ve, lo, hi: lo <= vs and ve <= hi,
    # starts = during and same start
    "starts": lambda vs, ve, lo, hi: vs == lo and ve <= hi,
    # finishes = during and same end
    "finishes": lambda vs, ve, lo, hi: lo <= vs and ve == hi,
}

#: Same formulas with the variable on the RIGHT: constant ``C = [lo, hi)``
#: compared against row period ``P = [vs, ve)``.
_WHEN_RIGHT: Dict[str, Callable[[float, float, float, float], bool]] = {
    "overlap": lambda vs, ve, lo, hi: lo < ve and vs < hi,
    "precede": lambda vs, ve, lo, hi: hi <= vs,
    "equal": lambda vs, ve, lo, hi: vs == lo and ve == hi,
    "meets": lambda vs, ve, lo, hi: hi == vs,
    "before": lambda vs, ve, lo, hi: hi < vs,
    "after": lambda vs, ve, lo, hi: ve < lo,
    "during": lambda vs, ve, lo, hi: vs <= lo and hi <= ve,
    "starts": lambda vs, ve, lo, hi: lo == vs and hi <= ve,
    "finishes": lambda vs, ve, lo, hi: vs <= lo and hi == ve,
}


def _vector_when(op: str, vs: Any, ve: Any, lo: float, hi: float,
                 var_on_left: bool) -> Any:
    """The ndarray shape of the ``when`` kernels (NumPy present only)."""
    if var_on_left:
        if op == "overlap":
            return (vs < hi) & (lo < ve)
        if op == "precede":
            return ve <= lo
        if op == "equal":
            return (vs == lo) & (ve == hi)
        if op == "meets":
            return ve == lo
        if op == "before":
            return ve < lo
        if op == "after":
            return vs > hi
        if op == "during":
            return (lo <= vs) & (ve <= hi)
        if op == "starts":
            return (vs == lo) & (ve <= hi)
        if op == "finishes":
            return (lo <= vs) & (ve == hi)
    else:
        if op == "overlap":
            return (lo < ve) & (vs < hi)
        if op == "precede":
            return vs >= hi
        if op == "equal":
            return (vs == lo) & (ve == hi)
        if op == "meets":
            return vs == hi
        if op == "before":
            return vs > hi
        if op == "after":
            return ve < lo
        if op == "during":
            return (vs <= lo) & (hi <= ve)
        if op == "starts":
            return (lo == vs) & (hi <= ve)
        if op == "finishes":
            return (vs <= lo) & (hi == ve)
    raise KeyError(op)


class ColumnarChunk:
    """One relation version in columnar form.

    ``rows`` keeps the original row objects (``BitemporalRow`` /
    ``HistoricalRow`` / ``TransactionTimeRow``) in store order — closed
    partition first — so a mask over the columns selects rows by
    position.  ``valid`` / ``tt`` are the packed period axes; either may
    be ``None`` when the database kind lacks that time axis.  Attribute
    value columns are materialized lazily per attribute and memoized for
    the chunk's lifetime (one relation version).

    Every kernel must return exactly the rows the corresponding naive
    predicate scan selects — no more, no fewer, in store order.
    """

    __slots__ = ("schema", "rows", "closed_len", "valid", "tt", "_columns",
                 "_lineage")

    def __init__(self, schema, rows: PyTuple[Any, ...], closed_len: int,
                 valid: Optional[_Axis], tt: Optional[_Axis],
                 lineage: object = None) -> None:
        self.schema = schema
        self.rows = rows
        #: How many leading rows came from the append-only closed log
        #: (reusable on extension); 0 when the source has no partition.
        self.closed_len = closed_len
        self.valid = valid
        self.tt = tt
        #: The source store's lineage token; extension is offered only to
        #: versions sharing it (so a drop/redefine always rebuilds).
        self._lineage = lineage
        self._columns: Dict[str, List[Any]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_temporal(cls, relation: TemporalRelation) -> "ColumnarChunk":
        rows = relation.rows
        closed = 0 if relation._open_extra else relation._closed_len
        return cls(relation.schema, rows, closed,
                   _Axis.pack(rows, lambda r: r.valid),
                   _Axis.pack(rows, lambda r: r.tt),
                   lineage=None if relation._open_extra
                   else relation._lineage)

    @classmethod
    def from_rollback(cls, relation: RollbackRelation) -> "ColumnarChunk":
        rows = relation.rows
        closed = 0 if relation._open_extra else relation._closed_len
        return cls(relation.schema, rows, closed,
                   None, _Axis.pack(rows, lambda r: r.tt),
                   lineage=None if relation._open_extra
                   else relation._lineage)

    @classmethod
    def from_historical(cls, relation: HistoricalRelation) -> "ColumnarChunk":
        rows = relation.rows
        return cls(relation.schema, rows, 0,
                   _Axis.pack(rows, lambda r: r.valid), None)

    # -- masks -----------------------------------------------------------------

    def _full(self) -> Any:
        if _np is not None:
            return _np.ones(len(self.rows), dtype=bool)
        return [True] * len(self.rows)

    def all_mask(self) -> Any:
        """Every row (the no-predicate mask)."""
        return self._full()

    def tt_stab_mask(self, when: Instant) -> Any:
        """Rows whose transaction time contains *when*.

        Equivalent to ``row.tt.contains(when)`` / ``row.visible_at(when)``
        per row.
        """
        axis = self.tt
        assert axis is not None
        axis.check_instant(when, "stab a columnar chunk")
        t = _point(when)
        if _np is not None:
            return (axis.starts <= t) & (t < axis.ends)
        return [s <= t < e for s, e in zip(axis.starts, axis.ends)]

    def tt_overlap_mask(self, period: Period) -> Any:
        """Rows whose transaction time overlaps *period*.

        Equivalent to ``row.tt.overlaps(period)`` per row.
        """
        axis = self.tt
        assert axis is not None
        axis.check_instant(period.start, "probe a columnar chunk")
        axis.check_instant(period.end, "probe a columnar chunk")
        lo, hi = _lo(period), _hi(period)
        if _np is not None:
            return (axis.starts < hi) & (axis.ends > lo)
        return [s < hi and e > lo
                for s, e in zip(axis.starts, axis.ends)]

    def valid_stab_mask(self, when: Instant) -> Any:
        """Rows whose valid time contains *when* (the timeslice kernel)."""
        axis = self.valid
        assert axis is not None
        axis.check_instant(when, "timeslice a columnar chunk")
        t = _point(when)
        if _np is not None:
            return (axis.starts <= t) & (t < axis.ends)
        return [s <= t < e for s, e in zip(axis.starts, axis.ends)]

    def when_mask(self, op: str, constant: Period, var_on_left: bool) -> Any:
        """Rows whose valid period satisfies ``P <op> C`` (or ``C <op> P``).

        *op* is one of the TQuel temporal comparison operators
        (``overlap``/``precede``/``equal``/``meets`` plus the derived
        ``before``/``after``/``during``/``starts``/``finishes``).  Must agree
        row-for-row with
        :func:`repro.tquel.evaluator.eval_temporal_predicate` applied to
        each candidate's derived valid period against the constant.
        """
        axis = self.valid
        assert axis is not None
        axis.check_instant(constant.start, "compare against a columnar chunk")
        axis.check_instant(constant.end, "compare against a columnar chunk")
        lo, hi = _lo(constant), _hi(constant)
        if _np is not None:
            return _vector_when(op, axis.starts, axis.ends, lo, hi,
                                var_on_left)
        formula = (_WHEN_LEFT if var_on_left else _WHEN_RIGHT)[op]
        return [formula(vs, ve, lo, hi)
                for vs, ve in zip(axis.starts, axis.ends)]

    # -- value columns and comparison pushdown ---------------------------------

    def column(self, name: str) -> List[Any]:
        """The values of attribute *name*, one per row, memoized."""
        col = self._columns.get(name)
        if col is None:
            index = self.schema.names.index(name)
            col = [row.data.values[index] for row in self.rows]
            self._columns[name] = col
        return col

    def compare_mask(self, name: str, op: str, value: Any,
                     attr_on_left: bool) -> Any:
        """Rows whose attribute satisfies the comparison.

        Preserves :class:`~repro.relational.expression.Comparison`
        semantics exactly: a ``None`` on either side is false, and an
        untypable comparison raises :class:`ExpressionError` with the
        message the per-row evaluation would have produced.
        """
        comparator = _COMPARATORS[op]
        column = self.column(name)
        if value is None:
            mask = [False] * len(column)
        else:
            try:
                if attr_on_left:
                    mask = [False if item is None else comparator(item, value)
                            for item in column]
                else:
                    mask = [False if item is None else comparator(value, item)
                            for item in column]
            except TypeError as exc:
                # Re-raise with the exact message Comparison.evaluate uses,
                # identifying the offending operands.
                for item in column:
                    if item is None:
                        continue
                    left, right = (item, value) if attr_on_left \
                        else (value, item)
                    try:
                        comparator(left, right)
                    except TypeError:
                        raise ExpressionError(
                            f"cannot compare {left!r} {op} {right!r}"
                        ) from exc
                raise  # pragma: no cover - defensive; loop always re-raises
        if _np is not None:
            return _np.asarray(mask, dtype=bool)
        return mask

    def compare_select(self, indices: Sequence[int], name: str, op: str,
                       value: Any, attr_on_left: bool) -> List[int]:
        """Filter *indices* by an attribute comparison, in order.

        The restriction to an index list (rather than a full-column mask)
        keeps the equivalence obligation exact: only rows the naive path
        would have *reached* are compared, so an untypable value in a row
        the temporal clauses exclude raises in neither path.  ``None``
        semantics and the :class:`ExpressionError` message match
        :meth:`repro.relational.expression.Comparison.evaluate` verbatim.
        """
        comparator = _COMPARATORS[op]
        column = self.column(name)
        if value is None:
            return []
        out: List[int] = []
        for i in indices:
            item = column[i]
            if item is None:
                continue
            left, right = (item, value) if attr_on_left else (value, item)
            try:
                ok = comparator(left, right)
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot compare {left!r} {op} {right!r}"
                ) from exc
            if ok:
                out.append(i)
        return out

    def mask_indices(self, mask: Any) -> List[int]:
        """The selected row positions, ascending."""
        if _np is not None:
            return _np.flatnonzero(mask).tolist()
        return [i for i, keep in enumerate(mask) if keep]

    # -- mask algebra ----------------------------------------------------------

    @staticmethod
    def mask_and(left: Any, right: Any) -> Any:
        if _np is not None:
            return left & right
        return [a and b for a, b in zip(left, right)]

    @staticmethod
    def count(mask: Any) -> int:
        if _np is not None:
            return int(mask.sum())
        return sum(mask)

    def take(self, mask: Any) -> List[Any]:
        """The selected row objects, in store order."""
        rows = self.rows
        if _np is not None:
            return [rows[i] for i in _np.flatnonzero(mask)]
        return [row for row, keep in zip(rows, mask) if keep]

    # -- extension -------------------------------------------------------------

    def extended_temporal(self, relation: TemporalRelation
                          ) -> Optional["ColumnarChunk"]:
        """A chunk over a newer version, reusing the closed-prefix columns."""
        return self._extended(relation, lambda r: r.valid, lambda r: r.tt)

    def extended_rollback(self, relation: RollbackRelation
                          ) -> Optional["ColumnarChunk"]:
        """A chunk over a newer version, reusing the closed-prefix columns."""
        return self._extended(relation, None, lambda r: r.tt)

    def _extended(self, relation, valid_of, tt_of) -> Optional["ColumnarChunk"]:
        if (self._lineage is None
                or relation._lineage is not self._lineage
                or relation._open_extra
                or relation._closed_len < self.closed_len):
            return None  # unrelated values (drop/redefine): rebuild
        new_closed = tuple(relation._closed_log[
            self.closed_len:relation._closed_len])
        open_rows = tuple(relation._open.values())
        appended = new_closed + open_rows
        rows = self.rows[:self.closed_len] + appended
        valid = None if valid_of is None else \
            self.valid.extended(appended, valid_of, self.closed_len)
        tt = None if tt_of is None else \
            self.tt.extended(appended, tt_of, self.closed_len)
        return ColumnarChunk(relation.schema, rows, relation._closed_len,
                             valid, tt, lineage=relation._lineage)


class ColumnarCache:
    """Fresh-by-construction chunk cache for a live database.

    One slot per relation name, stamped with the relation *version*
    (:meth:`~repro.core.base.Database.relation_version`) exactly like
    :class:`~repro.core.indexing.DatabaseIndexCache`: a commit to
    relation A never invalidates relation B's chunk.  On a version miss
    the previous chunk is extended in place of a rebuild whenever the
    storage lineage allows (the closed prefix is reused as packed
    floats).

    ``chunk(name)`` returns ``None`` for kinds/representations without a
    columnar form (static relations, ``StateSequence`` rollback stores) —
    the planner then never offers the columnar path.

    Plain counters (:attr:`hits`, :attr:`misses`, :attr:`extensions`) are
    always live; the same events are mirrored into the process
    instrumentation as ``columnar.cache.hits`` / ``columnar.cache.misses``
    / ``columnar.cache.extends``, plus a ``columnar.rows.<name>`` gauge
    per built chunk.
    """

    def __init__(self, database) -> None:
        self._db = database
        self._slots: Dict[str, PyTuple[int, ColumnarChunk]] = {}
        self.hits = 0
        self.misses = 0
        self.extensions = 0

    def _source(self, name: str):
        """(relation value, builder, extender) for *name*, or ``None``."""
        db = self._db
        getter = getattr(db, "temporal", None)
        if getter is not None:
            relation = getter(name)
            return (relation, ColumnarChunk.from_temporal,
                    lambda chunk: chunk.extended_temporal(relation))
        getter = getattr(db, "store", None)
        if getter is not None:
            relation = getter(name)
            if not isinstance(relation, RollbackRelation):
                return None  # the duplicating StateSequence cube
            return (relation, ColumnarChunk.from_rollback,
                    lambda chunk: chunk.extended_rollback(relation))
        getter = getattr(db, "history", None)
        if getter is not None:
            relation = getter(name)
            return (relation, ColumnarChunk.from_historical, lambda chunk: None)
        return None

    def ready(self, name: str) -> bool:
        """True when a chunk for the *current* version is already built.

        The planner reads this to decide whether the columnar path must
        pay the first-build packing cost.
        """
        slot = self._slots.get(name)
        return slot is not None and slot[0] == self._db.relation_version(name)

    def supports(self, name: str) -> bool:
        """True when *name* has a columnar form in this database kind."""
        try:
            return self._source(name) is not None
        except Exception:
            return False

    def chunk(self, name: str) -> Optional[ColumnarChunk]:
        """The current chunk for *name*, or ``None`` when unsupported."""
        source = self._source(name)
        if source is None:
            return None
        relation, builder, extender = source
        metrics = _obs.current().metrics
        version = self._db.relation_version(name)
        slot = self._slots.get(name)
        if slot is not None:
            cached_version, chunk = slot
            if cached_version == version:
                self.hits += 1
                metrics.counter("columnar.cache.hits").inc()
                return chunk
            fresh = extender(chunk)
            if fresh is not None:
                self.extensions += 1
                self._slots[name] = (version, fresh)
                metrics.counter("columnar.cache.extends").inc()
                metrics.gauge(f"columnar.rows.{name}").set(len(fresh))
                return fresh
        self.misses += 1
        metrics.counter("columnar.cache.misses").inc()
        chunk = builder(relation)
        self._slots[name] = (version, chunk)
        metrics.gauge(f"columnar.rows.{name}").set(len(chunk))
        return chunk

    def describe(self) -> Dict[str, Any]:
        """Deterministic stats view for ``repro cache`` and ``.cache``."""
        return {
            "relations": sorted(self._slots),
            "rows": {name: len(chunk)
                     for name, (_, chunk) in sorted(self._slots.items())},
            "hits": self.hits,
            "misses": self.misses,
            "extensions": self.extensions,
        }
