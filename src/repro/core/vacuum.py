"""Vacuuming: deliberately forgetting transaction history.

The paper is emphatic that transaction time is append-only — "errors can
sometimes be overridden ... but they cannot be forgotten".  Real systems
built on this taxonomy (Postgres's original time-travel, SQL:2011 system
versioning) nevertheless need a *controlled* escape hatch: reclaiming
storage for states older than some retention cutoff.  This module
implements that extension.

Vacuuming is explicitly **not** an update: it removes information that was
only visible to rollbacks earlier than the cutoff, and it refuses to run
with a cutoff in the future (which would amputate the current state).
After ``vacuum(relation, cutoff)``:

- ``rollback(t)`` for ``t >= cutoff`` is unchanged;
- ``rollback(t)`` for ``t < cutoff`` sees the null relation — that
  history has been discarded, and the store honestly reports knowing
  nothing about it (both representations agree on this).
"""

from __future__ import annotations

from typing import List, Union

from repro.core.rollback import RollbackRelation, StateSequence, TransactionTimeRow
from repro.core.temporal import BitemporalRow, TemporalRelation
from repro.errors import AppendOnlyViolation
from repro.time.instant import Instant, instant as _coerce
from repro.time.period import Period


def _check_cutoff(cutoff: Instant, newest: Instant) -> None:
    if not cutoff.is_finite:
        raise AppendOnlyViolation("vacuum cutoff must be a finite instant")
    if newest.is_finite and cutoff > newest:
        raise AppendOnlyViolation(
            f"vacuum cutoff {cutoff} lies after the newest commit {newest}; "
            f"vacuuming may only discard the past, never the present"
        )


def vacuum_rollback(relation: RollbackRelation,
                    cutoff) -> RollbackRelation:
    """Drop transaction history before *cutoff* from an interval store.

    Rows that ended before the cutoff vanish; rows that started before it
    but were still in the database at the cutoff have their start clamped
    to the cutoff.
    """
    when = _coerce(cutoff)
    newest = max((bound for row in relation.rows
                  for bound in (row.tt.start, row.tt.end) if bound.is_finite),
                 default=when)
    _check_cutoff(when, newest)
    kept: List[TransactionTimeRow] = []
    for row in relation.rows:
        if row.tt.end <= when:
            continue  # only visible strictly before the cutoff
        start = max(row.tt.start, when)
        kept.append(TransactionTimeRow(row.data, Period(start, row.tt.end)))
    return RollbackRelation(relation.schema, kept)


def vacuum_states(sequence: StateSequence, cutoff) -> StateSequence:
    """Drop whole states before *cutoff* from a state-sequence store.

    The newest state at or before the cutoff is retained (re-stamped at
    the cutoff) so rollbacks at the cutoff still answer correctly.
    """
    when = _coerce(cutoff)
    states = sequence.states
    newest = states[-1][0] if states else when
    _check_cutoff(when, newest)
    older = [(time, state) for time, state in states if time <= when]
    newer = [(time, state) for time, state in states if time > when]
    kept = []
    if older:
        kept.append((when, older[-1][1]))
    kept.extend(newer)
    return StateSequence(sequence.schema, kept)


def vacuum_temporal(relation: TemporalRelation, cutoff) -> TemporalRelation:
    """Drop transaction history before *cutoff* from a temporal relation.

    Valid time is untouched — vacuuming forgets what the database *used to
    believe*, never what is (currently believed to be) true.
    """
    when = _coerce(cutoff)
    newest = max((bound for row in relation.rows
                  for bound in (row.tt.start, row.tt.end) if bound.is_finite),
                 default=when)
    _check_cutoff(when, newest)
    kept: List[BitemporalRow] = []
    for row in relation.rows:
        if row.tt.end <= when:
            continue
        start = max(row.tt.start, when)
        kept.append(BitemporalRow(row.data, row.valid, Period(start, row.tt.end)))
    return TemporalRelation(relation.schema, kept)
