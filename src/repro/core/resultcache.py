"""The as-of/timeslice result cache.

The taxonomy's central storage guarantee — transaction time is
append-only, "errors ... cannot be forgotten" — makes one class of query
result reusable forever: anything computed *entirely* from closed
(immutable) state.  A rollback to a past instant, or an as-of retrieve
whose every contributing row has a closed transaction period, can never
change again, no matter how many transactions commit afterwards.  Results
that touch *open* state (the current belief) can change on any commit and
are only reusable between commits.

:class:`ResultCache` holds both flavors under one LRU:

- **immutable** entries are kept until evicted by capacity or purged by
  DDL on their relation (a drop/redefine re-uses the name for an
  unrelated store, so name-keyed entries must die with the store);
- **epoch** entries are stamped with the relation's version
  (:meth:`~repro.core.base.Database.relation_version`) and lazily
  invalidated when a lookup observes a newer version — a commit to an
  open store can therefore never serve a stale as-of result (the
  cache-invalidation test in ``tests/tquel/test_result_cache.py`` drives
  exactly that scenario).

Keys are ``(relation, tt_key, fingerprint)`` where *tt_key* renders the
transaction-time pin (the ``as of``/``through`` instants, or ``"now"``)
and *fingerprint* is the caller's canonical rendering of everything else
that shaped the result (pushed predicates, applied ``when`` kernels, the
database kind).  The TQuel evaluator is the only writer today, but the
cache itself is query-agnostic.

The plain counters (:attr:`hits`, :attr:`misses`, :attr:`evictions`,
:attr:`invalidations`) are always live; the same events are mirrored into
the process instrumentation as ``tquel.cache.hits`` /
``tquel.cache.misses`` / ``tquel.cache.evictions``, plus a
``tquel.cache.size`` gauge.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple as PyTuple

from repro.obs import runtime as _obs

__all__ = ["ResultCache"]

#: (relation name, tt pin rendering, predicate fingerprint)
Key = PyTuple[str, str, str]


class _Entry:
    __slots__ = ("value", "immutable", "version")

    def __init__(self, value: Any, immutable: bool, version: int) -> None:
        self.value = value
        self.immutable = immutable
        self.version = version


class ResultCache:
    """A bounded LRU of per-relation query results (see module docstring)."""

    def __init__(self, database, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("result cache capacity must be positive")
        self._db = database
        self._capacity = capacity
        self._entries: "OrderedDict[Key, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        """The LRU bound."""
        return self._capacity

    def get(self, relation: str, tt_key: str, fingerprint: str
            ) -> Optional[Any]:
        """The cached value, or ``None`` on miss/stale.

        Epoch entries are checked against the relation's current version
        and dropped when stale — a lookup after a commit can never return
        the pre-commit result.
        """
        metrics = _obs.current().metrics
        key = (relation, tt_key, fingerprint)
        entry = self._entries.get(key)
        if entry is not None and not entry.immutable \
                and entry.version != self._db.relation_version(relation):
            del self._entries[key]
            self.invalidations += 1
            entry = None
        if entry is None:
            self.misses += 1
            metrics.counter("tquel.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        metrics.counter("tquel.cache.hits").inc()
        return entry.value

    def put(self, relation: str, tt_key: str, fingerprint: str, value: Any,
            immutable: bool) -> None:
        """Store *value*; *immutable* selects the cache-forever flavor."""
        metrics = _obs.current().metrics
        key = (relation, tt_key, fingerprint)
        self._entries[key] = _Entry(
            value, immutable, self._db.relation_version(relation))
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            metrics.counter("tquel.cache.evictions").inc()
        metrics.gauge("tquel.cache.size").set(len(self._entries))

    def purge(self, relation: str) -> int:
        """Drop every entry for *relation* (DDL reuses names for new stores)."""
        doomed = [key for key in self._entries if key[0] == relation]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self.invalidations += len(doomed)
            _obs.current().metrics.gauge("tquel.cache.size").set(
                len(self._entries))
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (used by tests and the ``.cache`` shell verb)."""
        self._entries.clear()

    def describe(self) -> Dict[str, Any]:
        """Deterministic stats view for ``repro cache`` and ``.cache``."""
        immutable = sum(1 for e in self._entries.values() if e.immutable)
        return {
            "size": len(self._entries),
            "capacity": self._capacity,
            "immutable_entries": immutable,
            "epoch_entries": len(self._entries) - immutable,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
