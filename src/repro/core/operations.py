"""Cross-kind temporal operations.

Operations that combine or compare the temporal value types — historical
joins with TQuel ``when`` semantics, snapshot-equivalence checking, and
the representation-equivalence check between the two rollback stores.
These are the building blocks the TQuel evaluator and the benchmark
harness share.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.core.historical import HistoricalRelation, HistoricalRow
from repro.core.rollback import RollbackRelation, StateSequence
from repro.core.temporal import TemporalRelation
from repro.relational.relation import Relation
from repro.relational.tuple import Tuple
from repro.time.instant import Instant
from repro.time.period import Period

#: A temporal join condition: given the two valid periods, keep the pair?
PeriodPredicate = Callable[[Period, Period], bool]


def when_join(left: HistoricalRelation, right: HistoricalRelation,
              when: PeriodPredicate,
              where: Optional[Callable[[Tuple, Tuple], bool]] = None,
              prefix_left: str = "l", prefix_right: str = "r",
              validity: str = "intersect") -> HistoricalRelation:
    """Join two historical relations under a temporal predicate.

    ``when`` receives the two rows' valid periods (e.g.
    ``lambda a, b: a.overlaps(b)`` — TQuel's ``when l overlap r``);
    ``where`` optionally filters on the data tuples.  The result validity
    is controlled by ``validity``:

    - ``"intersect"`` — the overlap of the operand periods (the TQuel
      default for tuples that both contribute data);
    - ``"left"`` / ``"right"`` — the named operand's period (TQuel's
      semantics when only one variable appears in the target list);
    - ``"extend"`` — the smallest period covering both.
    """
    combined = left.schema.concat(right.schema, prefix_left, prefix_right)
    rows: List[HistoricalRow] = []
    for mine in left.rows:
        for theirs in right.rows:
            if not when(mine.valid, theirs.valid):
                continue
            if where is not None and not where(mine.data, theirs.data):
                continue
            if validity == "intersect":
                period = mine.valid.intersect(theirs.valid)
                if period is None:
                    continue
            elif validity == "left":
                period = mine.valid
            elif validity == "right":
                period = theirs.valid
            elif validity == "extend":
                period = mine.valid.extend(theirs.valid)
            else:
                raise ValueError(f"unknown validity rule {validity!r}")
            rows.append(HistoricalRow(mine.data.concat(theirs.data, combined),
                                      period))
    return HistoricalRelation(combined, rows)


def snapshot_equivalent(a: HistoricalRelation, b: HistoricalRelation,
                        probes: Optional[Iterable[Instant]] = None) -> bool:
    """True if the two historical relations agree at every valid instant.

    With ``probes=None`` this uses the coalesced canonical form (exact).
    Pass explicit probe instants to check the definition directly — the
    property suite does both and asserts they agree.
    """
    if probes is None:
        return a == b
    return all(a.timeslice(when) == b.timeslice(when) for when in probes)


def rollback_equivalent(interval: RollbackRelation, states: StateSequence,
                        probes: Iterable[Instant]) -> bool:
    """True if the two rollback representations agree at every probe.

    This is the paper's implicit claim that the interval-stamped table of
    Figure 4 faithfully implements the state cube of Figure 3.
    """
    return all(interval.rollback(when) == states.rollback(when)
               for when in probes)


def temporal_timeslice_matrix(relation: TemporalRelation,
                              valid_probes: Sequence[Instant],
                              txn_probes: Sequence[Instant]
                              ) -> Dict[PyTuple[Instant, Instant], Relation]:
    """Every (valid, transaction) bitemporal point over the probe grid.

    The full four-dimensional picture of Figure 7, sampled: entry
    ``(v, t)`` is the static relation of facts valid at ``v`` as the
    database believed as of ``t``.
    """
    matrix: Dict[PyTuple[Instant, Instant], Relation] = {}
    for txn_probe in txn_probes:
        state = relation.rollback(txn_probe)
        for valid_probe in valid_probes:
            matrix[(valid_probe, txn_probe)] = state.timeslice(valid_probe)
    return matrix


def history_series(relation: HistoricalRelation,
                   functions: Sequence,
                   by: Sequence[str] = ()) -> HistoricalRelation:
    """A time-varying aggregate: the trend-analysis query as one operation.

    Answers §4.1's motivating query — "How did the number of faculty
    change over the last 5 years?" — in closed form: the result is a
    *historical* relation whose tuples are aggregate values
    (:mod:`repro.relational.aggregate` functions, optionally grouped by
    ``by``) and whose valid periods are the maximal intervals over which
    those values hold.  Stepwise-constant by construction, coalesced, and
    — being historical — composable with every other historical operation.

    The series covers ``[first boundary, ∞)`` when any fact is open-ended,
    else ``[first boundary, last boundary)``; intervals where no fact is
    valid appear with their aggregate of the empty set (``count`` = 0).
    """
    from repro.relational.aggregate import aggregate as _aggregate
    from repro.time.instant import POS_INF

    boundaries = sorted({
        bound
        for row in relation.rows
        for bound in (row.valid.start, row.valid.end)
        if bound.is_finite
    })
    result_schema = _aggregate(Relation(relation.schema, ()),
                               list(functions), by=by).schema
    if not boundaries:
        return HistoricalRelation(result_schema)

    open_ended = any(row.valid.end.is_pos_inf for row in relation.rows)
    edges: List = list(boundaries)
    intervals = list(zip(edges, edges[1:]))
    if open_ended:
        intervals.append((edges[-1], POS_INF))

    rows: List[HistoricalRow] = []
    for start, end in intervals:
        snapshot = relation.timeslice(start)
        aggregated = _aggregate(snapshot, list(functions), by=by)
        for data in aggregated:
            rows.append(HistoricalRow(data, Period(start, end)))
    return HistoricalRelation(result_schema, rows).coalesce()


def diff_states(database, name: str, earlier, later):
    """What changed between two transaction-time instants — the audit diff.

    Works on any database with rollback support.  Returns a pair
    ``(appeared, disappeared)``:

    - on a **static rollback** database these are static relations of
      tuples that entered/left the stored state between the instants;
    - on a **temporal** database they are *historical* relations of
      (fact, validity) beliefs adopted/abandoned between the instants —
      so a retroactive correction shows up as one belief abandoned and
      two adopted, exactly the Figure-8 story.

    Raises the usual taxonomy error on kinds without transaction time.
    """
    database.require_rollback("diff_states")
    before = database.rollback(name, earlier)
    after = database.rollback(name, later)
    if isinstance(before, HistoricalRelation):
        before_rows = set(before.rows)
        after_rows = set(after.rows)
        appeared = HistoricalRelation(before.schema,
                                      [r for r in after.rows
                                       if r not in before_rows])
        disappeared = HistoricalRelation(before.schema,
                                         [r for r in before.rows
                                          if r not in after_rows])
        return appeared, disappeared
    return after.difference(before), before.difference(after)


def changed_instants(relation: HistoricalRelation) -> List[Instant]:
    """The finite valid-time boundaries of a historical relation, sorted.

    Probing timeslices at these instants (plus one before and after each)
    observes every distinct snapshot the relation has — used by the
    property suite to turn "equal at every instant" into a finite check.
    """
    boundaries = set()
    for row in relation.rows:
        if row.valid.start.is_finite:
            boundaries.add(row.valid.start)
            boundaries.add(row.valid.start - 1)
        if row.valid.end.is_finite:
            boundaries.add(row.valid.end)
            boundaries.add(row.valid.end - 1)
    return sorted(boundaries)
