"""The serving-layer client: pooled, retrying, failover-aware.

:class:`ReproClient` speaks the ``s1`` wire protocol of
:mod:`repro.server.protocol` over any stream the *connector* produces —
real TCP (the default, endpoints as ``"host:port"``) or in-process
:class:`~repro.server.chaos.MemoryPipe` pairs (tests, the loadgen).
The robustness posture mirrors the server's (docs/SERVING.md):

- **bounded retry with seeded jitter**: transport failures and typed
  *retryable* errors (:class:`~repro.errors.Overloaded`,
  :class:`~repro.errors.ConflictError`,
  :class:`~repro.errors.DrainingError`, …) are retried up to the
  :class:`~repro.concurrency.retry.RetryPolicy`'s attempt budget,
  backing off by the policy's jittered schedule — a server-supplied
  ``retry_after`` hint wins over the computed delay.  Non-retryable
  errors raise immediately, as the *same* exception class the server
  raised (the typed round-trip of ``decode_error``).
- **deadline ownership**: the client enforces ``budget_ms`` locally
  with its own clock; a request that overruns raises
  :class:`~repro.errors.DeadlineExceeded` and the connection is closed
  rather than reused (a late reply must never be read as the answer to
  the *next* request).  The server independently suppresses late
  replies, so neither side trusts the other's clock.
- **failover**: endpoints are an ordered list; connection failures and
  :class:`~repro.errors.DrainingError` rotate the preferred endpoint,
  so a drained primary hands its clients to the promoted replica
  without configuration changes.
- **read-your-writes**: every ``done`` token is folded into
  :attr:`last_token`; ``consistency="ryw"`` sends it, gating replica
  reads on the client's own write history.

One request is in flight per pooled connection; concurrency comes from
the pool, correlation ids stay trivially unambiguous.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.concurrency.retry import RetryPolicy
from repro.errors import (DeadlineExceeded, ProtocolError, ReproError,
                          TransportError)
from repro.server import protocol

#: A connector: endpoint spec -> ``(reader, writer)`` stream pair.
Connector = Callable[[str], Awaitable[Tuple[Any, Any]]]


async def tcp_connector(endpoint: str) -> Tuple[Any, Any]:
    """The default connector: ``"host:port"`` over asyncio TCP."""
    host, _, port = endpoint.rpartition(":")
    reader, writer = await asyncio.open_connection(
        host or "127.0.0.1", int(port),
        limit=protocol.MAX_FRAME_BYTES + 4096)
    return reader, writer


class QueryResult:
    """One successful query's answer, reassembled from the stream."""

    __slots__ = ("rows", "columns", "row_count", "token", "commit_time",
                 "served_by", "attempts")

    def __init__(self, rows: List[Dict[str, Any]], columns: List[str],
                 row_count: int, token: Optional[int],
                 commit_time: Optional[str], served_by: str,
                 attempts: int) -> None:
        self.rows = rows
        self.columns = columns
        self.row_count = row_count
        self.token = token
        self.commit_time = commit_time
        self.served_by = served_by
        self.attempts = attempts

    def __repr__(self) -> str:
        return (f"QueryResult({self.row_count} row(s), "
                f"served_by={self.served_by!r}, token={self.token})")


class _Conn:
    """One pooled connection; at most one request in flight."""

    def __init__(self, endpoint: str, reader: Any, writer: Any) -> None:
        self.endpoint = endpoint
        self.reader = reader
        self.writer = writer
        self.next_id = 1
        self.broken = False

    def close(self) -> None:
        self.broken = True
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass


class ReproClient:
    """A pooled async client over one or more serving endpoints.

    *endpoints* is an ordered preference list; *connector* turns a spec
    into a stream pair (defaults to TCP).  *retry* supplies the attempt
    budget and the seeded backoff schedule — pass
    ``RetryPolicy(seed=...)`` for reproducible runs.  *tenant* scopes
    admission on the server.
    """

    def __init__(self, endpoints: Sequence[str],
                 connector: Optional[Connector] = None,
                 retry: Optional[RetryPolicy] = None,
                 tenant: str = "default",
                 default_budget_ms: Optional[float] = None,
                 pool_size: int = 4,
                 preamble: Optional[Sequence[str]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not endpoints:
            raise ValueError("at least one endpoint is required")
        self.endpoints = list(endpoints)
        #: Statements replayed on every fresh connection before it
        #: serves a request — ``range of`` bindings are connection
        #: state on the server, so a pool that reconnects (or fails
        #: over) must re-establish them.
        self.preamble = list(preamble) if preamble else []
        self.connector: Connector = (connector if connector is not None
                                     else tcp_connector)
        self.retry = retry if retry is not None else RetryPolicy()
        self.tenant = tenant
        self.default_budget_ms = default_budget_ms
        self.pool_size = pool_size
        self._clock = clock
        self._preferred = 0
        self._pool: Dict[str, List[_Conn]] = {}
        self._acked_tokens: List[int] = []
        self.last_token: Optional[int] = None
        self.stats: Dict[str, int] = {
            "requests": 0, "retries": 0, "failovers": 0,
            "timeouts": 0, "connects": 0, "typed_errors": 0,
        }

    # -- connection pool ------------------------------------------------------

    @property
    def preferred_endpoint(self) -> str:
        return self.endpoints[self._preferred % len(self.endpoints)]

    async def _checkout(self) -> _Conn:
        endpoint = self.preferred_endpoint
        pool = self._pool.setdefault(endpoint, [])
        while pool:
            connection = pool.pop()
            if not connection.broken:
                return connection
        try:
            reader, writer = await self.connector(endpoint)
        except (ConnectionError, OSError) as exc:
            raise TransportError(
                f"cannot connect to {endpoint}: {exc}") from exc
        self.stats["connects"] += 1
        connection = _Conn(endpoint, reader, writer)
        for statement in self.preamble:
            await self._exchange(connection, statement)
        return connection

    async def _exchange(self, connection: _Conn, source: str) -> None:
        """One fire-and-check statement outside the retry loop (the
        connection preamble); failures break the connection."""
        request_id = connection.next_id
        connection.next_id += 1
        try:
            connection.writer.write(protocol.query_request(
                request_id, source, budget_ms=5000.0, tenant=self.tenant))
            await connection.writer.drain()
            await asyncio.wait_for(
                self._collect(connection, request_id, None, 0),
                timeout=5.0)
        except BaseException:
            connection.close()
            raise

    def _checkin(self, connection: _Conn) -> None:
        if connection.broken:
            return
        pool = self._pool.setdefault(connection.endpoint, [])
        if len(pool) < self.pool_size:
            pool.append(connection)
        else:
            connection.close()

    def _fail_over(self) -> None:
        """Rotate the preferred endpoint (connection refused, drain)."""
        self._preferred = (self._preferred + 1) % len(self.endpoints)
        self.stats["failovers"] += 1

    async def close(self) -> None:
        for pool in self._pool.values():
            for connection in pool:
                connection.close()
        self._pool.clear()

    # -- the request loop -----------------------------------------------------

    async def query(self, source: str,
                    budget_ms: Optional[float] = None,
                    consistency: str = "primary",
                    token: Optional[int] = None) -> QueryResult:
        """Run one TQuel statement with retries, failover and deadline.

        ``consistency="ryw"`` gates replica reads on :attr:`last_token`
        (or an explicit *token*).  Raises the server's typed error for
        non-retryable failures, :class:`~repro.errors.DeadlineExceeded`
        on budget overrun, and the last retryable error when the
        attempt budget runs out.
        """
        budget_ms = (budget_ms if budget_ms is not None
                     else self.default_budget_ms)
        deadline = (self._clock() + budget_ms / 1000.0
                    if budget_ms is not None else None)
        if consistency == "ryw" and token is None:
            token = self.last_token
        self.stats["requests"] += 1
        last_error: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.stats["retries"] += 1
                pause = self._backoff(attempt - 1, last_error)
                if deadline is not None and \
                        self._clock() + pause >= deadline:
                    raise DeadlineExceeded(
                        f"retry backoff would overshoot the "
                        f"{budget_ms}ms budget") from last_error
                await asyncio.sleep(pause)
            if deadline is not None and self._clock() >= deadline:
                self.stats["timeouts"] += 1
                raise DeadlineExceeded(
                    f"request budget of {budget_ms}ms exhausted "
                    f"after {attempt} attempt(s)") from last_error
            try:
                return await self._attempt(source, budget_ms, deadline,
                                           consistency, token, attempt)
            except (TransportError, ConnectionError, OSError) as exc:
                last_error = exc
                self._fail_over()
                continue
            except ReproError as exc:
                if not exc.retryable:
                    raise
                self.stats["typed_errors"] += 1
                last_error = exc
                if type(exc).__name__ == "DrainingError":
                    self._fail_over()
                continue
        assert last_error is not None
        raise last_error

    async def ping(self, budget_ms: float = 1000.0) -> bool:
        """Round-trip a liveness probe to the preferred endpoint."""
        connection = await self._checkout()
        try:
            request_id = connection.next_id
            connection.next_id += 1
            connection.writer.write(protocol.ping_request(request_id))
            await connection.writer.drain()
            line = await asyncio.wait_for(connection.reader.readline(),
                                          timeout=budget_ms / 1000.0)
            message = protocol.decode_message(line)
            self._checkin(connection)
            return message.get("type") == "pong"
        except (asyncio.TimeoutError, ConnectionError, OSError,
                ProtocolError):
            connection.close()
            return False

    def _backoff(self, failure: int, error: Optional[BaseException]) -> float:
        """The pause before the next attempt: server hint, else policy."""
        hint = getattr(error, "retry_after", None)
        if hint is not None:
            return float(hint)
        return self.retry.delay(failure)

    async def _attempt(self, source: str, budget_ms: Optional[float],
                       deadline: Optional[float], consistency: str,
                       token: Optional[int], attempt: int) -> QueryResult:
        connection = await self._checkout()
        request_id = connection.next_id
        connection.next_id += 1
        # The budget sent to the server is what *remains*, so a retried
        # request never asks the server to work past the client's own
        # deadline.
        remaining_ms = budget_ms
        if deadline is not None:
            remaining_ms = max(1.0, (deadline - self._clock()) * 1000.0)
        try:
            connection.writer.write(protocol.query_request(
                request_id, source, budget_ms=remaining_ms,
                tenant=self.tenant, consistency=consistency, token=token))
            await connection.writer.drain()
            result = await self._collect(connection, request_id, deadline,
                                         attempt)
        except asyncio.TimeoutError:
            # Budget ran out mid-exchange: the connection may still
            # deliver a (suppressed-or-not) late frame — burn it.
            connection.close()
            self.stats["timeouts"] += 1
            raise DeadlineExceeded(
                f"no terminal reply within the {budget_ms}ms budget")
        except (ConnectionError, OSError, ProtocolError):
            connection.close()
            raise
        except ReproError:
            # Typed server error: the exchange terminated cleanly, the
            # connection is still framed — reuse it.
            self._checkin(connection)
            raise
        self._checkin(connection)
        return result

    async def _collect(self, connection: _Conn, request_id: int,
                       deadline: Optional[float],
                       attempt: int) -> QueryResult:
        rows: List[Dict[str, Any]] = []
        columns: List[str] = []
        while True:
            timeout = None
            if deadline is not None:
                timeout = max(0.001, deadline - self._clock())
            line = await asyncio.wait_for(connection.reader.readline(),
                                          timeout=timeout)
            if not line:
                connection.close()
                raise TransportError(
                    f"connection to {connection.endpoint} closed "
                    f"mid-request")
            message = protocol.decode_message(line)
            kind = message.get("type")
            if kind == "rows" and message.get("id") == request_id:
                rows.extend(protocol.rows_from_wire(message["rows"]))
                if message.get("columns"):
                    columns = list(message["columns"])
            elif kind == "done" and message.get("id") == request_id:
                expected = message.get("row_count")
                if isinstance(expected, int) and expected != len(rows):
                    # A rows chunk vanished between the server and us;
                    # the done frame's census is the proof.  Trusting
                    # the truncated result would be silent data loss,
                    # and the stream that ate a frame is not worth
                    # keeping — close it and retry on a fresh one.
                    connection.close()
                    raise TransportError(
                        f"response truncated in transit: done frame "
                        f"promises {expected} row(s), {len(rows)} "
                        f"arrived")
                token = message.get("token")
                if isinstance(token, int):
                    self._fold_token(token, message)
                return QueryResult(rows, columns,
                                   message.get("row_count", len(rows)),
                                   token, message.get("commit_time"),
                                   message.get("served_by", "primary"),
                                   attempts=attempt + 1)
            elif kind == "error":
                error = protocol.decode_error(message.get("error") or {})
                if message.get("id") is None and isinstance(
                        error, ProtocolError):
                    # An id-less protocol error means the *frame* was
                    # mangled in transit (this client only sends
                    # well-formed frames) — wire damage, so retryable,
                    # unlike a genuine protocol violation.
                    raise TransportError(
                        f"request frame damaged in transit: {error}"
                    ) from error
                raise error
            elif kind == "goodbye":
                connection.close()
                raise TransportError(
                    f"server said goodbye: {message.get('reason')}")
            # Frames for other request ids (stale late replies on a
            # fresh connection cannot happen — one in-flight per
            # connection — but tolerate and skip rather than wedge).

    def _fold_token(self, token: int, message: Dict[str, Any]) -> None:
        if self.last_token is None or token > self.last_token:
            self.last_token = token
        if message.get("commit_time") is not None:
            # A write's token is an acknowledged commit — the audit
            # trail the loadgen checks against post-failover state.
            self._acked_tokens.append(token)

    @property
    def acked_tokens(self) -> List[int]:
        """Commit tokens of every acknowledged write, in ack order."""
        return list(self._acked_tokens)

    def __repr__(self) -> str:
        return (f"ReproClient({self.endpoints!r}, "
                f"preferred={self.preferred_endpoint!r}, "
                f"token={self.last_token})")
