"""TQuel: the temporal query language (Snodgrass 1984/1985), implemented.

TQuel extends Quel — the calculus language of INGRES — with three
constructs, one per axis of the taxonomy:

- ``as of <instant>`` — rollback to a past transaction time (§4.2);
- ``when <temporal predicate>`` — relate the valid times of the tuples
  participating in a derivation, with ``overlap``, ``precede``,
  ``start of``, ``end of`` and ``extend`` (§4.3);
- ``valid from <e> to <e>`` / ``valid at <e>`` — specify the implicit
  valid time of derived tuples (§4.3).

The pipeline is conventional: :mod:`~repro.tquel.lexer` →
:mod:`~repro.tquel.parser` → :mod:`~repro.tquel.analyzer` →
:mod:`~repro.tquel.evaluator`, driven by an interactive
:class:`~repro.tquel.interpreter.Session`.  The analyzer enforces the
taxonomy statically: an ``as of`` clause against a database kind without
transaction time, or a ``when``/``valid`` clause against one without
valid time, is rejected before evaluation with the database kind named in
the error — Figure 11 of the paper as a type system.
"""

from repro.tquel.lexer import Lexer, Token, TokenType
from repro.tquel.parser import Parser, parse, parse_script
from repro.tquel.analyzer import analyze
from repro.tquel.interpreter import Session
from repro.tquel.printer import render, unparse

__all__ = [
    "Lexer",
    "Parser",
    "Session",
    "Token",
    "TokenType",
    "analyze",
    "parse",
    "parse_script",
    "render",
    "unparse",
]
