"""The TQuel lexer.

Hand-rolled, position-tracking tokenizer.  Keywords are case-insensitive
(the paper typesets them lowercase; INGRES accepted either).  String
literals use double quotes, as in all the paper's examples
(``f.name = "Merrie"``, ``as of "12/10/82"``).
"""

from __future__ import annotations

import enum
from typing import Iterator, List, NamedTuple, Optional

from repro.errors import TQuelSyntaxError


class TokenType(enum.Enum):
    """Lexical categories."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    STRING = "string"
    NUMBER = "number"
    SYMBOL = "symbol"
    EOF = "end of input"


#: Reserved words.  ``start``/``end`` double as the temporal unary
#: operators ``start of`` / ``end of``.
KEYWORDS = frozenset({
    "range", "of", "is", "retrieve", "into", "unique", "where", "when",
    "valid", "from", "to", "at", "as", "through", "start", "end", "overlap",
    "precede", "extend", "equal", "and", "or", "not", "append", "delete",
    "replace", "create", "destroy", "event", "key", "persistent", "now",
    "forever", "beginning", "by", "sort",
    # Extended when-operators (beyond the paper's overlap/precede/equal):
    "meets", "before", "after", "during", "starts", "finishes",
    # Null tests: `x is null`, `x is not null`.
    "null",
})

#: Multi-character symbols first so maximal munch works.
SYMBOLS = ("!=", "<=", ">=", "(", ")", ",", ".", "=", "<", ">", "+", "-",
           "*", "/", ";")


class Token(NamedTuple):
    """One lexeme with its source position (1-based line and column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True if this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        """True if this token is the given symbol."""
        return self.type is TokenType.SYMBOL and self.value == symbol


class Lexer:
    """Tokenizes one TQuel source string."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._position = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> List[Token]:
        """The full token list, ending with an EOF token."""
        result = []
        while True:
            token = self._next()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    # -- scanning ---------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        index = self._position + ahead
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self._source[self._position:self._position + count]
        for char in text:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._position += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            char = self._peek()
            if char and char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "*":
                line, column = self._line, self._column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise TQuelSyntaxError("unterminated comment",
                                               line, column)
                    self._advance()
                self._advance(2)
            elif char == "#":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self._line, self._column
        char = self._peek()
        if not char:
            return Token(TokenType.EOF, "", line, column)

        if char == '"':
            return self._string(line, column)

        if char.isdigit():
            return self._number(line, column)

        if char.isalpha() or char == "_":
            return self._word(line, column)

        for symbol in SYMBOLS:
            if self._source.startswith(symbol, self._position):
                self._advance(len(symbol))
                return Token(TokenType.SYMBOL, symbol, line, column)

        raise TQuelSyntaxError(f"unexpected character {char!r}", line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            char = self._peek()
            if not char or char == "\n":
                raise TQuelSyntaxError("unterminated string literal",
                                       line, column)
            if char == '"':
                self._advance()
                return Token(TokenType.STRING, "".join(chars), line, column)
            if char == "\\" and self._peek(1) in ('"', "\\"):
                self._advance()
            chars.append(self._advance())

    def _number(self, line: int, column: int) -> Token:
        digits: List[str] = []
        seen_dot = False
        while self._peek().isdigit() or (self._peek() == "." and not seen_dot
                                         and self._peek(1).isdigit()):
            if self._peek() == ".":
                seen_dot = True
            digits.append(self._advance())
        return Token(TokenType.NUMBER, "".join(digits), line, column)

    def _word(self, line: int, column: int) -> Token:
        chars: List[str] = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        word = "".join(chars)
        if word.lower() in KEYWORDS:
            return Token(TokenType.KEYWORD, word.lower(), line, column)
        return Token(TokenType.IDENT, word, line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience: tokenize *source* in one call."""
    return Lexer(source).tokens()
