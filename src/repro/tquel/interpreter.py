"""The TQuel session: the user-facing entry point of the language.

A :class:`Session` holds one database, the range-variable environment
(``range of f is faculty`` persists across statements, as in Quel), and
runs the full pipeline per statement: lex → parse → analyze → evaluate.

::

    from repro.core import TemporalDatabase
    from repro.tquel import Session

    session = Session(TemporalDatabase())
    session.execute('create faculty (name = string, rank = string) key (name)')
    session.execute('append to faculty (name = "Tom", rank = "associate") '
                    'valid from "12/05/82"')
    session.execute('range of f is faculty')
    result = session.execute('retrieve (f.rank) where f.name = "Tom"')
    print(session.render(result))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.base import Database
from repro.core.historical import HistoricalRelation
from repro.core.temporal import TemporalRelation
from repro.relational.relation import Relation
from repro.tquel.analyzer import analyze
from repro.tquel.ast import RangeStmt, Statement
from repro.tquel.evaluator import Evaluator, Result
from repro.tquel.parser import parse, parse_script
from repro.tquel import printer


class Session:
    """An interactive TQuel session over one database."""

    def __init__(self, database: Database) -> None:
        self._db = database
        self._ranges: Dict[str, str] = {}

    @property
    def database(self) -> Database:
        """The underlying database."""
        return self._db

    @property
    def ranges(self) -> Dict[str, str]:
        """The live range-variable bindings (variable -> relation name)."""
        return dict(self._ranges)

    # -- execution -----------------------------------------------------------------

    def execute(self, source: str) -> Result:
        """Run one statement of TQuel source and return its result.

        Retrieves return a relation value of the kind the database produces
        (static / historical / temporal); updates and DDL return the commit
        time; ``range of`` returns ``None``.
        """
        return self.execute_statement(parse(source))

    def execute_statement(self, statement: Statement) -> Result:
        """Run one parsed statement (analyze, evaluate, update bindings)."""
        analyze(statement, self._db, self._ranges)
        evaluator = Evaluator(self._db, self._ranges)
        result = evaluator.execute(statement)
        if isinstance(statement, RangeStmt):
            self._ranges[statement.variable] = statement.relation
        return result

    def execute_script(self, source: str) -> List[Result]:
        """Run a multi-statement script, returning every result in order."""
        return [self.execute_statement(statement)
                for statement in parse_script(source)]

    # -- convenience ------------------------------------------------------------------

    def query(self, source: str) -> Union[Relation, HistoricalRelation,
                                          TemporalRelation]:
        """Run a retrieve and insist on a relation result."""
        result = self.execute(source)
        if not isinstance(result, (Relation, HistoricalRelation,
                                   TemporalRelation)):
            raise TypeError(f"{source!r} did not produce a relation")
        return result

    def explain(self, source: str) -> str:
        """Describe how a retrieve would execute, as readable text.

        Shows the candidate source and count per range variable (before
        and after selection pushdown), the residual predicate size, the
        temporal clauses, and the result kind — without forming the
        product.
        """
        statement = parse(source)
        analyze(statement, self._db, self._ranges)
        plan = Evaluator(self._db, self._ranges).explain(statement)
        lines = [f"retrieve on a {plan['database_kind']} database "
                 f"-> {plan['result_kind']} result"]
        for variable, info in plan["variables"].items():
            note = (f", {info['pushed_conjuncts']} conjunct(s) pushed"
                    if info["pushed_conjuncts"] else "")
            lines.append(
                f"  {variable} over {info['relation']}: "
                f"{info['candidates']} candidates -> "
                f"{info['after_pushdown']}{note}")
        lines.append(f"  product of {plan['product_size']} combination(s), "
                     f"{plan['residual_conjuncts']} residual conjunct(s)")
        clauses = []
        if plan["when"]:
            clauses.append("when")
        if plan["valid_clause"]:
            clauses.append("valid")
        if plan["as_of"]:
            clauses.append(f"as of {plan['as_of']}"
                           + (f" through {plan['through']}"
                              if plan["through"] else ""))
        if clauses:
            lines.append("  temporal clauses: " + ", ".join(clauses))
        return "\n".join(lines)

    def migrate_database(self, target_class, allow_loss: bool = False):
        """Migrate the session's database to another kind, in place.

        Range-variable bindings survive (relation names carry over).  See
        :func:`repro.core.migrate.migrate` for what each direction keeps.
        """
        from repro.core.migrate import migrate
        self._db = migrate(self._db, target_class, allow_loss=allow_loss)
        return self._db

    def render(self, result: Result, title: Optional[str] = None,
               event: bool = False) -> str:
        """Render a result the way the paper's figures do."""
        if result is None or not isinstance(
                result, (Relation, HistoricalRelation, TemporalRelation)):
            return printer.render(None, title)
        return printer.render(result, title, event=event)

    def show(self, source: str, title: Optional[str] = None) -> str:
        """Execute and render in one step (the REPL's workhorse)."""
        return self.render(self.execute(source), title=title)

    def __repr__(self) -> str:
        bindings = ", ".join(f"{var}→{rel}" for var, rel in
                             sorted(self._ranges.items())) or "no ranges"
        return f"Session({self._db.kind} database; {bindings})"
