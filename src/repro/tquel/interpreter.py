"""The TQuel session: the user-facing entry point of the language.

A :class:`Session` holds one database, the range-variable environment
(``range of f is faculty`` persists across statements, as in Quel), and
runs the full pipeline per statement: lex → parse → analyze → evaluate.

::

    from repro.core import TemporalDatabase
    from repro.tquel import Session

    session = Session(TemporalDatabase())
    session.execute('create faculty (name = string, rank = string) key (name)')
    session.execute('append to faculty (name = "Tom", rank = "associate") '
                    'valid from "12/05/82"')
    session.execute('range of f is faculty')
    result = session.execute('retrieve (f.rank) where f.name = "Tom"')
    print(session.render(result))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.base import Database
from repro.core.historical import HistoricalRelation
from repro.core.temporal import TemporalRelation
from repro.obs import runtime as _obs
from repro.obs.runtime import Instrumentation
from repro.relational.relation import Relation
from repro.tquel.analyzer import analyze
from repro.tquel.ast import RangeStmt, Statement
from repro.tquel.evaluator import Evaluator, Result
from repro.tquel.lexer import tokenize
from repro.tquel.parser import parse_script, parse_tokens
from repro.tquel import printer


class Session:
    """An interactive TQuel session over one database.

    ``plan`` is the session-wide access-path knob: ``"auto"`` lets the
    cost-based planner (:mod:`repro.tquel.planner`) pick per range
    variable; ``"naive"``/``"index"``/``"columnar"`` force one path
    everywhere (the shell exposes this as ``.plan``).
    """

    def __init__(self, database: Database, plan: str = "auto",
                 ranges: Optional[Dict[str, str]] = None) -> None:
        self._db = database
        #: *ranges* seeds the range-variable environment — the serving
        #: layer keeps bindings per connection and rebuilds a Session
        #: per request (possibly against a replica's database), so the
        #: bindings must be injectable rather than only accreted.
        self._ranges: Dict[str, str] = dict(ranges) if ranges else {}
        self.plan = plan

    @property
    def database(self) -> Database:
        """The underlying database."""
        return self._db

    @property
    def plan(self) -> str:
        """The access-path mode every evaluator of this session uses."""
        return self._plan

    @plan.setter
    def plan(self, mode: str) -> None:
        from repro.tquel.planner import PLAN_MODES
        if mode not in PLAN_MODES:
            raise ValueError(
                f"plan must be one of {', '.join(PLAN_MODES)}; got {mode!r}")
        self._plan = mode

    @property
    def ranges(self) -> Dict[str, str]:
        """The live range-variable bindings (variable -> relation name)."""
        return dict(self._ranges)

    # -- execution -----------------------------------------------------------------

    def execute(self, source: str) -> Result:
        """Run one statement of TQuel source and return its result.

        Retrieves return a relation value of the kind the database produces
        (static / historical / temporal); updates and DDL return the commit
        time; ``range of`` returns ``None``.

        The four pipeline phases run under nested spans
        (``tquel.statement`` > ``tquel.lex`` / ``tquel.parse`` /
        ``tquel.analyze`` / ``tquel.evaluate``) — no-ops unless recording
        is on.
        """
        obs = _obs.current()
        with obs.tracer.span("tquel.statement"):
            obs.metrics.counter("tquel.statements").inc()
            with obs.tracer.span("tquel.lex"):
                tokens = tokenize(source)
            with obs.tracer.span("tquel.parse"):
                statement = parse_tokens(tokens)
            return self._execute_parsed(statement)

    def execute_statement(self, statement: Statement) -> Result:
        """Run one parsed statement (analyze, evaluate, update bindings)."""
        obs = _obs.current()
        with obs.tracer.span("tquel.statement"):
            obs.metrics.counter("tquel.statements").inc()
            return self._execute_parsed(statement)

    def _execute_parsed(self, statement: Statement) -> Result:
        """The analyze + evaluate tail shared by both entry points."""
        tracer = _obs.current().tracer
        with tracer.span("tquel.analyze"):
            analyze(statement, self._db, self._ranges)
        evaluator = Evaluator(self._db, self._ranges, plan=self._plan)
        with tracer.span("tquel.evaluate"):
            result = evaluator.execute(statement)
        if isinstance(statement, RangeStmt):
            self._ranges[statement.variable] = statement.relation
        return result

    def execute_script(self, source: str) -> List[Result]:
        """Run a multi-statement script, returning every result in order."""
        return [self.execute_statement(statement)
                for statement in parse_script(source)]

    # -- convenience ------------------------------------------------------------------

    def query(self, source: str) -> Union[Relation, HistoricalRelation,
                                          TemporalRelation]:
        """Run a retrieve and insist on a relation result."""
        result = self.execute(source)
        if not isinstance(result, (Relation, HistoricalRelation,
                                   TemporalRelation)):
            raise TypeError(f"{source!r} did not produce a relation")
        return result

    def explain_plan(self, source: str,
                     timings: bool = True) -> Dict[str, object]:
        """The raw explain plan, with measured pipeline-phase timings.

        Runs lex → parse → analyze → plan under a private (not installed)
        :class:`~repro.obs.Instrumentation` so the timings are recorded
        even when process-wide recording is off, and nothing leaks into
        the global registry.  The returned dict is the evaluator's plan
        (per-variable candidate counts, pushdown effect, chosen access
        path with estimated rows) plus a ``"phases"`` map of phase name →
        seconds.  ``timings=False`` omits the ``"phases"`` key — every
        remaining field is a pure function of database state, so the
        plan (and its text rendering) can be asserted verbatim; the
        doc-sync transcripts in ``docs/QUERY_PLANNING.md`` rely on this.
        """
        local = Instrumentation(capacity=16)
        with local.tracer.span("lex"):
            tokens = tokenize(source)
        with local.tracer.span("parse"):
            statement = parse_tokens(tokens)
        with local.tracer.span("analyze"):
            analyze(statement, self._db, self._ranges)
        with local.tracer.span("plan"):
            plan = Evaluator(self._db, self._ranges,
                             plan=self._plan).explain(statement)
        if timings:
            plan["phases"] = {span.name: span.duration
                              for span in local.tracer.spans()}
        return plan

    def explain(self, source: str, timings: bool = True) -> str:
        """Describe how a retrieve would execute, as readable text.

        Shows the candidate source, count, index access path and chosen
        plan per range variable (before and after selection pushdown),
        the residual predicate size, the temporal clauses, the result
        kind, and the measured time of each pipeline phase — without
        forming the product.  With ``timings=False`` the output is fully
        deterministic (stable key order, no measured durations) and can
        be asserted verbatim — the contract ``docs/QUERY_PLANNING.md``'s
        annotated transcripts depend on.
        """
        plan = self.explain_plan(source, timings=timings)
        lines = [f"retrieve on a {plan['database_kind']} database "
                 f"-> {plan['result_kind']} result (planner: "
                 f"{plan['planner_mode']})"]
        for variable, info in plan["variables"].items():
            note = (f", {info['pushed_conjuncts']} conjunct(s) pushed"
                    if info["pushed_conjuncts"] else "")
            lines.append(
                f"  {variable} over {info['relation']}: "
                f"{info['candidates']} candidates -> "
                f"{info['after_pushdown']}{note}")
            lines.append(f"    access path: {info['index']}")
            lines.append(
                f"    plan: {info['plan']} — estimated "
                f"{info['estimated_rows']} row(s), actual "
                f"{info['candidates']} ({info['plan_reason']})")
        lines.append(f"  product of {plan['product_size']} combination(s), "
                     f"{plan['residual_conjuncts']} residual conjunct(s)")
        clauses = []
        if plan["when"]:
            clauses.append("when")
        if plan["valid_clause"]:
            clauses.append("valid")
        if plan["as_of"]:
            clauses.append(f"as of {plan['as_of']}"
                           + (f" through {plan['through']}"
                              if plan["through"] else ""))
        if clauses:
            lines.append("  temporal clauses: " + ", ".join(clauses))
        if "phases" in plan:
            lines.append("  phases: " + ", ".join(
                f"{name} {duration * 1e6:.1f}us"
                for name, duration in plan["phases"].items()))
        return "\n".join(lines)

    def migrate_database(self, target_class, allow_loss: bool = False):
        """Migrate the session's database to another kind, in place.

        Range-variable bindings survive (relation names carry over).  See
        :func:`repro.core.migrate.migrate` for what each direction keeps.
        """
        from repro.core.migrate import migrate
        self._db = migrate(self._db, target_class, allow_loss=allow_loss)
        return self._db

    def render(self, result: Result, title: Optional[str] = None,
               event: bool = False) -> str:
        """Render a result the way the paper's figures do."""
        if result is None or not isinstance(
                result, (Relation, HistoricalRelation, TemporalRelation)):
            return printer.render(None, title)
        return printer.render(result, title, event=event)

    def show(self, source: str, title: Optional[str] = None) -> str:
        """Execute and render in one step (the REPL's workhorse)."""
        return self.render(self.execute(source), title=title)

    def __repr__(self) -> str:
        bindings = ", ".join(f"{var}→{rel}" for var, rel in
                             sorted(self._ranges.items())) or "no ranges"
        return f"Session({self._db.kind} database; {bindings})"
