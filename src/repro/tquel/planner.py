"""The cost-based TQuel access planner.

For every range variable of a ``retrieve``, the evaluator can source the
candidate rows three ways:

- **naive** — scan every stored row as a Python object and test the
  temporal clauses per row.  Always available; the executable
  specification the other two paths owe their results to.
- **index** — probe the interval trees of
  :class:`~repro.core.indexing.DatabaseIndexCache` (transaction-time stab
  or range overlap), then evaluate predicates on the ``O(log n + k)``
  survivors.
- **columnar** — run vectorized mask kernels over the packed period and
  value columns of a :class:`~repro.core.columnar.ColumnarChunk`, then
  materialize only the selected rows.

This module picks between them per relation, from per-relation stats
(row counts, open/closed split, which accelerators are actually built)
— the cost model below is the *documented plan contract*; the formulas,
constants and decision rules are spelled out in
``docs/QUERY_PLANNING.md`` and a future planner change is expected to
edit both together.

Cost model (abstract units; one unit ≈ one Python-level row visit)::

    naive    = N · (C_ROW + C_PRED · P)  +  k · C_WHEN?
    index    = C_PROBE · log2(N + 2)  +  k · (C_ROW + C_PRED · P)  +  k · C_WHEN?
    columnar = C_PACK · N  (first build only)
             + C_SETUP + C_CELL · N · (1 + V + W)
             + k · (C_MAT + C_PRED · (P − V))

where ``N`` is total stored rows, ``k`` the estimated selectivity of the
transaction-time clauses, ``P`` the pushed single-variable conjuncts,
``V`` how many of those the columnar path can run as column kernels, and
``W``/``C_WHEN?`` a per-row ``when``-predicate term charged to the scalar
paths only when the statement's ``when`` clause is kernel-eligible.
``C_CELL`` depends on whether NumPy is importable — the fallback kernels
are tight float loops, several times slower than ndarray ops but still
far cheaper than per-row ``Period`` object calls.

Selectivity ``k`` is estimated *structurally*, not from sampled value
distributions: the open partition is exactly the current state, so a
default (``as of`` omitted) query selects ``open`` rows precisely; an
``as of`` stab keeps the open rows plus a thin slice of the closed past
(``closed / 8``); a ``through`` range keeps about half the closed past
(``closed / 2``).  Kinds without transaction time select everything.

Ties break deterministically: ``naive`` < ``index`` < ``columnar``.
A forced plan (``plan=naive|index|columnar``) skips the costing; forcing
an unavailable path degrades to ``naive`` with the reason recorded, so
forced-plan differential tests run on every database kind.
"""

from __future__ import annotations

import math
from typing import Dict, NamedTuple, Optional

from repro.core.base import Database
from repro.core.historical import HistoricalDatabase
from repro.core.rollback import RollbackDatabase, RollbackRelation
from repro.core.temporal import TemporalDatabase

__all__ = ["PLAN_MODES", "AccessPlan", "RelationProfile", "profile",
           "choose", "COSTS"]

#: The Session/Evaluator plan knob values.
PLAN_MODES = ("auto", "naive", "index", "columnar")

#: The cost constants — the tunable half of the plan contract
#: (docs/QUERY_PLANNING.md documents what each one charges for).
COSTS = {
    "C_ROW": 1.0,     # visit one stored row as a Python object
    "C_PRED": 0.6,    # one pushed conjunct, evaluated through the AST
    "C_WHEN": 1.0,    # one `when` predicate, evaluated through Periods
    "C_PROBE": 4.0,   # one interval-tree descent step (× log2 N)
    "C_MAT": 0.25,    # materialize one candidate from a chunk row
    "C_CELL_NUMPY": 0.03,  # one cell of an ndarray mask kernel
    "C_CELL_PY": 0.35,     # one cell of the fallback float-loop kernel
    "C_PACK": 1.5,    # pack one row into columns (first chunk build)
    "C_SETUP": 30.0,  # fixed planning/kernel setup (keeps tiny scans naive)
}


class RelationProfile(NamedTuple):
    """Per-relation stats the planner costs against."""

    relation: str
    total_rows: int
    open_rows: int
    #: Does the store carry transaction time (a closed/open partition)?
    has_tt: bool
    #: Can the index path beat a scan for this kind (tt trees exist)?
    index_available: bool
    #: Does this kind/representation have a columnar form at all?
    columnar_available: bool
    #: Is the chunk already built for the current relation version?
    chunk_ready: bool

    @property
    def closed_rows(self) -> int:
        return self.total_rows - self.open_rows


class Clauses(NamedTuple):
    """The statement shape, reduced to what the cost model reads."""

    has_as_of: bool
    has_through: bool
    #: Pushed single-variable conjuncts for this range variable.
    pushed: int
    #: How many of those the columnar path runs as column kernels.
    vectorizable: int
    #: Is the `when` clause kernel-eligible for this variable?
    when_kernel: bool


class AccessPlan(NamedTuple):
    """One chosen access path, with the costing that chose it."""

    path: str              # "naive" | "index" | "columnar"
    estimated_rows: int    # the selectivity estimate k
    reason: str            # deterministic one-line justification
    costs: Dict[str, Optional[float]]  # per-path cost, None = unavailable


def profile(database: Database, relation: str) -> RelationProfile:
    """Collect the per-relation stats for *relation* in *database*.

    Databases that lack the per-relation caches entirely — the sharded
    store's merged-read facade serves the TQuel surface but keeps its
    caches per shard — profile as cache-less, so the planner degrades
    to the naive scan instead of refusing to plan.
    """
    columnar = getattr(database, "columnar_cache", None)
    indexed = getattr(database, "index_cache", None) is not None
    if isinstance(database, TemporalDatabase):
        value = database.temporal(relation)
        open_rows = len(value._open) + len(value._open_extra)
        return RelationProfile(
            relation, len(value), open_rows, True, indexed,
            columnar is not None,
            columnar is not None and columnar.ready(relation))
    if isinstance(database, RollbackDatabase):
        store = database.store(relation)
        if isinstance(store, RollbackRelation):
            open_rows = len(store._open) + len(store._open_extra)
            return RelationProfile(
                relation, len(store), open_rows, True, indexed,
                columnar is not None,
                columnar is not None and columnar.ready(relation))
        # The duplicating StateSequence cube: no partition, no chunk,
        # no tree — every path degenerates to the representation's own
        # scan.
        total = sum(len(state) for _, state in store.states)
        return RelationProfile(relation, total, len(store.current()),
                               True, False, False, False)
    if isinstance(database, HistoricalDatabase):
        value = database.history(relation)
        total = len(value.rows)
        # Candidate sourcing on a historical database is always the full
        # recorded-facts scan; the valid-time tree accelerates timeslice,
        # not TQuel candidate streams — so the index path is not a
        # distinct plan here.
        return RelationProfile(relation, total, total, False, False,
                               columnar is not None,
                               columnar is not None
                               and columnar.ready(relation))
    total = len(database.snapshot(relation))
    return RelationProfile(relation, total, total, False, False, False,
                           False)


def estimate_rows(prof: RelationProfile, clauses: Clauses) -> int:
    """The selectivity estimate ``k`` (see module docstring)."""
    if not prof.has_tt:
        return prof.total_rows
    if clauses.has_through:
        return prof.open_rows + prof.closed_rows // 2
    if clauses.has_as_of:
        return prof.open_rows + prof.closed_rows // 8
    return prof.open_rows


def _cost_naive(prof: RelationProfile, clauses: Clauses, k: int) -> float:
    cost = prof.total_rows * (COSTS["C_ROW"]
                              + COSTS["C_PRED"] * clauses.pushed)
    if clauses.when_kernel:
        cost += k * COSTS["C_WHEN"]
    return cost


def _cost_index(prof: RelationProfile, clauses: Clauses,
                k: int) -> Optional[float]:
    if not prof.index_available:
        return None
    cost = (COSTS["C_PROBE"] * math.log2(prof.total_rows + 2)
            + k * (COSTS["C_ROW"] + COSTS["C_PRED"] * clauses.pushed))
    if clauses.when_kernel:
        cost += k * COSTS["C_WHEN"]
    return cost


def _cost_columnar(prof: RelationProfile, clauses: Clauses, k: int,
                   vectorized_kernels: bool) -> Optional[float]:
    if not prof.columnar_available:
        return None
    cell = COSTS["C_CELL_NUMPY"] if vectorized_kernels else COSTS["C_CELL_PY"]
    kernels = 1 + clauses.vectorizable + (1 if clauses.when_kernel else 0)
    cost = COSTS["C_SETUP"] + prof.total_rows * cell * kernels
    if not prof.chunk_ready:
        cost += COSTS["C_PACK"] * prof.total_rows
    cost += k * (COSTS["C_MAT"]
                 + COSTS["C_PRED"] * (clauses.pushed - clauses.vectorizable))
    return cost


def choose(prof: RelationProfile, clauses: Clauses, mode: str = "auto",
           vectorized_kernels: Optional[bool] = None) -> AccessPlan:
    """Pick the access path for one range variable.

    ``mode`` other than ``"auto"`` forces a path; an unavailable forced
    path degrades to ``naive`` (recorded in the reason) rather than
    failing, so plan-forcing is usable on every database kind.
    """
    if mode not in PLAN_MODES:
        raise ValueError(
            f"plan must be one of {', '.join(PLAN_MODES)}; got {mode!r}")
    if vectorized_kernels is None:
        from repro.core.columnar import numpy_available
        vectorized_kernels = numpy_available()
    k = estimate_rows(prof, clauses)
    costs: Dict[str, Optional[float]] = {
        "naive": _cost_naive(prof, clauses, k),
        "index": _cost_index(prof, clauses, k),
        "columnar": _cost_columnar(prof, clauses, k, vectorized_kernels),
    }
    if mode != "auto":
        if costs[mode] is None:
            return AccessPlan(
                "naive", k,
                f"forced plan {mode!r} unavailable here; using naive",
                costs)
        return AccessPlan(mode, k, f"forced plan {mode!r}", costs)
    # Deterministic choice: minimal cost, ties in naive < index <
    # columnar order (dict insertion order above).
    best = min((cost, path) for path, cost in costs.items()
               if cost is not None)[1]
    rendered = ", ".join(
        f"{path}={costs[path]:.1f}" if costs[path] is not None
        else f"{path}=n/a"
        for path in ("naive", "index", "columnar"))
    return AccessPlan(best, k, f"min cost ({rendered})", costs)
