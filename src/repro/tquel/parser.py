"""The TQuel recursive-descent parser.

Grammar (in the paper's concrete syntax; ``[...]`` optional, ``{...}``
repeated):

.. code-block:: text

    statement   := range | retrieve | append | delete | replace
                 | create | destroy
    range       := "range" "of" IDENT "is" IDENT
    retrieve    := "retrieve" ["into" IDENT] ["unique"]
                   "(" target {"," target} ")"
                   ["where" expr] ["when" tpred] [valid] [asof]
                   ["sort" "by" IDENT {"," IDENT}]
    target      := [IDENT "="] expr
    valid       := "valid" ("at" texpr | "from" texpr ["to" texpr])
    asof        := "as" "of" texpr
    append      := "append" "to" IDENT "(" assign {"," assign} ")" [valid]
    delete      := "delete" IDENT ["where" expr] [valid]
    replace     := "replace" IDENT "(" assign {"," assign} ")"
                   ["where" expr] [valid]
    create      := "create" ["event"] ["persistent"] IDENT
                   "(" IDENT "=" TYPE {"," IDENT "=" TYPE} ")"
                   ["key" "(" IDENT {"," IDENT} ")"]
    destroy     := "destroy" IDENT

    expr        := or-expr with and/or/not, comparisons (= != < <= > >=),
                   arithmetic (+ - * /), attributes (f.rank or rank),
                   string/number literals, aggregates
                   (count|sum|avg|min|max)[unique]"(" expr ")"
    tpred       := tor {"or" tor} ; tor := tand {"and" tand}
                   ; tand := ["not"] (  "(" tpred ")"
                                      | texpr ("overlap"|"precede"|"equal") texpr )
    texpr       := "start" "of" texpr | "end" "of" texpr
                 | "overlap" "(" texpr "," texpr ")"
                 | "extend" "(" texpr "," texpr ")"
                 | "now" | STRING | IDENT

Statements may be separated by optional semicolons;
:func:`parse_script` splits a multi-statement source.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import TQuelSyntaxError
from repro.relational.expression import (
    And, AttrRef, BinaryOp, Comparison, Const, Expression, Not, Or,
)
from repro.tquel.ast import (
    AggCall, AppendStmt, CreateStmt, DeleteStmt, DestroyStmt, RangeStmt,
    ReplaceStmt, RetrieveStmt, Statement, TargetItem, TConst, TEndOf, TExtend,
    TNow, TOverlap, TPAnd, TPCompare, TPNot, TPOr, TStartOf, TVar,
    TemporalExpr, TemporalPredicate, ValidClause,
)
from repro.tquel.lexer import Token, TokenType, tokenize

_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})
_TYPE_NAMES = frozenset({"string", "integer", "int", "float", "boolean",
                         "bool", "date"})
_COMPARATORS = ("=", "!=", "<=", ">=", "<", ">")


class Parser:
    """Parses one token stream into statements."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing ----------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._position + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> TQuelSyntaxError:
        token = token or self._peek()
        return TQuelSyntaxError(message, token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise self._error(f"expected {word!r}, found {token.value!r}", token)
        return token

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._advance()
        if not token.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}, found {token.value!r}", token)
        return token

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._advance()
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected {what}, found {token.value!r}", token)
        return token.value

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    # -- entry points -----------------------------------------------------------------

    def statements(self) -> List[Statement]:
        """Parse the whole stream as a sequence of statements."""
        parsed: List[Statement] = []
        while True:
            while self._accept_symbol(";"):
                pass
            if self._peek().type is TokenType.EOF:
                return parsed
            parsed.append(self.statement())

    def statement(self) -> Statement:
        """Parse a single statement."""
        token = self._peek()
        if token.is_keyword("range"):
            return self._range()
        if token.is_keyword("retrieve"):
            return self._retrieve()
        if token.is_keyword("append"):
            return self._append()
        if token.is_keyword("delete"):
            return self._delete()
        if token.is_keyword("replace"):
            return self._replace()
        if token.is_keyword("create"):
            return self._create()
        if token.is_keyword("destroy"):
            return self._destroy()
        raise self._error(
            f"expected a statement, found {token.value!r}", token)

    # -- statements ----------------------------------------------------------------------

    def _range(self) -> RangeStmt:
        self._expect_keyword("range")
        self._expect_keyword("of")
        variable = self._expect_ident("range variable")
        self._expect_keyword("is")
        relation = self._expect_ident("relation name")
        return RangeStmt(variable, relation)

    def _retrieve(self) -> RetrieveStmt:
        self._expect_keyword("retrieve")
        into = None
        if self._accept_keyword("into"):
            into = self._expect_ident("result relation name")
        unique = self._accept_keyword("unique")
        self._expect_symbol("(")
        targets = [self._target()]
        while self._accept_symbol(","):
            targets.append(self._target())
        self._expect_symbol(")")

        where = when = valid = as_of = as_of_through = None
        sort_by: Tuple[str, ...] = ()
        while True:
            if self._accept_keyword("where"):
                if where is not None:
                    raise self._error("duplicate where clause")
                where = self._expression()
            elif self._accept_keyword("when"):
                if when is not None:
                    raise self._error("duplicate when clause")
                when = self._temporal_predicate()
            elif self._peek().is_keyword("valid"):
                if valid is not None:
                    raise self._error("duplicate valid clause")
                valid = self._valid_clause()
            elif self._peek().is_keyword("as"):
                if as_of is not None:
                    raise self._error("duplicate as-of clause")
                as_of = self._as_of_clause()
                if self._accept_keyword("through"):
                    as_of_through = self._temporal_expr()
            elif self._accept_keyword("sort"):
                self._expect_keyword("by")
                names = [self._expect_ident("sort attribute")]
                while self._accept_symbol(","):
                    names.append(self._expect_ident("sort attribute"))
                sort_by = tuple(names)
            else:
                break
        return RetrieveStmt(targets, into=into, unique=unique, where=where,
                            when=when, valid=valid, as_of=as_of,
                            as_of_through=as_of_through, sort_by=sort_by)

    def _target(self) -> TargetItem:
        # [name =] expr; the name defaults to the referenced attribute.
        name = None
        if (self._peek().type is TokenType.IDENT
                and self._peek(1).is_symbol("=")
                and not self._peek(2).is_symbol("=")):
            # Lookahead: "ident =" starts a named target unless it is a
            # bare comparison like (rank = "full") — disambiguate by
            # treating "ident = expr" as a named target, which matches
            # Quel's target-list syntax.
            name = self._advance().value
            self._expect_symbol("=")
        expr = self._expression()
        if name is None:
            name = _default_target_name(expr)
            if name is None:
                raise self._error("this target expression needs an explicit "
                                  "name: write (name = expression)")
        return TargetItem(name, expr)

    def _assignments(self) -> List[Tuple[str, Expression]]:
        self._expect_symbol("(")
        assignments = [self._assignment()]
        while self._accept_symbol(","):
            assignments.append(self._assignment())
        self._expect_symbol(")")
        return assignments

    def _assignment(self) -> Tuple[str, Expression]:
        name = self._expect_ident("attribute name")
        self._expect_symbol("=")
        return name, self._expression()

    def _append(self) -> AppendStmt:
        self._expect_keyword("append")
        self._expect_keyword("to")
        relation = self._expect_ident("relation name")
        assignments = self._assignments()
        valid = self._valid_clause() if self._peek().is_keyword("valid") else None
        return AppendStmt(relation, assignments, valid)

    def _delete(self) -> DeleteStmt:
        self._expect_keyword("delete")
        variable = self._expect_ident("range variable")
        where = self._expression() if self._accept_keyword("where") else None
        valid = self._valid_clause() if self._peek().is_keyword("valid") else None
        return DeleteStmt(variable, where, valid)

    def _replace(self) -> ReplaceStmt:
        self._expect_keyword("replace")
        variable = self._expect_ident("range variable")
        assignments = self._assignments()
        where = self._expression() if self._accept_keyword("where") else None
        valid = self._valid_clause() if self._peek().is_keyword("valid") else None
        return ReplaceStmt(variable, assignments, where, valid)

    def _create(self) -> CreateStmt:
        self._expect_keyword("create")
        event = self._accept_keyword("event")
        self._accept_keyword("persistent")  # accepted, implied
        relation = self._expect_ident("relation name")
        self._expect_symbol("(")
        attributes = [self._attribute_def()]
        while self._accept_symbol(","):
            attributes.append(self._attribute_def())
        self._expect_symbol(")")
        key: Tuple[str, ...] = ()
        if self._accept_keyword("key"):
            self._expect_symbol("(")
            names = [self._expect_ident("key attribute")]
            while self._accept_symbol(","):
                names.append(self._expect_ident("key attribute"))
            self._expect_symbol(")")
            key = tuple(names)
        return CreateStmt(relation, tuple(attributes), key, event)

    def _attribute_def(self) -> Tuple[str, str]:
        name = self._expect_ident("attribute name")
        self._expect_symbol("=")
        token = self._advance()
        type_name = token.value.lower()
        if type_name not in _TYPE_NAMES:
            raise self._error(
                f"unknown type {token.value!r}; expected one of "
                f"{', '.join(sorted(_TYPE_NAMES))}", token)
        return name, type_name

    def _destroy(self) -> DestroyStmt:
        self._expect_keyword("destroy")
        return DestroyStmt(self._expect_ident("relation name"))

    # -- clauses ------------------------------------------------------------------------------

    def _valid_clause(self) -> ValidClause:
        self._expect_keyword("valid")
        if self._accept_keyword("at"):
            return ValidClause(at=self._temporal_expr())
        self._expect_keyword("from")
        from_ = self._temporal_expr()
        to = self._temporal_expr() if self._accept_keyword("to") else None
        return ValidClause(from_=from_, to=to)

    def _as_of_clause(self) -> TemporalExpr:
        self._expect_keyword("as")
        self._expect_keyword("of")
        return self._temporal_expr()

    # -- scalar expressions ----------------------------------------------------------------------

    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = And(left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._accept_keyword("not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token.is_keyword("is"):
            # `x is null` / `x is not null`.
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            from repro.relational.expression import IsNull
            test: Expression = IsNull(left)
            return Not(test) if negated else test
        if token.type is TokenType.SYMBOL and token.value in _COMPARATORS:
            self._advance()
            right = self._additive()
            return Comparison(token.value, left, right)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while self._peek().is_symbol("+") or self._peek().is_symbol("-"):
            op = self._advance().value
            left = BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._primary()
        while self._peek().is_symbol("*") or self._peek().is_symbol("/"):
            op = self._advance().value
            left = BinaryOp(op, left, self._primary())
        return left

    def _primary(self) -> Expression:
        token = self._peek()
        if token.is_symbol("("):
            self._advance()
            inner = self._expression()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.STRING:
            self._advance()
            return Const(token.value)
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return Const(float(token.value))
            return Const(int(token.value))
        if token.is_symbol("-"):
            self._advance()
            operand = self._primary()
            return BinaryOp("-", Const(0), operand)
        if token.type is TokenType.IDENT:
            return self._name_or_aggregate()
        raise self._error(
            f"expected an expression, found {token.value!r}", token)

    def _name_or_aggregate(self) -> Expression:
        name_token = self._advance()
        name = name_token.value
        if name.lower() in _AGGREGATES and self._peek().is_symbol("("):
            return self._aggregate(name.lower())
        if self._accept_symbol("."):
            attribute = self._expect_ident("attribute name")
            return AttrRef(name, attribute)
        return AttrRef(None, name)

    def _aggregate(self, func: str) -> Expression:
        self._expect_symbol("(")
        unique = self._accept_keyword("unique")
        operand = None
        if not self._peek().is_symbol(")"):
            operand = self._expression()
        self._expect_symbol(")")
        if operand is None and func != "count":
            raise self._error(f"{func} needs an operand")
        # AggCall is not an Expression; the analyzer/evaluator treat targets
        # containing it specially.  Wrap check happens there.
        return AggCall(func, operand, unique)  # type: ignore[return-value]

    # -- temporal expressions and predicates -------------------------------------------------------

    def _temporal_predicate(self) -> TemporalPredicate:
        left = self._temporal_and()
        while self._accept_keyword("or"):
            left = TPOr(left, self._temporal_and())
        return left

    def _temporal_and(self) -> TemporalPredicate:
        left = self._temporal_unary()
        while self._accept_keyword("and"):
            left = TPAnd(left, self._temporal_unary())
        return left

    def _temporal_unary(self) -> TemporalPredicate:
        if self._accept_keyword("not"):
            return TPNot(self._temporal_unary())
        if self._peek().is_symbol("("):
            self._advance()
            inner = self._temporal_predicate()
            self._expect_symbol(")")
            return inner
        return self._temporal_comparison()

    #: ``when`` comparison operators: the paper's three plus the Allen-style
    #: extensions (documented in the evaluator).
    _WHEN_OPERATORS = frozenset({
        "overlap", "precede", "equal",
        "meets", "before", "after", "during", "starts", "finishes",
    })

    def _temporal_comparison(self) -> TemporalPredicate:
        left = self._temporal_expr()
        token = self._advance()
        if token.type is TokenType.KEYWORD and token.value in self._WHEN_OPERATORS:
            return TPCompare(token.value, left, self._temporal_expr())
        raise self._error(
            f"expected one of {', '.join(sorted(self._WHEN_OPERATORS))}; "
            f"found {token.value!r}", token)

    def _temporal_expr(self) -> TemporalExpr:
        token = self._peek()
        if token.is_keyword("start"):
            self._advance()
            self._expect_keyword("of")
            return TStartOf(self._temporal_expr())
        if token.is_keyword("end"):
            self._advance()
            self._expect_keyword("of")
            return TEndOf(self._temporal_expr())
        if token.is_keyword("overlap"):
            self._advance()
            self._expect_symbol("(")
            left = self._temporal_expr()
            self._expect_symbol(",")
            right = self._temporal_expr()
            self._expect_symbol(")")
            return TOverlap(left, right)
        if token.is_keyword("extend"):
            self._advance()
            self._expect_symbol("(")
            left = self._temporal_expr()
            self._expect_symbol(",")
            right = self._temporal_expr()
            self._expect_symbol(")")
            return TExtend(left, right)
        if token.is_keyword("now"):
            self._advance()
            return TNow()
        if token.is_keyword("forever") or token.is_keyword("beginning"):
            self._advance()
            return TConst(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return TConst(token.value)
        if token.type is TokenType.IDENT:
            self._advance()
            return TVar(token.value)
        raise self._error(
            f"expected a temporal expression, found {token.value!r}", token)


def _default_target_name(expr) -> Optional[str]:
    """The implicit result-attribute name of a bare target expression."""
    if isinstance(expr, AttrRef):
        return expr.name
    if isinstance(expr, AggCall):
        if expr.operand is not None and isinstance(expr.operand, AttrRef):
            return f"{expr.func}_{expr.operand.name}"
        return expr.func
    return None


def parse_tokens(tokens: List[Token]) -> Statement:
    """Parse exactly one statement from an already-lexed token stream.

    Split out of :func:`parse` so callers that time lexing and parsing
    separately (the session's ``tquel.lex`` / ``tquel.parse`` spans) can
    run the two phases themselves.
    """
    parser = Parser(tokens)
    statement = parser.statement()
    while parser._accept_symbol(";"):
        pass
    trailing = parser._peek()
    if trailing.type is not TokenType.EOF:
        raise TQuelSyntaxError(
            f"unexpected input after statement: {trailing.value!r}",
            trailing.line, trailing.column)
    return statement


def parse(source: str) -> Statement:
    """Parse exactly one statement."""
    return parse_tokens(tokenize(source))


def parse_script(source: str) -> List[Statement]:
    """Parse a multi-statement script."""
    return Parser(tokenize(source)).statements()
