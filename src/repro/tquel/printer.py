"""Rendering: relations in the paper's figure style, and AST unparsing.

``render_*`` produce ASCII tables shaped like the paper's Figures 2, 4, 6,
8 and 9: explicit attributes first, then a double bar ``‖`` separating the
DBMS-maintained temporal columns ("the double vertical bars separate the
non-temporal domains from the DBMS-maintained temporal domains", §4.2).
Instants print in the paper's ``MM/DD/YY`` style with ``∞`` for the open
end.

:func:`unparse` turns an AST back into concrete TQuel syntax; the test
suite checks ``parse(unparse(parse(q))) == parse(q)``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from repro.core.historical import HistoricalRelation
from repro.core.rollback import RollbackRelation
from repro.core.temporal import TemporalRelation
from repro.relational.expression import (
    And, AttrRef, BinaryOp, Comparison, Const, Expression, IsNull, Not, Or,
)
from repro.relational.relation import Relation
from repro.tquel.ast import (
    AggCall, AppendStmt, CreateStmt, DeleteStmt, DestroyStmt, RangeStmt,
    ReplaceStmt, RetrieveStmt, Statement, TConst, TEndOf, TExtend, TNow,
    TOverlap, TPAnd, TPCompare, TPNot, TPOr, TStartOf, TVar, TemporalExpr,
    TemporalPredicate, ValidClause,
)

_DOUBLE_BAR = "‖"


def _format_cell(domain, value: Any) -> str:
    if value is None:
        return "-"
    return domain.format(value)


def _build_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 bar_after: Sequence[int] = (),
                 title: Optional[str] = None) -> str:
    """Assemble an ASCII table with ‖ separators after the given columns."""
    columns = list(zip(headers, *rows)) if rows else [(h,) for h in headers]
    widths = [max(len(str(cell)) for cell in column) for column in columns]

    def render_line(cells: Sequence[str]) -> str:
        line = "|"
        for index, (cell, width) in enumerate(zip(cells, widths)):
            line += " " + str(cell).ljust(width) + " "
            if index + 1 in bar_after and index + 1 < len(widths):
                line += _DOUBLE_BAR
            else:
                line += "|"
        return line

    rule = "+" + "-" * (len(render_line(headers)) - 2) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.extend([rule, render_line(headers), rule])
    lines.extend(render_line(row) for row in rows)
    lines.append(rule)
    return "\n".join(lines)


def render_static(relation: Relation, title: Optional[str] = None) -> str:
    """A static relation, as in Figure 2."""
    return relation.pretty(title)


def render_rollback(relation: RollbackRelation,
                    title: Optional[str] = None) -> str:
    """A rollback relation with transaction (start, end), as in Figure 4."""
    schema = relation.schema
    headers = list(schema.names) + ["transaction (start)", "(end)"]
    rows = []
    for row in relation.rows:
        cells = [_format_cell(schema.attribute(name).domain, row.data[name])
                 for name in schema.names]
        cells += [row.tt.start.paper_format(), row.tt.end.paper_format()]
        rows.append(cells)
    return _build_table(headers, rows, bar_after=(len(schema.names),),
                        title=title)


def render_historical(relation: HistoricalRelation,
                      title: Optional[str] = None,
                      event: bool = False) -> str:
    """A historical relation with valid (from, to) — Figure 6 — or (at)."""
    schema = relation.schema
    if event:
        headers = list(schema.names) + ["valid (at)"]
    else:
        headers = list(schema.names) + ["valid (from)", "(to)"]
    rows = []
    for row in relation.rows:
        cells = [_format_cell(schema.attribute(name).domain, row.data[name])
                 for name in schema.names]
        if event:
            cells.append(row.valid.start.paper_format())
        else:
            cells += [row.valid.start.paper_format(),
                      row.valid.end.paper_format()]
        rows.append(cells)
    return _build_table(headers, rows, bar_after=(len(schema.names),),
                        title=title)


def render_temporal(relation: TemporalRelation,
                    title: Optional[str] = None,
                    event: bool = False) -> str:
    """A temporal relation with all four timestamps, as in Figures 8 and 9."""
    schema = relation.schema
    if event:
        headers = (list(schema.names)
                   + ["valid (at)", "transaction (start)", "(end)"])
    else:
        headers = (list(schema.names)
                   + ["valid (from)", "(to)", "transaction (start)", "(end)"])
    rows = []
    for row in relation.rows:
        cells = [_format_cell(schema.attribute(name).domain, row.data[name])
                 for name in schema.names]
        if event:
            cells.append(row.valid.start.paper_format())
        else:
            cells += [row.valid.start.paper_format(),
                      row.valid.end.paper_format()]
        cells += [row.tt.start.paper_format(), row.tt.end.paper_format()]
        rows.append(cells)
    valid_columns = 1 if event else 2
    return _build_table(
        headers, rows,
        bar_after=(len(schema.names), len(schema.names) + valid_columns),
        title=title)


def render(result: Union[Relation, HistoricalRelation, TemporalRelation, None],
           title: Optional[str] = None, event: bool = False) -> str:
    """Render any query result in the appropriate figure style."""
    if result is None:
        return "(no result)"
    if isinstance(result, TemporalRelation):
        return render_temporal(result, title, event=event)
    if isinstance(result, HistoricalRelation):
        return render_historical(result, title, event=event)
    if isinstance(result, RollbackRelation):
        return render_rollback(result, title)
    return render_static(result, title)


# ---------------------------------------------------------------------------
# Unparsing
# ---------------------------------------------------------------------------

def _unparse_value(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def unparse_expression(expr: Union[Expression, AggCall]) -> str:
    """Concrete syntax of a scalar expression."""
    if isinstance(expr, AggCall):
        inner = unparse_expression(expr.operand) if expr.operand else ""
        unique = "unique " if expr.unique else ""
        return f"{expr.func}({unique}{inner})"
    if isinstance(expr, Const):
        return _unparse_value(expr.value)
    if isinstance(expr, AttrRef):
        if expr.variable is None:
            return expr.name
        return f"{expr.variable}.{expr.name}"
    if isinstance(expr, Comparison):
        return (f"({unparse_expression(expr.left)} {expr.op} "
                f"{unparse_expression(expr.right)})")
    if isinstance(expr, BinaryOp):
        return (f"({unparse_expression(expr.left)} {expr.op} "
                f"{unparse_expression(expr.right)})")
    if isinstance(expr, And):
        return (f"({unparse_expression(expr.left)} and "
                f"{unparse_expression(expr.right)})")
    if isinstance(expr, Or):
        return (f"({unparse_expression(expr.left)} or "
                f"{unparse_expression(expr.right)})")
    if isinstance(expr, Not):
        return f"(not {unparse_expression(expr.operand)})"
    if isinstance(expr, IsNull):
        return f"({unparse_expression(expr.operand)} is null)"
    raise ValueError(f"cannot unparse {expr!r}")


def unparse_temporal(expr: TemporalExpr) -> str:
    """Concrete syntax of a temporal expression."""
    if isinstance(expr, TVar):
        return expr.variable
    if isinstance(expr, TConst):
        if expr.literal in ("forever", "beginning"):
            return expr.literal
        return f'"{expr.literal}"'
    if isinstance(expr, TNow):
        return "now"
    if isinstance(expr, TStartOf):
        return f"start of {unparse_temporal(expr.operand)}"
    if isinstance(expr, TEndOf):
        return f"end of {unparse_temporal(expr.operand)}"
    if isinstance(expr, TOverlap):
        return (f"overlap({unparse_temporal(expr.left)}, "
                f"{unparse_temporal(expr.right)})")
    if isinstance(expr, TExtend):
        return (f"extend({unparse_temporal(expr.left)}, "
                f"{unparse_temporal(expr.right)})")
    raise ValueError(f"cannot unparse {expr!r}")


def unparse_predicate(predicate: TemporalPredicate) -> str:
    """Concrete syntax of a when-predicate."""
    if isinstance(predicate, TPCompare):
        return (f"{unparse_temporal(predicate.left)} {predicate.op} "
                f"{unparse_temporal(predicate.right)}")
    if isinstance(predicate, TPAnd):
        return (f"({unparse_predicate(predicate.left)} and "
                f"{unparse_predicate(predicate.right)})")
    if isinstance(predicate, TPOr):
        return (f"({unparse_predicate(predicate.left)} or "
                f"{unparse_predicate(predicate.right)})")
    if isinstance(predicate, TPNot):
        return f"not ({unparse_predicate(predicate.operand)})"
    raise ValueError(f"cannot unparse {predicate!r}")


def _unparse_valid(valid: ValidClause) -> str:
    if valid.is_event:
        return f"valid at {unparse_temporal(valid.at)}"
    text = f"valid from {unparse_temporal(valid.from_)}"
    if valid.to is not None:
        text += f" to {unparse_temporal(valid.to)}"
    return text


def unparse(statement: Statement) -> str:
    """Concrete TQuel syntax of any statement (parse∘unparse is identity)."""
    if isinstance(statement, RangeStmt):
        return f"range of {statement.variable} is {statement.relation}"
    if isinstance(statement, RetrieveStmt):
        pieces = ["retrieve"]
        if statement.into:
            pieces.append(f"into {statement.into}")
        if statement.unique:
            pieces.append("unique")
        targets = ", ".join(f"{t.name} = {unparse_expression(t.expr)}"
                            for t in statement.targets)
        pieces.append(f"({targets})")
        if statement.where is not None:
            pieces.append(f"where {unparse_expression(statement.where)}")
        if statement.when is not None:
            pieces.append(f"when {unparse_predicate(statement.when)}")
        if statement.valid is not None:
            pieces.append(_unparse_valid(statement.valid))
        if statement.as_of is not None:
            pieces.append(f"as of {unparse_temporal(statement.as_of)}")
            if statement.as_of_through is not None:
                pieces.append(
                    f"through {unparse_temporal(statement.as_of_through)}")
        if statement.sort_by:
            pieces.append("sort by " + ", ".join(statement.sort_by))
        return " ".join(pieces)
    if isinstance(statement, AppendStmt):
        assigns = ", ".join(f"{name} = {unparse_expression(expr)}"
                            for name, expr in statement.assignments)
        text = f"append to {statement.relation} ({assigns})"
        if statement.valid is not None:
            text += " " + _unparse_valid(statement.valid)
        return text
    if isinstance(statement, DeleteStmt):
        text = f"delete {statement.variable}"
        if statement.where is not None:
            text += f" where {unparse_expression(statement.where)}"
        if statement.valid is not None:
            text += " " + _unparse_valid(statement.valid)
        return text
    if isinstance(statement, ReplaceStmt):
        assigns = ", ".join(f"{name} = {unparse_expression(expr)}"
                            for name, expr in statement.assignments)
        text = f"replace {statement.variable} ({assigns})"
        if statement.where is not None:
            text += f" where {unparse_expression(statement.where)}"
        if statement.valid is not None:
            text += " " + _unparse_valid(statement.valid)
        return text
    if isinstance(statement, CreateStmt):
        attrs = ", ".join(f"{name} = {type_name}"
                          for name, type_name in statement.attributes)
        text = "create "
        if statement.event:
            text += "event "
        text += f"{statement.relation} ({attrs})"
        if statement.key:
            text += " key (" + ", ".join(statement.key) + ")"
        return text
    if isinstance(statement, DestroyStmt):
        return f"destroy {statement.relation}"
    raise ValueError(f"cannot unparse {statement!r}")
