"""TQuel abstract syntax.

Statements cover the paper's whole surface: ``range of``, ``retrieve``
(with ``where``, ``when``, ``valid``, ``as of``), the update statements
``append``/``delete``/``replace`` (with valid clauses), and the DDL
``create``/``destroy``.

Scalar expressions (``where`` clauses, target lists) reuse the engine AST
from :mod:`repro.relational.expression` directly, so no translation layer
is needed.  Temporal expressions and predicates (``when``/``valid``/``as
of`` clauses) are defined here.

Temporal semantics (documented contract, uniform rather than special-cased):

- a temporal expression denotes a **period**;
- a range variable denotes the valid period of its current tuple;
- a string literal denotes the single-chronon period at that instant;
  ``now`` likewise at evaluation time;
- ``start of e`` / ``end of e`` denote the first / last chronon of ``e``
  (``end of`` an open-ended period is an evaluation error);
- ``overlap(e1, e2)`` denotes the intersection (an *empty* intersection
  filters the candidate tuple out); ``extend(e1, e2)`` the smallest
  covering period;
- in ``valid from e1 to e2``, each bound resolves to the **start** of its
  operand period, and the result is the half-open ``[start(e1),
  start(e2))`` — so ``to "12/01/82"`` excludes 12/01/82, matching the
  half-open columns of Figure 6;
- ``when`` predicates compare periods: ``overlap`` (share a chronon),
  ``precede`` (all-before, meeting allowed), ``equal``; combined with
  ``and`` / ``or`` / ``not``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

from repro.relational.expression import Expression


# ---------------------------------------------------------------------------
# Temporal expressions (denote periods)
# ---------------------------------------------------------------------------

class TemporalExpr:
    """Base class of period-denoting expressions."""


@dataclasses.dataclass(frozen=True)
class TVar(TemporalExpr):
    """The valid period of a range variable's current tuple."""

    variable: str


@dataclasses.dataclass(frozen=True)
class TConst(TemporalExpr):
    """An instant literal: the single-chronon period at that instant."""

    literal: str


@dataclasses.dataclass(frozen=True)
class TNow(TemporalExpr):
    """``now``: the single-chronon period at evaluation time."""


@dataclasses.dataclass(frozen=True)
class TStartOf(TemporalExpr):
    """``start of e``: the first chronon of the operand period."""

    operand: TemporalExpr


@dataclasses.dataclass(frozen=True)
class TEndOf(TemporalExpr):
    """``end of e``: the last chronon of the operand period."""

    operand: TemporalExpr


@dataclasses.dataclass(frozen=True)
class TOverlap(TemporalExpr):
    """``overlap(e1, e2)``: the intersection period (empty filters out)."""

    left: TemporalExpr
    right: TemporalExpr


@dataclasses.dataclass(frozen=True)
class TExtend(TemporalExpr):
    """``extend(e1, e2)``: the smallest period covering both operands."""

    left: TemporalExpr
    right: TemporalExpr


# ---------------------------------------------------------------------------
# Temporal predicates (the ``when`` clause)
# ---------------------------------------------------------------------------

class TemporalPredicate:
    """Base class of boolean predicates over periods."""


@dataclasses.dataclass(frozen=True)
class TPCompare(TemporalPredicate):
    """``e1 overlap e2`` / ``e1 precede e2`` / ``e1 equal e2``."""

    op: str  # "overlap" | "precede" | "equal"
    left: TemporalExpr
    right: TemporalExpr


@dataclasses.dataclass(frozen=True)
class TPAnd(TemporalPredicate):
    """Conjunction of temporal predicates."""

    left: TemporalPredicate
    right: TemporalPredicate


@dataclasses.dataclass(frozen=True)
class TPOr(TemporalPredicate):
    """Disjunction of temporal predicates."""

    left: TemporalPredicate
    right: TemporalPredicate


@dataclasses.dataclass(frozen=True)
class TPNot(TemporalPredicate):
    """Negation of a temporal predicate."""

    operand: TemporalPredicate


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ValidClause:
    """``valid from e1 to e2`` (interval) or ``valid at e`` (event)."""

    at: Optional[TemporalExpr] = None
    from_: Optional[TemporalExpr] = None
    to: Optional[TemporalExpr] = None

    @property
    def is_event(self) -> bool:
        """True for the ``valid at`` form."""
        return self.at is not None


@dataclasses.dataclass(eq=False)
class AggCall:
    """An aggregate in a target list: ``count(f.name)``, ``avg(f.salary)``...

    ``operand is None`` only for bare ``count()``.
    """

    func: str
    operand: Optional[Expression]
    unique: bool = False

    # Expression overloads ==, so compare/hash by canonical repr.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggCall):
            return NotImplemented
        return (self.func == other.func and self.unique == other.unique
                and repr(self.operand) == repr(other.operand))

    def __hash__(self) -> int:
        return hash((self.func, self.unique, repr(self.operand)))


#: A target-list entry: result attribute name plus the defining expression.
@dataclasses.dataclass(frozen=True)
class TargetItem:
    """``name = expression`` (name defaults to the attribute referenced)."""

    name: str
    expr: Union[Expression, AggCall]

    # Expression overloads == to build Comparison nodes, which breaks the
    # generated dataclass __eq__; compare by repr instead.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TargetItem):
            return NotImplemented
        return self.name == other.name and repr(self.expr) == repr(other.expr)

    def __hash__(self) -> int:
        return hash((self.name, repr(self.expr)))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    """Base class of TQuel statements."""


@dataclasses.dataclass(frozen=True)
class RangeStmt(Statement):
    """``range of f is faculty``."""

    variable: str
    relation: str


@dataclasses.dataclass(eq=False)
class RetrieveStmt(Statement):
    """``retrieve [into name] [unique] (targets) [where] [when] [valid] [as of] [sort by]``.

    ``as of e1 through e2`` (``as_of_through`` set) retrieves over the
    inclusive transaction-time *range*: every candidate that was part of
    some database state between the two instants.
    """

    targets: List[TargetItem]
    into: Optional[str] = None
    unique: bool = False
    where: Optional[Expression] = None
    when: Optional[TemporalPredicate] = None
    valid: Optional[ValidClause] = None
    as_of: Optional[TemporalExpr] = None
    as_of_through: Optional[TemporalExpr] = None
    sort_by: Tuple[str, ...] = ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RetrieveStmt):
            return NotImplemented
        return _stmt_fingerprint(self) == _stmt_fingerprint(other)

    def __hash__(self) -> int:
        return hash(_stmt_fingerprint(self))


@dataclasses.dataclass(eq=False)
class AppendStmt(Statement):
    """``append to faculty (name = "Tom", ...) [valid ...]``."""

    relation: str
    assignments: List[Tuple[str, Expression]]
    valid: Optional[ValidClause] = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AppendStmt):
            return NotImplemented
        return _stmt_fingerprint(self) == _stmt_fingerprint(other)

    def __hash__(self) -> int:
        return hash(_stmt_fingerprint(self))


@dataclasses.dataclass(eq=False)
class DeleteStmt(Statement):
    """``delete f [where ...] [valid ...]``."""

    variable: str
    where: Optional[Expression] = None
    valid: Optional[ValidClause] = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeleteStmt):
            return NotImplemented
        return _stmt_fingerprint(self) == _stmt_fingerprint(other)

    def __hash__(self) -> int:
        return hash(_stmt_fingerprint(self))


@dataclasses.dataclass(eq=False)
class ReplaceStmt(Statement):
    """``replace f (rank = "full") [where ...] [valid ...]``."""

    variable: str
    assignments: List[Tuple[str, Expression]]
    where: Optional[Expression] = None
    valid: Optional[ValidClause] = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReplaceStmt):
            return NotImplemented
        return _stmt_fingerprint(self) == _stmt_fingerprint(other)

    def __hash__(self) -> int:
        return hash(_stmt_fingerprint(self))


@dataclasses.dataclass(frozen=True)
class CreateStmt(Statement):
    """``create [event] faculty (name = string, rank = string) [key (name)]``.

    Attribute type names: ``string``, ``integer``, ``float``, ``boolean``,
    ``date`` (user-defined time — stored, never interpreted).
    """

    relation: str
    attributes: Tuple[Tuple[str, str], ...]
    key: Tuple[str, ...] = ()
    event: bool = False


@dataclasses.dataclass(frozen=True)
class DestroyStmt(Statement):
    """``destroy faculty``."""

    relation: str


def _stmt_fingerprint(stmt: Statement) -> str:
    """A canonical string for statement equality (expressions compare by repr)."""
    return repr(dataclasses.asdict(stmt)) if dataclasses.is_dataclass(stmt) else repr(stmt)
