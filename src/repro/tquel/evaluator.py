"""The TQuel evaluator.

Executes analyzed statements against a database.  The evaluation semantics
follow the paper's closure requirements:

- on a **static** database, ``retrieve`` yields a static
  :class:`~repro.relational.relation.Relation`;
- on a **static rollback** database, ``retrieve ... as of t`` first rolls
  every ranged relation back to ``t`` and then behaves statically — "the
  result of a query on a static rollback database is a pure static
  relation" (§4.2);
- on a **historical** database, ``retrieve`` yields a
  :class:`~repro.core.historical.HistoricalRelation`; the derived tuple's
  valid time defaults to the intersection of the valid times of the range
  variables appearing in the target list (explicit ``valid`` clauses
  override), "which may be used in further historical queries" (§4.3);
- on a **temporal** database, ``retrieve`` yields a
  :class:`~repro.core.temporal.TemporalRelation`; candidate rows are those
  visible as of the ``as of`` instant (default: now), their transaction
  times are *retained*, not clipped — reproducing the worked example of
  §4.4, whose result row keeps transaction time ``[08/25/77, 12/15/82)``
  under ``as of "12/10/82"``.

Aggregate retrieves group by the non-aggregate targets and always produce
a static relation, computed over the candidate rows — which for the
valid-time kinds means the recorded *facts* (one per tuple-validity row),
not a single timeslice.

**Access paths and the equivalence obligation.**  Candidate rows can be
sourced three ways — a naive row-at-a-time scan, an interval-tree probe,
or the vectorized mask kernels of :mod:`repro.core.columnar` — chosen per
range variable by :mod:`repro.tquel.planner` (or forced via the ``plan``
knob).  The naive path is the executable specification: every other path
must yield the *same candidate multiset* for the same statement, and
every vectorized kernel (transaction-time stab/overlap, ``when``
comparison, attribute-comparison pushdown, compiled projection) owes
row-for-row agreement with its scalar twin, including null semantics and
raised error types.  The randomized differential suite
(``tests/tquel/test_differential.py``) runs every query shape under all
forced plans and asserts identical results.

In ``auto`` mode the evaluator also consults the database's
:class:`~repro.core.resultcache.ResultCache`: filtered candidate streams
keyed by ``(relation, as-of pin, predicate fingerprint)`` are cached
forever when the pin lies in the immutable (closed) past and
epoch-invalidated otherwise, so a commit to an open store can never
serve a stale as-of answer.
"""

from __future__ import annotations

import itertools
from typing import (Any, Dict, List, Mapping, NamedTuple, Optional, Sequence,
                    Set, Tuple as PyTuple, Union)

from repro.core.base import Database
from repro.core.historical import HistoricalDatabase, HistoricalRelation, HistoricalRow
from repro.core.rollback import RollbackDatabase, RollbackRelation
from repro.core.temporal import BitemporalRow, TemporalDatabase, TemporalRelation
from repro.errors import TQuelSemanticError
from repro.obs import runtime as _obs
from repro.relational.domain import Domain
from repro.relational.expression import (
    And, AttrRef, BinaryOp, Comparison, Const, Expression, IsNull, Not, Or,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.tuple import Tuple
from repro.time.instant import Instant, NEG_INF, POS_INF
from repro.time.period import Period
from repro.tquel.ast import (
    AggCall, AppendStmt, CreateStmt, DeleteStmt, DestroyStmt, RangeStmt,
    ReplaceStmt, RetrieveStmt, Statement, TargetItem, TConst, TEndOf, TExtend,
    TNow, TOverlap, TPAnd, TPCompare, TPNot, TPOr, TStartOf, TVar,
    TemporalExpr, TemporalPredicate, ValidClause,
)
from repro.tquel import planner as _planner

#: What execute() can return: a derived relation, a commit time, or None.
Result = Union[Relation, HistoricalRelation, TemporalRelation, Instant, None]

_TYPE_MAP = {
    "string": Domain.STRING,
    "integer": Domain.INTEGER,
    "int": Domain.INTEGER,
    "float": Domain.FLOAT,
    "boolean": Domain.BOOLEAN,
    "bool": Domain.BOOLEAN,
}


class _Candidate(NamedTuple):
    """One candidate binding for a range variable."""

    data: Tuple
    valid: Optional[Period]
    tt: Optional[Period]


# ---------------------------------------------------------------------------
# Temporal expression / predicate evaluation
# ---------------------------------------------------------------------------

def eval_period(expr: TemporalExpr, periods: Mapping[str, Period],
                now: Instant) -> Optional[Period]:
    """Evaluate a temporal expression to a period (None = empty overlap)."""
    if isinstance(expr, TVar):
        return periods[expr.variable]
    if isinstance(expr, TNow):
        return Period.at(now)
    if isinstance(expr, TConst):
        if expr.literal == "forever":
            raise TQuelSemanticError(
                "'forever' may only appear as a valid/as-of bound"
            )
        if expr.literal == "beginning":
            raise TQuelSemanticError(
                "'beginning' may only appear as a valid/as-of bound"
            )
        return Period.at(Instant.parse(expr.literal))
    if isinstance(expr, TStartOf):
        inner = eval_period(expr.operand, periods, now)
        if inner is None:
            return None
        if not inner.start.is_finite:
            raise TQuelSemanticError(
                f"start of {inner} is unbounded"
            )
        return inner.start_of()
    if isinstance(expr, TEndOf):
        inner = eval_period(expr.operand, periods, now)
        if inner is None:
            return None
        if not inner.end.is_finite:
            raise TQuelSemanticError(f"end of {inner} is unbounded")
        return inner.end_of()
    if isinstance(expr, TOverlap):
        left = eval_period(expr.left, periods, now)
        right = eval_period(expr.right, periods, now)
        if left is None or right is None:
            return None
        return left.intersect(right)
    if isinstance(expr, TExtend):
        left = eval_period(expr.left, periods, now)
        right = eval_period(expr.right, periods, now)
        if left is None or right is None:
            return None
        return left.extend(right)
    raise TQuelSemanticError(f"unknown temporal expression {expr!r}")


def eval_bound(expr: TemporalExpr, periods: Mapping[str, Period],
               now: Instant) -> Optional[Instant]:
    """Evaluate a temporal expression as an instant bound.

    Uniform rule: a bound is the **start** of the denoted period;
    ``forever``/``beginning`` denote the infinities.  Returns ``None`` when
    an ``overlap(...)`` operand is empty (the candidate is filtered out).
    """
    if isinstance(expr, TConst) and expr.literal == "forever":
        return POS_INF
    if isinstance(expr, TConst) and expr.literal == "beginning":
        return NEG_INF
    if isinstance(expr, TEndOf):
        # `to end of e` should cover e's last chronon: resolve to e.end.
        inner = eval_period(expr.operand, periods, now)
        if inner is None:
            return None
        if not inner.end.is_finite:
            return POS_INF
        return inner.end
    period = eval_period(expr, periods, now)
    if period is None:
        return None
    return period.start


def eval_temporal_predicate(predicate: TemporalPredicate,
                            periods: Mapping[str, Period],
                            now: Instant) -> bool:
    """Evaluate a ``when`` predicate under the row's valid periods."""
    if isinstance(predicate, TPCompare):
        left = eval_period(predicate.left, periods, now)
        right = eval_period(predicate.right, periods, now)
        if left is None or right is None:
            return False
        # The paper's three operators...
        if predicate.op == "overlap":
            return left.overlaps(right)
        if predicate.op == "precede":
            return left.precedes(right)
        if predicate.op == "equal":
            return left == right
        # ...and the Allen-style extensions:
        # meets    — left ends exactly where right begins;
        # before   — strictly earlier, with a gap (precede minus meets);
        # after    — the converse of before;
        # during   — left contained in right (shared endpoints allowed);
        # starts   — contained and sharing the start;
        # finishes — contained and sharing the end.
        if predicate.op == "meets":
            return left.meets(right)
        if predicate.op == "before":
            return left.precedes(right) and not left.meets(right)
        if predicate.op == "after":
            return right.precedes(left) and not right.meets(left)
        if predicate.op == "during":
            return right.contains_period(left)
        if predicate.op == "starts":
            return right.contains_period(left) and left.start == right.start
        if predicate.op == "finishes":
            return right.contains_period(left) and left.end == right.end
        raise TQuelSemanticError(f"unknown temporal operator {predicate.op!r}")
    if isinstance(predicate, TPAnd):
        return (eval_temporal_predicate(predicate.left, periods, now)
                and eval_temporal_predicate(predicate.right, periods, now))
    if isinstance(predicate, TPOr):
        return (eval_temporal_predicate(predicate.left, periods, now)
                or eval_temporal_predicate(predicate.right, periods, now))
    if isinstance(predicate, TPNot):
        return not eval_temporal_predicate(predicate.operand, periods, now)
    raise TQuelSemanticError(f"unknown temporal predicate {predicate!r}")


def split_conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Flatten a where-clause into its top-level conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def partition_pushdown(where: Optional[Expression]
                       ) -> PyTuple[Dict[str, List[Expression]],
                                    List[Expression]]:
    """Split a where-clause for selection pushdown.

    Conjuncts that reference exactly one range variable can filter that
    variable's candidate stream *before* the product is formed, turning
    an O(n·m) scan-then-filter into O(n'+m') streams — the textbook
    selection-pushdown rewrite, safe because conjunction commutes with
    the product.  Returns ``(per-variable conjuncts, residual conjuncts)``.
    """
    per_variable: Dict[str, List[Expression]] = {}
    residual: List[Expression] = []
    for conjunct in split_conjuncts(where):
        variables = {variable for variable, _ in conjunct.references()}
        if len(variables) == 1:
            (variable,) = variables
            if variable is not None:
                per_variable.setdefault(variable, []).append(conjunct)
                continue
        residual.append(conjunct)
    return per_variable, residual


def temporal_variables(node) -> Set[str]:
    """Every range variable a temporal expression/predicate mentions."""
    if isinstance(node, TVar):
        return {node.variable}
    if isinstance(node, (TStartOf, TEndOf)):
        return temporal_variables(node.operand)
    if isinstance(node, (TOverlap, TExtend, TPCompare, TPAnd, TPOr)):
        return temporal_variables(node.left) | temporal_variables(node.right)
    if isinstance(node, TPNot):
        return temporal_variables(node.operand)
    return set()


def contains_now(node) -> bool:
    """Does a temporal expression read the clock (``now``)?

    A clock-dependent kernel constant makes a cached stream stale the
    moment the clock moves, even without a commit — so such streams are
    never result-cached.
    """
    if isinstance(node, TNow):
        return True
    if isinstance(node, (TStartOf, TEndOf, TPNot)):
        return contains_now(node.operand)
    if isinstance(node, (TOverlap, TExtend, TPCompare, TPAnd, TPOr)):
        return contains_now(node.left) or contains_now(node.right)
    return False


#: The ``when`` operators with a vectorized kernel in
#: :meth:`repro.core.columnar.ColumnarChunk.when_mask` — exactly the set
#: :func:`eval_temporal_predicate` accepts, so an unknown operator always
#: raises through the naive path instead of a kernel ``KeyError``.
_WHEN_KERNEL_OPS = frozenset((
    "overlap", "precede", "equal", "meets", "before", "after", "during",
    "starts", "finishes",
))


class _WhenKernel(NamedTuple):
    """A compiled, kernel-eligible ``when`` clause.

    Eligible means: the clause is a single ``TPCompare`` with exactly one
    side being a bare range variable and the other side a constant
    temporal expression (no range variables), so the predicate can run
    as one vectorized mask over that variable's valid column.  ``constant
    is None`` records an empty ``overlap(...)`` constant — the predicate
    is then false for every row, exactly as
    :func:`eval_temporal_predicate` would report.
    """

    variable: str
    op: str
    constant: Optional[Period]
    var_on_left: bool
    #: Did the constant read ``now``?  Clock-dependent streams are never
    #: result-cached (the clock can move without a commit).
    clock_dependent: bool


def when_kernel_spec(statement: RetrieveStmt,
                     now: Instant) -> Optional[_WhenKernel]:
    """Compile the ``when`` clause to a :class:`_WhenKernel`, if eligible."""
    when = statement.when
    if not isinstance(when, TPCompare) or when.op not in _WHEN_KERNEL_OPS:
        return None
    left_is_var = isinstance(when.left, TVar)
    right_is_var = isinstance(when.right, TVar)
    if left_is_var == right_is_var:
        return None
    var_side, const_side = ((when.left, when.right) if left_is_var
                            else (when.right, when.left))
    if temporal_variables(const_side):
        return None
    try:
        constant = eval_period(const_side, {}, now)
    except TQuelSemanticError:
        # Constants eval_period rejects (bare `forever` etc.) must raise
        # identically per row — leave them to the naive predicate.
        return None
    return _WhenKernel(var_side.variable, when.op, constant, left_is_var,
                       contains_now(const_side))


def columnar_compare_spec(conjunct: Expression, variable: str
                          ) -> Optional[PyTuple[str, str, Any, bool]]:
    """The ``(attr, op, value, attr_on_left)`` kernel form of a conjunct.

    Only a direct attribute-vs-literal comparison vectorizes; anything
    else (arithmetic, attr-vs-attr, ``is null``, disjunctions) runs
    per-row through the expression AST on the already-selected indices.
    """
    if not isinstance(conjunct, Comparison):
        return None
    left, right = conjunct.left, conjunct.right
    if (isinstance(left, AttrRef) and left.variable == variable
            and isinstance(right, Const)):
        return (left.name, conjunct.op, right.value, True)
    if (isinstance(right, AttrRef) and right.variable == variable
            and isinstance(left, Const)):
        return (right.name, conjunct.op, left.value, False)
    return None


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------

class Evaluator:
    """Executes statements against one database and a range environment.

    ``plan`` selects the access path for every range variable:
    ``"auto"`` (cost-based, the default) or a forced
    ``"naive"``/``"index"``/``"columnar"`` for debugging and differential
    testing.  Only ``auto`` consults the result cache — forced plans must
    exercise their path, not a memo of it.
    """

    def __init__(self, database: Database, ranges: Mapping[str, str],
                 plan: str = "auto") -> None:
        self._db = database
        self._ranges = dict(ranges)
        self.plan = plan

    @property
    def plan(self) -> str:
        """The plan mode (one of :data:`repro.tquel.planner.PLAN_MODES`)."""
        return self._plan

    @plan.setter
    def plan(self, mode: str) -> None:
        if mode not in _planner.PLAN_MODES:
            raise ValueError(
                f"plan must be one of {', '.join(_planner.PLAN_MODES)}; "
                f"got {mode!r}")
        self._plan = mode

    # -- dispatch ------------------------------------------------------------------

    def execute(self, statement: Statement) -> Result:
        """Execute one (already analyzed) statement."""
        if isinstance(statement, RangeStmt):
            self._ranges[statement.variable] = statement.relation
            return None
        if isinstance(statement, RetrieveStmt):
            return self.retrieve(statement)
        if isinstance(statement, AppendStmt):
            return self._append(statement)
        if isinstance(statement, DeleteStmt):
            return self._delete(statement)
        if isinstance(statement, ReplaceStmt):
            return self._replace(statement)
        if isinstance(statement, CreateStmt):
            return self._create(statement)
        if isinstance(statement, DestroyStmt):
            return self._db.drop(statement.relation)
        raise TQuelSemanticError(f"cannot execute {statement!r}")

    # -- candidate streams ------------------------------------------------------------

    def _candidates(self, relation: str, as_of: Optional[Instant],
                    through: Optional[Instant] = None) -> List[_Candidate]:
        """The candidate rows of one relation, per database kind.

        ``through`` (with ``as_of``) selects the transaction-time *range*
        form: everything that was part of some state between the two
        instants, inclusive.
        """
        db = self._db
        if isinstance(db, TemporalDatabase):
            if through is not None:
                ranged = db.rollback_range(relation, as_of, through)
                return [_Candidate(row.data, row.valid, row.tt)
                        for row in ranged.rows]
            when = as_of if as_of is not None else db.now()
            # db.visible stabs the transaction-time index when the
            # database keeps one (O(log n + k)); otherwise it scans.
            return [
                _Candidate(row.data, row.valid, row.tt)
                for row in db.visible(relation, when)
            ]
        if isinstance(db, HistoricalDatabase):
            return [_Candidate(row.data, row.valid, None)
                    for row in db.history(relation).rows]
        if isinstance(db, RollbackDatabase):
            if through is not None:
                base = db.rollback_range(relation, as_of, through)
            elif as_of is not None:
                base = db.rollback(relation, as_of)
            else:
                base = db.snapshot(relation)
            return [_Candidate(row, None, None) for row in base]
        return [_Candidate(row, None, None)
                for row in db.snapshot(relation)]

    def _candidates_naive(self, relation: str, as_of: Optional[Instant],
                          through: Optional[Instant] = None
                          ) -> List[_Candidate]:
        """The raw-scan twin of :meth:`_candidates`.

        Same rows in store order, but sourced by walking every stored row
        and testing the temporal clauses per row — never through an
        interval tree.  This is the executable specification the index
        and columnar paths are differentially tested against.
        """
        db = self._db
        if isinstance(db, TemporalDatabase):
            value = db.temporal(relation)
            if through is not None:
                if as_of is None:  # degenerate bound: mirror the legacy path
                    return self._candidates(relation, as_of, through)
                window = Period.from_inclusive(as_of, through)
                return [_Candidate(row.data, row.valid, row.tt)
                        for row in value.rows if row.tt.overlaps(window)]
            when = as_of if as_of is not None else db.now()
            return [_Candidate(row.data, row.valid, row.tt)
                    for row in value.rows if row.tt.contains(when)]
        if isinstance(db, HistoricalDatabase):
            return [_Candidate(row.data, row.valid, None)
                    for row in db.history(relation).rows]
        if isinstance(db, RollbackDatabase):
            store = db.store(relation)
            if not isinstance(store, RollbackRelation):
                # StateSequence: the representation's own state walk *is*
                # the naive scan (no partition, no index, no chunk).
                return self._candidates(relation, as_of, through)
            if through is not None:
                if as_of is None:
                    return self._candidates(relation, as_of, through)
                window = Period.from_inclusive(as_of, through)
                data = [row.data for row in store.rows
                        if row.tt.overlaps(window)]
            elif as_of is not None:
                data = [row.data for row in store.rows
                        if row.tt.contains(as_of)]
            else:
                data = list(store.current())
            # Relation construction dedups tuples (first occurrence);
            # mirror it so counts and multiplicity match.
            return [_Candidate(row, None, None)
                    for row in dict.fromkeys(data)]
        return [_Candidate(row, None, None)
                for row in db.snapshot(relation)]

    def _columnar_stream(self, relation: str, as_of: Optional[Instant],
                         through: Optional[Instant],
                         conjuncts: Sequence[Expression], variable: str,
                         kernel: Optional[_WhenKernel], now: Instant
                         ) -> Optional[PyTuple[int, PyTuple[_Candidate, ...],
                                               bool]]:
        """Source one variable's stream through the columnar kernels.

        Returns ``(pre-pushdown count, filtered candidates, when
        applied?)``, or ``None`` when no chunk exists for the relation
        (the caller then degrades to the naive scan).  Filter order
        matches the naive path — visibility, then pushed conjuncts in
        clause order restricted to surviving rows, then the ``when``
        kernel — so error behavior (an untypable comparison, say) is
        identical row for row.
        """
        cache = getattr(self._db, "columnar_cache", None)
        if cache is None:
            return None
        chunk = cache.chunk(relation)
        if chunk is None or (through is not None and as_of is None):
            return None
        db = self._db
        if isinstance(db, TemporalDatabase):
            if through is not None:
                mask = chunk.tt_overlap_mask(
                    Period.from_inclusive(as_of, through))
            else:
                mask = chunk.tt_stab_mask(
                    as_of if as_of is not None else now)
            indices = chunk.mask_indices(mask)
            pre_count = len(indices)

            def make(row) -> _Candidate:
                return _Candidate(row.data, row.valid, row.tt)
        elif isinstance(db, RollbackDatabase):
            if through is not None:
                mask = chunk.tt_overlap_mask(
                    Period.from_inclusive(as_of, through))
            else:
                # No as-of: the current state, which is exactly the rows
                # whose transaction time contains now (open partition).
                mask = chunk.tt_stab_mask(
                    as_of if as_of is not None else now)
            rows = chunk.rows
            first: Dict[Tuple, int] = {}
            for i in chunk.mask_indices(mask):
                first.setdefault(rows[i].data, i)
            indices = list(first.values())
            pre_count = len(indices)

            def make(row) -> _Candidate:
                return _Candidate(row.data, None, None)
        else:  # historical: candidates are all recorded facts
            indices = chunk.mask_indices(chunk.all_mask())
            pre_count = len(indices)

            def make(row) -> _Candidate:
                return _Candidate(row.data, row.valid, None)
        for conjunct in conjuncts:
            spec = columnar_compare_spec(conjunct, variable)
            if spec is not None:
                name, op, value, attr_on_left = spec
                indices = chunk.compare_select(indices, name, op, value,
                                               attr_on_left)
            else:
                rows = chunk.rows
                indices = [i for i in indices
                           if conjunct.evaluate({variable: rows[i].data})]
        when_applied = False
        if kernel is not None:
            when_applied = True
            if chunk.valid is None or kernel.constant is None:
                # No valid axis / empty constant: the predicate is false
                # for every row (eval_temporal_predicate on None periods).
                indices = []
            else:
                mask = chunk.when_mask(kernel.op, kernel.constant,
                                       kernel.var_on_left)
                indices = [i for i in indices if mask[i]]
        rows = chunk.rows
        return pre_count, tuple(make(rows[i]) for i in indices), when_applied

    # -- planning and the per-variable stream ----------------------------------

    def _plan_for(self, relation: str, variable: str,
                  as_of: Optional[Instant], through: Optional[Instant],
                  conjuncts: Sequence[Expression],
                  when_spec: Optional[_WhenKernel]) -> _planner.AccessPlan:
        prof = _planner.profile(self._db, relation)
        vectorizable = sum(
            1 for c in conjuncts
            if columnar_compare_spec(c, variable) is not None)
        clauses = _planner.Clauses(
            as_of is not None, through is not None, len(conjuncts),
            vectorizable,
            when_spec is not None and when_spec.variable == variable)
        return _planner.choose(prof, clauses, self._plan)

    def _stream(self, variable: str, relation: str,
                as_of: Optional[Instant], through: Optional[Instant],
                conjuncts: Sequence[Expression],
                when_spec: Optional[_WhenKernel],
                plan: _planner.AccessPlan, now: Instant
                ) -> PyTuple[int, PyTuple[_Candidate, ...], bool]:
        """One variable's filtered candidate stream, result-cached in auto.

        Returns ``(pre-pushdown candidate count, candidates after
        pushdown, when-clause already applied?)``.
        """
        kernel = (when_spec
                  if (when_spec is not None
                      and when_spec.variable == variable
                      and plan.path == "columnar")
                  else None)
        cache = (getattr(self._db, "result_cache", None)
                 if self._plan == "auto" else None)
        if cache is not None and kernel is not None and kernel.clock_dependent:
            cache = None  # the clock can move without a commit
        key = None
        if cache is not None:
            tt_key = (f"{as_of if as_of is not None else 'now'}"
                      f"|{through if through is not None else '-'}")
            when_part = (f"{kernel.op}:{kernel.constant}:{kernel.var_on_left}"
                         if kernel is not None else "-")
            fingerprint = "|".join(
                [str(self._db.kind), plan.path,
                 ";".join(repr(c) for c in conjuncts), when_part])
            key = (relation, tt_key, fingerprint)
            hit = cache.get(*key)
            if hit is not None:
                return hit
        result = self._stream_compute(variable, relation, as_of, through,
                                      conjuncts, kernel, plan, now)
        if cache is not None:
            cache.put(*key, result,
                      self._immutable_result(relation, as_of, through,
                                             result[1]))
        return result

    def _stream_compute(self, variable: str, relation: str,
                        as_of: Optional[Instant],
                        through: Optional[Instant],
                        conjuncts: Sequence[Expression],
                        kernel: Optional[_WhenKernel],
                        plan: _planner.AccessPlan, now: Instant
                        ) -> PyTuple[int, PyTuple[_Candidate, ...], bool]:
        if plan.path == "columnar":
            out = self._columnar_stream(relation, as_of, through, conjuncts,
                                        variable, kernel, now)
            if out is not None:
                return out
            # No chunk after all (e.g. the relation was redefined as an
            # unsupported representation): degrade to the naive twin.
        if plan.path == "index":
            candidates = self._candidates(relation, as_of, through)
        else:
            candidates = self._candidates_naive(relation, as_of, through)
        pre_count = len(candidates)
        if conjuncts:
            candidates = [
                candidate for candidate in candidates
                if all(conjunct.evaluate({variable: candidate.data})
                       for conjunct in conjuncts)]
        return pre_count, tuple(candidates), False

    def _immutable_result(self, relation: str, as_of: Optional[Instant],
                          through: Optional[Instant],
                          candidates: Sequence[_Candidate]) -> bool:
        """Can this stream never change again (cache-forever eligible)?

        Two conditions (see ``docs/QUERY_PLANNING.md``):

        - the transaction-time pin lies at or before the relation's last
          commit — commit times strictly increase, so every future commit
          happens strictly after the pin and can neither add rows visible
          at it nor remove any;
        - every contributing transaction period is already closed — an
          *open* row stays visible at the pin after it closes, but its
          recorded transaction period changes from ``[s, ∞)`` to
          ``[s, t)``, which §4.4 requires the result to retain.
        """
        pin = through if through is not None else as_of
        if pin is None or not pin.is_finite:
            return False
        last = self._db.last_change(relation)
        if last is None:
            return False
        try:
            if not pin <= last:
                return False
        except Exception:  # incomparable granularities: stay epoch-bound
            return False
        return all(candidate.tt is None or candidate.tt.end.is_finite
                   for candidate in candidates)

    def _index_decision(self, as_of: Optional[Instant],
                        through: Optional[Instant]) -> str:
        """How :meth:`_candidates` would source one relation's rows.

        Mirrors the dispatch in :meth:`_candidates` without running it:
        which access path (index stab, index range overlap, or scan) the
        evaluator will take for the statement's temporal clauses.
        """
        db = self._db
        indexed = db.index_cache is not None
        if isinstance(db, TemporalDatabase):
            if not indexed:
                return "scan (index disabled)"
            if through is not None:
                return "bitemporal index: transaction-time range overlap"
            return "bitemporal index: transaction-time stab"
        if isinstance(db, HistoricalDatabase):
            return "scan of recorded facts"
        if isinstance(db, RollbackDatabase):
            if as_of is None and through is None:
                return "snapshot scan"
            if not indexed:
                return "scan (index disabled)"
            if through is not None:
                return "rollback index: transaction-time range overlap"
            return "rollback index: transaction-time stab"
        return "snapshot scan"

    # -- explain -------------------------------------------------------------------------

    def explain(self, statement: RetrieveStmt) -> Dict[str, Any]:
        """Describe how a retrieve would run, without running the product.

        Returns a plain dict: the candidate source per range variable
        (with counts before/after selection pushdown), the residual
        predicate, the temporal clauses in force, and the result kind.
        ``Session.explain`` renders it as text.
        """
        if not isinstance(statement, RetrieveStmt):
            raise TQuelSemanticError("only retrieve statements are explained")
        used = self._used_variables(statement)
        now = self._db.now()
        as_of = through = None
        if statement.as_of is not None:
            as_of = eval_bound(statement.as_of, {}, now)
        if statement.as_of_through is not None:
            through = eval_bound(statement.as_of_through, {}, now)

        pushdown, residual = partition_pushdown(statement.where)
        when_spec = (when_kernel_spec(statement, now)
                     if statement.when is not None else None)
        index_decision = self._index_decision(as_of, through)
        variables = {}
        product = 1
        for variable in used:
            candidates = self._candidates(self._ranges[variable], as_of,
                                          through)
            filtered = candidates
            if variable in pushdown:
                filtered = [c for c in candidates
                            if all(conjunct.evaluate({variable: c.data})
                                   for conjunct in pushdown[variable])]
            plan = self._plan_for(self._ranges[variable], variable, as_of,
                                  through, pushdown.get(variable, []),
                                  when_spec)
            variables[variable] = {
                "relation": self._ranges[variable],
                "candidates": len(candidates),
                "after_pushdown": len(filtered),
                "pushed_conjuncts": len(pushdown.get(variable, [])),
                "index": index_decision,
                "plan": plan.path,
                "estimated_rows": plan.estimated_rows,
                "plan_reason": plan.reason,
            }
            product *= len(filtered)

        if any(isinstance(t.expr, AggCall) for t in statement.targets):
            result_kind = "static (aggregate)"
        elif isinstance(self._db, TemporalDatabase):
            result_kind = "temporal"
        elif isinstance(self._db, HistoricalDatabase):
            result_kind = "historical"
        else:
            result_kind = "static"

        return {
            "database_kind": str(self._db.kind),
            "planner_mode": self._plan,
            "variables": variables,
            "product_size": product,
            "residual_conjuncts": len(residual),
            "when": statement.when is not None,
            "valid_clause": statement.valid is not None,
            "as_of": str(as_of) if as_of is not None else None,
            "through": str(through) if through is not None else None,
            "result_kind": result_kind,
        }

    # -- retrieve ------------------------------------------------------------------------

    def retrieve(self, statement: RetrieveStmt) -> Result:
        used = self._used_variables(statement)
        now = self._db.now()
        as_of = through = None
        if statement.as_of is not None:
            as_of = eval_bound(statement.as_of, {}, now)
        if statement.as_of_through is not None:
            through = eval_bound(statement.as_of_through, {}, now)
            if as_of is not None and through is not None and through < as_of:
                raise TQuelSemanticError(
                    f"as of {as_of} through {through}: the range runs "
                    f"backwards"
                )

        # Selection pushdown: single-variable conjuncts filter their
        # stream before the product is formed.
        pushdown, residual = partition_pushdown(statement.where)
        when_spec = (when_kernel_spec(statement, now)
                     if statement.when is not None else None)

        metrics = _obs.current().metrics
        streams: Dict[str, PyTuple[_Candidate, ...]] = {}
        total_candidates = 0
        when_handled = False
        for variable in used:
            relation = self._ranges[variable]
            conjuncts = pushdown.get(variable, [])
            plan = self._plan_for(relation, variable, as_of, through,
                                  conjuncts, when_spec)
            metrics.counter(f"tquel.plan.{plan.path}").inc()
            pre_count, candidates, when_applied = self._stream(
                variable, relation, as_of, through, conjuncts, when_spec,
                plan, now)
            total_candidates += pre_count
            streams[variable] = candidates
            when_handled = when_handled or when_applied
        metrics.counter("tquel.candidates_enumerated").inc(total_candidates)
        variables = list(used)

        has_aggregates = any(isinstance(t.expr, AggCall)
                             for t in statement.targets)
        target_vars = self._target_variables(statement.targets) or set(variables)

        check_when = statement.when is not None and not when_handled
        matched: List[Dict[str, _Candidate]] = []
        for combination in itertools.product(*(streams[v] for v in variables)):
            binding = dict(zip(variables, combination))
            env = {variable: candidate.data
                   for variable, candidate in binding.items()}
            if residual and not all(conjunct.evaluate(env)
                                    for conjunct in residual):
                continue
            if check_when:
                periods = {variable: candidate.valid
                           for variable, candidate in binding.items()}
                if not eval_temporal_predicate(statement.when, periods, now):
                    continue
            matched.append(binding)

        if has_aggregates:
            result: Result = self._aggregate_result(statement, matched)
        elif self._db.kind.supports_historical_queries:
            result = self._temporal_result(statement, matched, target_vars, now)
        else:
            result = self._static_result(statement, matched)

        result = self._sorted(result, statement.sort_by)
        metrics.counter("tquel.rows_emitted").inc(
            len(result) if isinstance(
                result, (Relation, HistoricalRelation, TemporalRelation))
            else 0)
        if statement.into is not None:
            self._materialize(statement.into, result)
        return result

    def _used_variables(self, statement: RetrieveStmt) -> List[str]:
        used: List[str] = []

        def note(variable: Optional[str]) -> None:
            if variable is not None and variable not in used:
                used.append(variable)

        for target in statement.targets:
            expr = (target.expr.operand
                    if isinstance(target.expr, AggCall) else target.expr)
            if expr is not None:
                for variable, _ in expr.references():
                    note(variable)
        if statement.where is not None:
            for variable, _ in statement.where.references():
                note(variable)
        if statement.when is not None:
            for variable in sorted(temporal_variables(statement.when)):
                note(variable)
        if statement.valid is not None:
            for clause_expr in (statement.valid.at, statement.valid.from_,
                                statement.valid.to):
                if clause_expr is not None:
                    for variable in sorted(temporal_variables(clause_expr)):
                        note(variable)
        return used

    @staticmethod
    def _target_variables(targets: Sequence[TargetItem]) -> Set[str]:
        result: Set[str] = set()
        for target in targets:
            expr = (target.expr.operand
                    if isinstance(target.expr, AggCall) else target.expr)
            if expr is not None:
                result.update(variable for variable, _ in expr.references()
                              if variable is not None)
        return result

    # -- result assembly -------------------------------------------------------------------

    def _result_schema(self, targets: Sequence[TargetItem]) -> Schema:
        attributes = []
        for target in targets:
            if isinstance(target.expr, AggCall):
                domain = (Domain.INTEGER if target.expr.func == "count"
                          else Domain.FLOAT)
            else:
                domain = self._infer_domain(target.expr)
            attributes.append(Attribute(target.name, domain, nullable=True))
        return Schema(attributes)

    def _infer_domain(self, expr: Expression) -> Domain:
        if isinstance(expr, AttrRef) and expr.variable is not None:
            schema = self._db.schema(self._ranges[expr.variable])
            return schema.attribute(expr.name).domain
        if isinstance(expr, Const):
            value = expr.value
            if isinstance(value, bool):
                return Domain.BOOLEAN
            if isinstance(value, int):
                return Domain.INTEGER
            if isinstance(value, float):
                return Domain.FLOAT
            if isinstance(value, str):
                return Domain.STRING
            if isinstance(value, Instant):
                return Domain.DATE
            return Domain.ANY
        if isinstance(expr, (Comparison, And, Or, Not, IsNull)):
            return Domain.BOOLEAN
        if isinstance(expr, BinaryOp):
            left = self._infer_domain(expr.left)
            right = self._infer_domain(expr.right)
            if Domain.STRING in (left, right):
                return Domain.STRING
            if left == Domain.INTEGER and right == Domain.INTEGER \
                    and expr.op != "/":
                return Domain.INTEGER
            if {left, right} <= {Domain.INTEGER, Domain.FLOAT}:
                return Domain.FLOAT
            return Domain.ANY
        return Domain.ANY

    def _row_values(self, targets: Sequence[TargetItem],
                    env: Mapping[Optional[str], Tuple]) -> List[Any]:
        return [target.expr.evaluate(env) for target in targets]

    def _static_result(self, statement: RetrieveStmt,
                       matched: List[Dict[str, _Candidate]]) -> Relation:
        schema = self._result_schema(statement.targets)
        rows = []
        for binding in matched:
            env = {variable: candidate.data
                   for variable, candidate in binding.items()}
            rows.append(Tuple.from_sequence(
                schema, self._row_values(statement.targets, env)))
        return Relation(schema, rows)

    def _temporal_result(self, statement: RetrieveStmt,
                         matched: List[Dict[str, _Candidate]],
                         target_vars: Set[str],
                         now: Instant) -> Union[HistoricalRelation,
                                                TemporalRelation]:
        schema = self._result_schema(statement.targets)
        is_temporal = isinstance(self._db, TemporalDatabase)
        hist_rows: List[HistoricalRow] = []
        temp_rows: List[BitemporalRow] = []
        for binding in matched:
            env = {variable: candidate.data
                   for variable, candidate in binding.items()}
            periods = {variable: candidate.valid
                       for variable, candidate in binding.items()}
            validity = self._derived_validity(statement.valid, periods,
                                              target_vars, now)
            if validity is None:
                continue
            data = Tuple.from_sequence(
                schema, self._row_values(statement.targets, env))
            if is_temporal:
                tt = self._intersect_all(
                    [binding[v].tt for v in (target_vars or binding)])
                if tt is None:
                    continue
                temp_rows.append(BitemporalRow(data, validity, tt))
            else:
                hist_rows.append(HistoricalRow(data, validity))
        if is_temporal:
            return TemporalRelation(schema, temp_rows)
        return HistoricalRelation(schema, hist_rows)

    def _derived_validity(self, valid: Optional[ValidClause],
                          periods: Mapping[str, Period],
                          target_vars: Set[str],
                          now: Instant) -> Optional[Period]:
        if valid is not None:
            if valid.is_event:
                at = eval_bound(valid.at, periods, now)
                if at is None or not at.is_finite:
                    return None
                return Period.at(at)
            start = eval_bound(valid.from_, periods, now)
            end = (eval_bound(valid.to, periods, now)
                   if valid.to is not None else POS_INF)
            if start is None or end is None or not start < end:
                return None
            return Period(start, end)
        chosen = [periods[v] for v in sorted(target_vars) if periods.get(v)]
        if not chosen:
            chosen = [p for p in periods.values() if p is not None]
        if not chosen:
            return Period.always()
        return self._intersect_all(chosen)

    @staticmethod
    def _intersect_all(periods: Sequence[Optional[Period]]) -> Optional[Period]:
        current: Optional[Period] = None
        for period in periods:
            if period is None:
                return None
            current = period if current is None else current.intersect(period)
            if current is None:
                return None
        return current

    def _aggregate_result(self, statement: RetrieveStmt,
                          matched: List[Dict[str, _Candidate]]) -> Relation:
        schema = self._result_schema(statement.targets)
        group_targets = [t for t in statement.targets
                         if not isinstance(t.expr, AggCall)]
        agg_targets = [t for t in statement.targets
                       if isinstance(t.expr, AggCall)]
        groups: Dict[PyTuple[Any, ...], List[Mapping]] = {}
        for binding in matched:
            env = {variable: candidate.data
                   for variable, candidate in binding.items()}
            key = tuple(t.expr.evaluate(env) for t in group_targets)
            groups.setdefault(key, []).append(env)
        if not group_targets and not groups:
            groups[()] = []
        rows = []
        for key, envs in groups.items():
            values: Dict[str, Any] = dict(zip(
                (t.name for t in group_targets), key))
            for target in agg_targets:
                values[target.name] = self._apply_aggregate(target.expr, envs)
            rows.append(Tuple(schema, values))
        return Relation(schema, rows)

    @staticmethod
    def _apply_aggregate(call: AggCall, envs: List[Mapping]) -> Any:
        if call.operand is None:
            return len(envs)
        values = [call.operand.evaluate(env) for env in envs]
        values = [value for value in values if value is not None]
        if call.unique:
            values = list(dict.fromkeys(values))
        if call.func == "count":
            return len(values)
        if call.func == "sum":
            return sum(values)
        if not values:
            return None
        if call.func == "avg":
            return sum(values) / len(values)
        if call.func == "min":
            return min(values)
        if call.func == "max":
            return max(values)
        raise TQuelSemanticError(f"unknown aggregate {call.func!r}")

    def _sorted(self, result: Result, sort_by: Sequence[str]) -> Result:
        if not sort_by or not isinstance(result, Relation):
            return result
        return result.sort(list(sort_by))

    def _materialize(self, name: str, result: Result) -> None:
        """Store a derived relation under a new name (``retrieve into``)."""
        if isinstance(result, Relation):
            self._db.define(name, result.schema)
            if len(result):
                with self._db.begin() as txn:
                    for row in result:
                        if self._db.kind.supports_historical_queries:
                            self._db.insert(name, dict(row),
                                            valid_from=NEG_INF, txn=txn)
                        else:
                            self._db.insert(name, dict(row), txn=txn)
            return
        # Historical / temporal results: re-insert with their validity.
        self._db.define(name, result.schema)
        rows = (result.rows if isinstance(result, HistoricalRelation)
                else result.current().rows)
        if rows:
            with self._db.begin() as txn:
                for row in rows:
                    self._db.insert(name, dict(row.data),
                                    valid_from=row.valid.start,
                                    valid_to=row.valid.end, txn=txn)

    # -- updates -----------------------------------------------------------------------------

    def _valid_arguments(self, valid: Optional[ValidClause],
                         now: Instant) -> Dict[str, Any]:
        if valid is None:
            return {}
        if valid.is_event:
            return {"valid_at": eval_bound(valid.at, {}, now)}
        arguments: Dict[str, Any] = {
            "valid_from": eval_bound(valid.from_, {}, now)}
        if valid.to is not None:
            arguments["valid_to"] = eval_bound(valid.to, {}, now)
        return arguments

    def _coerce_values(self, relation: str,
                       raw: Mapping[str, Any]) -> Dict[str, Any]:
        """Parse string literals into non-string domains (dates, numbers)."""
        schema = self._db.schema(relation)
        coerced = {}
        for name, value in raw.items():
            domain = schema.attribute(name).domain
            if isinstance(value, str) and not domain.contains(value):
                coerced[name] = domain.parse(value)
            else:
                coerced[name] = value
        return coerced

    def _append(self, statement: AppendStmt) -> Instant:
        values = {name: expr.evaluate({})
                  for name, expr in statement.assignments}
        values = self._coerce_values(statement.relation, values)
        arguments = self._valid_arguments(statement.valid, self._db.now())
        if self._db.kind.supports_historical_queries:
            return self._db.insert(statement.relation, values, **arguments)
        return self._db.insert(statement.relation, values)

    def _matching_rows(self, statement) -> List[Tuple]:
        relation = self._ranges[statement.variable]
        rows = []
        for candidate in self._candidates(relation, None):
            env = {statement.variable: candidate.data}
            if statement.where is None or statement.where.evaluate(env):
                rows.append(candidate.data)
        return list(dict.fromkeys(rows))

    def _delete(self, statement: DeleteStmt) -> Optional[Instant]:
        relation = self._ranges[statement.variable]
        arguments = self._valid_arguments(statement.valid, self._db.now())
        rows = self._matching_rows(statement)
        with self._db.begin() as txn:
            for row in rows:
                if self._db.kind.supports_historical_queries:
                    self._db.delete(relation, dict(row), txn=txn, **arguments)
                else:
                    self._db.delete(relation, dict(row), txn=txn)
        return txn.commit_time

    def _replace(self, statement: ReplaceStmt) -> Optional[Instant]:
        relation = self._ranges[statement.variable]
        arguments = self._valid_arguments(statement.valid, self._db.now())
        rows = self._matching_rows(statement)
        with self._db.begin() as txn:
            for row in rows:
                env = {statement.variable: row}
                updates = {name: expr.evaluate(env)
                           for name, expr in statement.assignments}
                updates = self._coerce_values(relation, updates)
                if self._db.kind.supports_historical_queries:
                    self._db.replace(relation, dict(row), updates, txn=txn,
                                     **arguments)
                else:
                    self._db.replace(relation, dict(row), updates, txn=txn)
        return txn.commit_time

    def _create(self, statement: CreateStmt) -> Instant:
        attributes = []
        for name, type_name in statement.attributes:
            if type_name == "date":
                domain = Domain.user_defined_time(name)
            else:
                domain = _TYPE_MAP[type_name]
            attributes.append(Attribute(name, domain))
        schema = Schema(attributes, key=statement.key or None)
        if statement.event:
            return self._db.define(statement.relation, schema, event=True)
        return self._db.define(statement.relation, schema)
