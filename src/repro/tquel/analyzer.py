"""TQuel semantic analysis.

The analyzer validates a parsed statement against a database and a set of
range-variable bindings *before* evaluation.  Its most important job is
enforcing the taxonomy (Figure 11 of the paper) statically:

- ``as of`` requires transaction time → rejected on static and historical
  databases;
- ``when`` and ``valid`` require valid time → rejected on static and
  static-rollback databases;

with the database kind named in the error message.  Beyond that it checks
that range variables are declared, attributes exist, types of temporal
clauses fit the relation (event vs. interval), aggregates appear only at
target top level, and update valid-clauses are constant.

The analyzer runs *before* planning, so every statement the planner and
the vectorized kernels (:mod:`repro.core.columnar`) ever see is already
well-formed: attribute references resolve against real schema slots and
temporal clauses fit the database kind.  The kernels therefore owe
equivalence only on analyzable statements — semantic errors surface here,
identically for every access path, before a plan is even chosen.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.core.base import Database
from repro.errors import TQuelSemanticError
from repro.relational.expression import (
    And, AttrRef, BinaryOp, Comparison, Const, Expression, IsNull, Not, Or,
)
from repro.tquel.ast import (
    AggCall, AppendStmt, CreateStmt, DeleteStmt, DestroyStmt, RangeStmt,
    ReplaceStmt, RetrieveStmt, Statement, TargetItem, TConst, TEndOf, TExtend,
    TNow, TOverlap, TPAnd, TPCompare, TPNot, TPOr, TStartOf, TVar,
    TemporalExpr, TemporalPredicate, ValidClause,
)

#: Range-variable environment: variable -> relation name.
Ranges = Dict[str, str]


def analyze(statement: Statement, database: Database,
            ranges: Ranges) -> None:
    """Validate *statement*; raises :class:`TQuelSemanticError` on failure."""
    analyzer = _Analyzer(database, ranges)
    analyzer.check(statement)


class _Analyzer:
    def __init__(self, database: Database, ranges: Ranges) -> None:
        self._db = database
        self._ranges = ranges

    # -- dispatch -----------------------------------------------------------

    def check(self, statement: Statement) -> None:
        if isinstance(statement, RangeStmt):
            self._check_range(statement)
        elif isinstance(statement, RetrieveStmt):
            self._check_retrieve(statement)
        elif isinstance(statement, AppendStmt):
            self._check_append(statement)
        elif isinstance(statement, DeleteStmt):
            self._check_delete(statement)
        elif isinstance(statement, ReplaceStmt):
            self._check_replace(statement)
        elif isinstance(statement, CreateStmt):
            self._check_create(statement)
        elif isinstance(statement, DestroyStmt):
            self._check_destroy(statement)
        else:
            raise TQuelSemanticError(f"unknown statement {statement!r}")

    # -- taxonomy enforcement ----------------------------------------------------

    def _need_transaction_time(self, construct: str) -> None:
        if not self._db.supports_rollback:
            raise TQuelSemanticError(
                f"{construct} requires transaction time, but this is a "
                f"{self._db.kind} database (no rollback support)"
            )

    def _need_valid_time(self, construct: str) -> None:
        if not self._db.supports_historical_queries:
            raise TQuelSemanticError(
                f"{construct} requires valid time, but this is a "
                f"{self._db.kind} database (no historical-query support)"
            )

    # -- statements -----------------------------------------------------------------

    def _check_range(self, statement: RangeStmt) -> None:
        if statement.relation not in self._db:
            raise TQuelSemanticError(
                f"range declaration refers to unknown relation "
                f"{statement.relation!r}"
            )

    def _check_retrieve(self, statement: RetrieveStmt) -> None:
        if statement.into is not None and statement.into in self._db:
            raise TQuelSemanticError(
                f"retrieve into: relation {statement.into!r} already exists"
            )
        seen: Set[str] = set()
        has_aggregate = False
        for target in statement.targets:
            if target.name in seen:
                raise TQuelSemanticError(
                    f"duplicate target name {target.name!r}"
                )
            seen.add(target.name)
            if isinstance(target.expr, AggCall):
                has_aggregate = True
                if target.expr.operand is not None:
                    self._check_expression(target.expr.operand)
            else:
                self._check_expression(target.expr)
        if statement.where is not None:
            self._check_expression(statement.where)
        if statement.when is not None:
            self._need_valid_time("the 'when' clause")
            self._check_temporal_predicate(statement.when)
        if statement.valid is not None:
            self._need_valid_time("the 'valid' clause")
            self._check_valid_clause(statement.valid, allow_variables=True)
        if statement.as_of is not None:
            self._need_transaction_time("the 'as of' clause")
            self._check_temporal_expr(statement.as_of, allow_variables=False,
                                      construct="as of")
        if statement.as_of_through is not None:
            self._need_transaction_time("the 'as of ... through' clause")
            self._check_temporal_expr(statement.as_of_through,
                                      allow_variables=False,
                                      construct="as of ... through")
        if has_aggregate and (statement.when is not None
                              or statement.valid is not None):
            raise TQuelSemanticError(
                "aggregate targets cannot be combined with when/valid "
                "clauses; aggregate retrieves produce a static relation"
            )
        for name in statement.sort_by:
            if name not in seen:
                raise TQuelSemanticError(
                    f"sort attribute {name!r} is not a target"
                )

    def _check_append(self, statement: AppendStmt) -> None:
        schema = self._relation_schema(statement.relation)
        assigned = set()
        for name, expr in statement.assignments:
            if name not in schema:
                raise TQuelSemanticError(
                    f"relation {statement.relation!r} has no attribute {name!r}"
                )
            if name in assigned:
                raise TQuelSemanticError(f"attribute {name!r} assigned twice")
            assigned.add(name)
            self._check_constant_expression(expr, "append values")
        missing = set(schema.names) - assigned
        if missing:
            raise TQuelSemanticError(
                f"append to {statement.relation!r} misses attributes: "
                f"{', '.join(sorted(missing))}"
            )
        self._check_update_valid(statement.relation, statement.valid,
                                 for_insert=True)

    def _check_delete(self, statement: DeleteStmt) -> None:
        relation = self._variable_relation(statement.variable)
        if statement.where is not None:
            self._check_expression(statement.where,
                                   only_variable=statement.variable)
        self._check_update_valid(relation, statement.valid, for_insert=False)

    def _check_replace(self, statement: ReplaceStmt) -> None:
        relation = self._variable_relation(statement.variable)
        schema = self._relation_schema(relation)
        for name, expr in statement.assignments:
            if name not in schema:
                raise TQuelSemanticError(
                    f"relation {relation!r} has no attribute {name!r}"
                )
            self._check_expression(expr, only_variable=statement.variable)
        if statement.where is not None:
            self._check_expression(statement.where,
                                   only_variable=statement.variable)
        self._check_update_valid(relation, statement.valid, for_insert=False)

    def _check_create(self, statement: CreateStmt) -> None:
        if statement.relation in self._db:
            raise TQuelSemanticError(
                f"relation {statement.relation!r} already exists"
            )
        names = [name for name, _ in statement.attributes]
        if len(set(names)) != len(names):
            raise TQuelSemanticError("duplicate attribute names in create")
        for key_name in statement.key:
            if key_name not in names:
                raise TQuelSemanticError(
                    f"key attribute {key_name!r} is not declared"
                )
        if statement.event:
            self._need_valid_time("an event relation")

    def _check_destroy(self, statement: DestroyStmt) -> None:
        if statement.relation not in self._db:
            raise TQuelSemanticError(
                f"cannot destroy unknown relation {statement.relation!r}"
            )

    # -- helpers --------------------------------------------------------------------------

    def _variable_relation(self, variable: str) -> str:
        try:
            return self._ranges[variable]
        except KeyError:
            declared = ", ".join(sorted(self._ranges)) or "<none>"
            raise TQuelSemanticError(
                f"range variable {variable!r} is not declared "
                f"(declared: {declared})"
            ) from None

    def _relation_schema(self, relation: str):
        if relation not in self._db:
            raise TQuelSemanticError(f"unknown relation {relation!r}")
        return self._db.schema(relation)

    def _check_valid_clause(self, valid: ValidClause,
                            allow_variables: bool) -> None:
        """Check a retrieve's valid clause (range variables are legal)."""
        for expr in (valid.at, valid.from_, valid.to):
            if expr is not None:
                self._check_temporal_expr(expr, allow_variables=allow_variables,
                                          construct="valid")

    def _check_update_valid(self, relation: str,
                            valid: Optional[ValidClause],
                            for_insert: bool) -> None:
        is_event = getattr(self._db, "is_event_relation", lambda _: False)(relation)
        if valid is None:
            if self._db.supports_historical_queries and for_insert:
                raise TQuelSemanticError(
                    f"appending to a {self._db.kind} database requires a "
                    f"valid clause ({'valid at' if is_event else 'valid from'})"
                )
            return
        self._need_valid_time("the 'valid' clause")
        if is_event and for_insert and not valid.is_event:
            raise TQuelSemanticError(
                f"relation {relation!r} is an event relation; use 'valid at'"
            )
        if not is_event and valid.is_event and for_insert:
            raise TQuelSemanticError(
                f"relation {relation!r} is an interval relation; "
                f"use 'valid from ... to ...'"
            )
        for expr in (valid.at, valid.from_, valid.to):
            if expr is not None:
                self._check_temporal_expr(expr, allow_variables=False,
                                          construct="update valid clause")

    # -- expressions -----------------------------------------------------------------------

    def _check_expression(self, expr: Expression,
                          only_variable: Optional[str] = None) -> None:
        if isinstance(expr, AggCall):
            raise TQuelSemanticError(
                "aggregates may only appear at the top level of a target"
            )
        if isinstance(expr, Const):
            return
        if isinstance(expr, AttrRef):
            if expr.variable is None:
                raise TQuelSemanticError(
                    f"attribute reference {expr.name!r} must be qualified "
                    f"with a range variable (write f.{expr.name})"
                )
            if only_variable is not None and expr.variable != only_variable:
                raise TQuelSemanticError(
                    f"only {only_variable!r} may be referenced here, "
                    f"not {expr.variable!r}"
                )
            relation = self._variable_relation(expr.variable)
            schema = self._relation_schema(relation)
            if expr.name not in schema:
                raise TQuelSemanticError(
                    f"relation {relation!r} (variable {expr.variable!r}) "
                    f"has no attribute {expr.name!r}"
                )
            return
        if isinstance(expr, (Comparison, BinaryOp, And, Or)):
            self._check_expression(expr.left, only_variable)
            self._check_expression(expr.right, only_variable)
            return
        if isinstance(expr, (Not, IsNull)):
            self._check_expression(expr.operand, only_variable)
            return
        raise TQuelSemanticError(f"unsupported expression node {expr!r}")

    def _check_constant_expression(self, expr: Expression, where: str) -> None:
        if isinstance(expr, AggCall) or expr.references():
            raise TQuelSemanticError(
                f"{where} must be constant expressions"
            )

    # -- temporal --------------------------------------------------------------------------------

    def _check_temporal_predicate(self, predicate: TemporalPredicate) -> None:
        if isinstance(predicate, TPCompare):
            self._check_temporal_expr(predicate.left, allow_variables=True,
                                      construct="when")
            self._check_temporal_expr(predicate.right, allow_variables=True,
                                      construct="when")
        elif isinstance(predicate, (TPAnd, TPOr)):
            self._check_temporal_predicate(predicate.left)
            self._check_temporal_predicate(predicate.right)
        elif isinstance(predicate, TPNot):
            self._check_temporal_predicate(predicate.operand)
        else:
            raise TQuelSemanticError(
                f"unsupported temporal predicate {predicate!r}"
            )

    def _check_temporal_expr(self, expr: TemporalExpr, allow_variables: bool,
                             construct: str) -> None:
        if isinstance(expr, TVar):
            if not allow_variables:
                raise TQuelSemanticError(
                    f"range variables are not allowed in the {construct} "
                    f"clause (found {expr.variable!r})"
                )
            self._variable_relation(expr.variable)
        elif isinstance(expr, (TConst, TNow)):
            if isinstance(expr, TConst) and expr.literal not in (
                    "forever", "beginning"):
                from repro.time.instant import Instant
                from repro.errors import InvalidInstantError
                try:
                    Instant.parse(expr.literal)
                except InvalidInstantError as exc:
                    raise TQuelSemanticError(str(exc)) from None
        elif isinstance(expr, (TStartOf, TEndOf)):
            self._check_temporal_expr(expr.operand, allow_variables, construct)
        elif isinstance(expr, (TOverlap, TExtend)):
            self._check_temporal_expr(expr.left, allow_variables, construct)
            self._check_temporal_expr(expr.right, allow_variables, construct)
        else:
            raise TQuelSemanticError(
                f"unsupported temporal expression {expr!r}"
            )
