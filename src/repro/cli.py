"""The ``tquel`` command-line shell.

An interactive REPL (or script runner) over any of the four database
kinds::

    tquel --kind temporal                 # interactive shell
    tquel --kind historical -f script.tq  # run a script
    tquel -c 'create r (x = string)'      # run one statement
    tquel --kind temporal --journal db.journal   # durable session

Inside the shell, TQuel statements run directly; lines starting with a
dot are shell commands:

    .help               this message
    .kind               show the database kind and its capabilities
    .relations          list relations
    .figure <relation>  render a relation in the paper's figure style
    .log                show the commit log
    .clock <instant>    advance the simulated clock (e.g. .clock 12/15/82)
    .save <path>        dump the database to JSON
    .migrate <kind>     migrate the session's database to another kind
                        (static|rollback|historical|temporal); append
                        " force" to allow a lossy downgrade
    .explain <query>    show how a retrieve would execute
    .plan [mode]        show or set the access-path mode
                        (auto|naive|index|columnar; see
                        docs/QUERY_PLANNING.md)
    .cache              show the columnar-chunk and as-of result caches
    .stats              show the instrumentation snapshot (see ``repro stats``)
    .quit               leave

A second console script, ``repro``, reports on the engine's built-in
instrumentation (see :mod:`repro.obs` and docs/OBSERVABILITY.md)::

    repro stats                  # run the demo workload, print metrics
    repro stats --json           # the same snapshot as JSON
    repro stats --openmetrics    # OpenMetrics text exposition
    repro stats -f script.tq     # instrument your own TQuel script
    repro trace --limit 20       # the last 20 spans as JSON lines
    repro trace --out spans.jsonl
    repro trace --txn txn-3 --input spans.jsonl   # one transaction's
                                 # causally-ordered lifecycle tree
    repro health                 # drive a mixed workload, judge it
                                 # against the SLO policy (exit 1 on
                                 # budget burn)
    repro bench-diff --baseline BENCH_X.json --fresh fresh.json
                                 # regression-gate two benchmark reports
    repro cache                  # run the demo workload, report the
                                 # columnar-chunk and as-of result
                                 # caches (see docs/QUERY_PLANNING.md)

``repro`` also operates durability directories (checkpoint + segmented
journal; see docs/DURABILITY.md)::

    repro recover --dir DIR            # recover, print the report
    repro recover --dir DIR --json     # the report as JSON
    repro recover --dir DIR --full     # ignore checkpoints (full replay)
    repro checkpoint --dir DIR         # recover, then publish a checkpoint
    repro checkpoint --dir DIR -f setup.tq   # run a script first

and drives the concurrent stress harness (see docs/CONCURRENCY.md)::

    repro stress                           # 8 sessions x 200 txns, audit
    repro stress --sessions 16 --ops 100   # heavier contention
    repro stress --faults torn-record      # chaos mode: crash + recovery
    repro stress --json                    # the full report as JSON

and the replication subsystem (see docs/REPLICATION.md)::

    repro replicate                        # replicated chaos run, audit
    repro replicate --replicas 3 --failover-at 40   # mid-run promotion
    repro digest --dir DIR                 # canonical state digest of a
                                           # durability directory
    repro promote --dir DIR                # durably bump the fencing
                                           # epoch of a directory

and the sharded store (see docs/SHARDING.md)::

    repro shard-stress                     # 4 shards x 8 sessions, audit
    repro shard-stress --shards 8 --cross 0.3       # heavier 2PC mix
    repro shard-stress --faults lost-record --dir DIR   # chaos + recovery
    repro stats --shards 4                 # demo workload on a sharded
                                           # store: per-shard metrics

The database kind is read from the newest checkpoint when one exists;
``--kind`` decides it for journal-only or fresh directories.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import ReproError
from repro.storage import Journal, dumps_database
from repro.time import SimulatedClock, SystemClock
from repro.tquel import Session

_KINDS = {
    "static": StaticDatabase,
    "rollback": RollbackDatabase,
    "historical": HistoricalDatabase,
    "temporal": TemporalDatabase,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="tquel",
        description="A TQuel shell over the four database kinds of "
                    "Snodgrass & Ahn's taxonomy.")
    parser.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                        help="which kind of database to run (default: temporal)")
    parser.add_argument("--simulated-clock", metavar="INSTANT", default=None,
                        help="start from a simulated clock at INSTANT "
                             "(e.g. 01/01/80) instead of the system clock")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="journal every commit to PATH (JSON lines)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="rebuild the database from a journal first")
    parser.add_argument("-c", "--command", default=None,
                        help="run one statement and exit")
    parser.add_argument("-f", "--file", default=None,
                        help="run a script file and exit")
    return parser


def make_session(args) -> Session:
    """Construct the session an invocation asked for."""
    if args.replay is not None:
        database = Journal(args.replay).replay(_KINDS[args.kind])
    else:
        if args.simulated_clock is not None:
            clock = SimulatedClock(args.simulated_clock)
        else:
            clock = SystemClock()
        database = _KINDS[args.kind](clock=clock)
    if args.journal is not None:
        Journal(args.journal).bind(database)
    return Session(database)


def run_source(session: Session, source: str, out=None) -> int:
    """Run statements from *source*, printing results; returns an exit code."""
    out = out if out is not None else sys.stdout
    try:
        for result in session.execute_script(source):
            rendered = session.render(result)
            if rendered != "(no result)":
                print(rendered, file=out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _dot_command(session: Session, line: str, out) -> bool:
    """Handle a shell command; returns False to quit."""
    command, _, argument = line.partition(" ")
    argument = argument.strip()
    database = session.database
    if command in (".quit", ".exit"):
        return False
    if command == ".help":
        print(__doc__, file=out)
    elif command == ".kind":
        kind = database.kind
        print(f"{kind} database — rollback: "
              f"{'yes' if kind.supports_rollback else 'no'}, historical "
              f"queries: {'yes' if kind.supports_historical_queries else 'no'}",
              file=out)
    elif command == ".relations":
        for name in database.relation_names():
            print(f"  {name}{'  (event)' if getattr(database, 'is_event_relation', lambda n: False)(name) else ''}",
                  file=out)
    elif command == ".figure":
        from repro.tquel import printer
        if hasattr(database, "temporal"):
            print(printer.render_temporal(
                database.temporal(argument), argument,
                event=database.is_event_relation(argument)), file=out)
        elif hasattr(database, "history"):
            print(printer.render_historical(
                database.history(argument), argument,
                event=database.is_event_relation(argument)), file=out)
        elif hasattr(database, "store"):
            store = database.store(argument)
            if hasattr(store, "rows"):
                print(printer.render_rollback(store, argument), file=out)
            else:
                print(database.snapshot(argument).pretty(argument), file=out)
        else:
            print(database.snapshot(argument).pretty(argument), file=out)
    elif command == ".log":
        for record in database.log:
            ops = ", ".join(f"{op.action} {op.relation}"
                            for op in record.operations)
            print(f"  #{record.sequence} at {record.commit_time}: {ops}",
                  file=out)
    elif command == ".clock":
        clock = database.manager.clock.source
        if isinstance(clock, SimulatedClock):
            clock.set(argument)
            print(f"clock at {clock.current()}", file=out)
        else:
            print("not running on a simulated clock", file=out)
    elif command == ".migrate":
        parts = argument.split()
        kind_name = parts[0] if parts else ""
        force = len(parts) > 1 and parts[1] == "force"
        if kind_name not in _KINDS:
            print(f"usage: .migrate <{('|'.join(sorted(_KINDS)))}> [force]",
                  file=out)
        else:
            try:
                session.migrate_database(_KINDS[kind_name],
                                         allow_loss=force)
                print(f"migrated to a {session.database.kind} database",
                      file=out)
            except ReproError as error:
                print(f"error: {error}", file=out)
    elif command == ".explain":
        try:
            print(session.explain(argument), file=out)
        except ReproError as error:
            print(f"error: {error}", file=out)
    elif command == ".plan":
        if not argument:
            print(f"plan mode: {session.plan}", file=out)
        else:
            try:
                session.plan = argument
                print(f"plan mode: {session.plan}", file=out)
            except ValueError as error:
                print(f"error: {error}", file=out)
    elif command == ".cache":
        print(_format_caches(database), file=out)
    elif command == ".stats":
        print(_format_stats(database.stats()), file=out)
    elif command == ".save":
        with open(argument, "w", encoding="utf-8") as handle:
            handle.write(dumps_database(session.database, indent=2))
        print(f"saved to {argument}", file=out)
    else:
        print(f"unknown command {command!r}; try .help", file=out)
    return True


def repl(session: Session, stdin=None, out=None) -> int:
    """The interactive loop."""
    stdin = stdin if stdin is not None else sys.stdin
    out = out if out is not None else sys.stdout
    print(f"tquel shell — {session.database.kind} database "
          f"(.help for commands)", file=out)
    while True:
        try:
            print("tquel> ", end="", file=out, flush=True)
            line = stdin.readline()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print(file=out)
            return 0
        if not line:
            return 0
        line = line.strip()
        if not line:
            continue
        if line.startswith("."):
            if not _dot_command(session, line, out):
                return 0
            continue
        try:
            result = session.execute(line)
            rendered = session.render(result)
            print(rendered, file=out)
        except ReproError as error:
            print(f"error: {error}", file=out)


def main(argv: Optional[list] = None) -> int:
    """Entry point for the ``tquel`` console script."""
    args = build_parser().parse_args(argv)
    session = make_session(args)
    if args.command is not None:
        return run_source(session, args.command)
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            return run_source(session, handle.read())
    return repl(session)


# ---------------------------------------------------------------------------
# The ``repro`` observability CLI
# ---------------------------------------------------------------------------

def build_repro_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Observability over the taxonomy engine: run a workload "
                    "with instrumentation on and report what it recorded.")
    subparsers = parser.add_subparsers(dest="subcommand", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                         help="which kind of database to drive "
                              "(default: temporal)")
        sub.add_argument("-f", "--file", default=None,
                         help="instrument a TQuel script instead of the "
                              "built-in faculty demo workload")

    stats = subparsers.add_parser(
        "stats", help="print the metrics/spans snapshot after a workload")
    add_common(stats)
    stats.add_argument("--json", action="store_true",
                       help="emit the snapshot as JSON instead of text")
    stats.add_argument("--openmetrics", action="store_true",
                       help="emit the metrics in OpenMetrics text "
                            "exposition format instead")
    stats.add_argument("--shards", type=int, default=None, metavar="N",
                       help="drive a sharded demo workload over N shards "
                            "instead (surfaces the shard.<i>.* metrics)")

    trace = subparsers.add_parser(
        "trace", help="dump the recorded spans as JSON lines, or "
                      "reconstruct one transaction's lifecycle tree")
    add_common(trace)
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="write the spans to PATH instead of stdout")
    trace.add_argument("--limit", type=int, default=None, metavar="N",
                       help="only the last N spans")
    trace.add_argument("--txn", metavar="ID", default=None,
                       help="render transaction ID's spans as a causally-"
                            "ordered tree instead of JSON lines")
    trace.add_argument("--input", metavar="PATH", default=None,
                       help="read spans from a JSONL export (e.g. "
                            "shard-stress --trace-out) instead of running "
                            "a workload")
    trace.add_argument("--events-input", metavar="PATH", default=None,
                       help="also list the transaction's lifecycle events "
                            "from an event-log JSONL export")

    health = subparsers.add_parser(
        "health", help="drive a mixed read/write/cross-shard workload and "
                       "judge it against the SLO policy")
    health.add_argument("--ops", type=int, default=25, metavar="N",
                        help="operations per class (default: 25)")
    health.add_argument("--read-ms", type=float, default=50.0, metavar="MS",
                        help="read latency objective (default: 50)")
    health.add_argument("--write-ms", type=float, default=250.0,
                        metavar="MS",
                        help="single-shard write objective (default: 250)")
    health.add_argument("--cross-ms", type=float, default=1000.0,
                        metavar="MS",
                        help="cross-shard write objective (default: 1000)")
    health.add_argument("--budget", type=float, default=0.10, metavar="P",
                        help="error budget: tolerated violation fraction "
                             "per class (default: 0.10)")
    health.add_argument("--json", action="store_true",
                        help="emit the health report as JSON")

    bench_diff = subparsers.add_parser(
        "bench-diff", help="compare a fresh benchmark report against a "
                           "committed baseline; exit 1 on regression")
    bench_diff.add_argument("--baseline", required=True, metavar="PATH",
                            help="the committed BENCH_*.json baseline")
    bench_diff.add_argument("--fresh", required=True, metavar="PATH",
                            help="the freshly produced report")
    bench_diff.add_argument("--tolerance", type=float, default=0.5,
                            metavar="P",
                            help="tolerated relative worsening before a "
                                 "metric counts as a regression "
                                 "(default: 0.5 = 50%%)")
    bench_diff.add_argument("--json", action="store_true",
                            help="emit the comparison as JSON")

    cache = subparsers.add_parser(
        "cache", help="run a workload and report the columnar-chunk and "
                      "as-of result caches (hits/misses/sizes)")
    add_common(cache)
    cache.add_argument("--plan", default="auto",
                       choices=("auto", "naive", "index", "columnar"),
                       help="the session's access-path mode "
                            "(default: auto; only auto uses the result "
                            "cache)")
    cache.add_argument("--json", action="store_true",
                       help="emit the snapshot as JSON instead of text")

    recover = subparsers.add_parser(
        "recover", help="recover a durability directory and report how")
    recover.add_argument("--dir", required=True, metavar="DIR",
                         help="the durability directory (checkpoints + "
                              "journal segments)")
    recover.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                         help="database kind when no checkpoint records it "
                              "(default: temporal)")
    recover.add_argument("--full", action="store_true",
                         help="ignore checkpoints and replay all of history")
    recover.add_argument("--json", action="store_true",
                         help="emit the recovery report as JSON")

    checkpoint = subparsers.add_parser(
        "checkpoint", help="recover a durability directory, then publish "
                           "a checkpoint of it")
    checkpoint.add_argument("--dir", required=True, metavar="DIR",
                            help="the durability directory")
    checkpoint.add_argument("--kind", choices=sorted(_KINDS),
                            default="temporal",
                            help="database kind when no checkpoint records "
                                 "it (default: temporal)")
    checkpoint.add_argument("-f", "--file", default=None,
                            help="run a TQuel script against the recovered "
                                 "database before checkpointing")

    stress = subparsers.add_parser(
        "stress", help="hammer a database from concurrent sessions and "
                       "audit the serializability invariants")
    stress.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                        help="which kind of database to hammer "
                             "(default: temporal)")
    stress.add_argument("--sessions", type=int, default=8, metavar="N",
                        help="concurrent worker threads (default: 8)")
    stress.add_argument("--ops", type=int, default=200, metavar="N",
                        help="transactions per session (default: 200)")
    stress.add_argument("--keys", type=int, default=8, metavar="N",
                        help="counter rows contended over (default: 8)")
    stress.add_argument("--seed", type=int, default=0,
                        help="workload and backoff-jitter seed (default: 0)")
    stress.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-transaction deadline in seconds "
                             "(default: none)")
    stress.add_argument("--max-active", type=int, default=None, metavar="N",
                        help="admission slots (default: the session count)")
    stress.add_argument("--max-queue", type=int, default=None, metavar="N",
                        help="admission wait-queue bound (default: 4x "
                             "sessions); excess is shed as Overloaded")
    stress.add_argument("--faults", default=None,
                        choices=[point.value for point in _append_points()],
                        help="chaos mode: kill journal I/O at this crash "
                             "point, then audit recovery")
    stress.add_argument("--fault-at", type=int, default=50, metavar="N",
                        help="which journal append dies in chaos mode "
                             "(default: 50)")
    stress.add_argument("--dir", default=None, metavar="DIR",
                        help="durability directory for chaos mode "
                             "(default: a temporary one)")
    stress.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")

    digest = subparsers.add_parser(
        "digest", help="recover a durability directory and print its "
                       "canonical state digest")
    digest.add_argument("--dir", required=True, metavar="DIR",
                        help="the durability directory")
    digest.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                        help="database kind when no checkpoint records it "
                             "(default: temporal)")
    digest.add_argument("--full", action="store_true",
                        help="ignore checkpoints and replay all of history "
                             "(the digest must not change)")
    digest.add_argument("--json", action="store_true",
                        help="emit digest and record count as JSON")

    audit = subparsers.add_parser(
        "audit", help="walk a durability directory — frames, hash chain, "
                      "checkpoints, 2PC logs — and classify every problem "
                      "without touching anything")
    audit.add_argument("--dir", required=True, metavar="DIR",
                       help="the durability directory (or a sharded one "
                            "with --sharded)")
    audit.add_argument("--sharded", action="store_true",
                       help="audit a sharded directory: every shard plus "
                            "the decision log, with the combined root")
    audit.add_argument("--json", action="store_true",
                       help="emit the audit report as JSON")

    scrub = subparsers.add_parser(
        "scrub", help="audit a durability directory, quarantine damaged "
                      "files, and (with --repair-from) re-fetch the "
                      "damaged suffix from a healthy copy")
    scrub.add_argument("--dir", required=True, metavar="DIR",
                       help="the durability directory to scrub")
    scrub.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                       help="database kind when no checkpoint records it "
                            "(default: temporal)")
    scrub.add_argument("--repair-from", default=None, metavar="SRC",
                       help="healthy durability directory (a primary's, or "
                            "another replica's) to re-fetch the damaged "
                            "suffix from; without it scrub only "
                            "quarantines")
    scrub.add_argument("--json", action="store_true",
                       help="emit the scrub report as JSON")

    replicate = subparsers.add_parser(
        "replicate", help="run the replicated chaos harness: writers on a "
                          "primary, readers on replicas, faults on the wire")
    replicate.add_argument("--kind", choices=sorted(_KINDS),
                           default="temporal",
                           help="which kind of database to replicate "
                                "(default: temporal)")
    replicate.add_argument("--replicas", type=int, default=2, metavar="N",
                           help="replica count (default: 2)")
    replicate.add_argument("--writers", type=int, default=4, metavar="N",
                           help="writer threads on the primary (default: 4)")
    replicate.add_argument("--ops", type=int, default=40, metavar="N",
                           help="transactions per writer (default: 40)")
    replicate.add_argument("--keys", type=int, default=8, metavar="N",
                           help="counter rows contended over (default: 8)")
    replicate.add_argument("--seed", type=int, default=0,
                           help="workload and transport-fault seed "
                                "(default: 0)")
    replicate.add_argument("--drop", type=float, default=0.05,
                           metavar="P", help="per-message drop probability "
                                             "(default: 0.05)")
    replicate.add_argument("--duplicate", type=float, default=0.05,
                           metavar="P", help="duplicate probability "
                                             "(default: 0.05)")
    replicate.add_argument("--reorder", type=float, default=0.05,
                           metavar="P", help="reorder probability "
                                             "(default: 0.05)")
    replicate.add_argument("--delay", type=float, default=0.0, metavar="P",
                           help="delay probability (default: 0)")
    replicate.add_argument("--partition-at", type=int, default=None,
                           metavar="N",
                           help="partition the last replica after N "
                                "commits (default: never)")
    replicate.add_argument("--heal-at", type=int, default=None, metavar="N",
                           help="heal the partition after N commits "
                                "(default: at the end)")
    replicate.add_argument("--failover-at", type=int, default=None,
                           metavar="N",
                           help="promote the first replica after N commits "
                                "(default: never)")
    replicate.add_argument("--json", action="store_true",
                           help="emit the full report as JSON")

    shard_stress = subparsers.add_parser(
        "shard-stress", help="hammer a sharded store from concurrent "
                             "sessions and audit the cross-shard "
                             "invariants")
    shard_stress.add_argument("--kind", choices=sorted(_KINDS),
                              default="static",
                              help="which kind of database to shard "
                                   "(default: static)")
    shard_stress.add_argument("--shards", type=int, default=4, metavar="N",
                              help="shard count (default: 4)")
    shard_stress.add_argument("--sessions", type=int, default=8, metavar="N",
                              help="concurrent worker threads (default: 8)")
    shard_stress.add_argument("--ops", type=int, default=100, metavar="N",
                              help="transactions per session (default: 100)")
    shard_stress.add_argument("--keys", type=int, default=16, metavar="N",
                              help="keys per worker (default: 16)")
    shard_stress.add_argument("--cross", type=float, default=0.1,
                              metavar="P",
                              help="cross-shard transfer probability "
                                   "(default: 0.1)")
    shard_stress.add_argument("--placement",
                              choices=["scattered", "aligned"],
                              default="scattered",
                              help="key placement: scattered over all "
                                   "shards or aligned worker-per-shard "
                                   "(default: scattered)")
    shard_stress.add_argument("--seed", type=int, default=0,
                              help="workload and backoff-jitter seed "
                                   "(default: 0)")
    shard_stress.add_argument("--timeout", type=float, default=None,
                              metavar="S",
                              help="per-transaction deadline in seconds "
                                   "(default: none)")
    shard_stress.add_argument("--faults", default=None,
                              choices=[point.value
                                       for point in _append_points()],
                              help="chaos mode: kill journal/2PC I/O at "
                                   "this crash point, then audit recovery")
    shard_stress.add_argument("--fault-at", type=int, default=50,
                              metavar="N",
                              help="which append dies in chaos mode — a "
                                   "shard journal record, a prepare or "
                                   "the decision (default: 50)")
    shard_stress.add_argument("--dir", default=None, metavar="DIR",
                              help="durability directory: durable mode on "
                                   "its own, chaos mode with --faults "
                                   "(chaos default: a temporary one)")
    shard_stress.add_argument("--replicas", type=int, default=0,
                              metavar="N",
                              help="stream every shard's commits to N "
                                   "sharded replicas and audit their "
                                   "convergence (default: 0)")
    shard_stress.add_argument("--trace-out", default=None, metavar="PATH",
                              help="export the run's spans as JSONL "
                                   "(feeds repro trace --txn)")
    shard_stress.add_argument("--events-out", default=None, metavar="PATH",
                              help="export the run's lifecycle events as "
                                   "JSONL")
    shard_stress.add_argument("--json", action="store_true",
                              help="emit the full report as JSON")

    promote = subparsers.add_parser(
        "promote", help="promote a durability directory: recover it, "
                        "durably bump its fencing epoch, print the digest")
    promote.add_argument("--dir", required=True, metavar="DIR",
                         help="the durability directory")
    promote.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                         help="database kind when no checkpoint records it "
                              "(default: temporal)")
    promote.add_argument("--json", action="store_true",
                         help="emit epoch, digest and record count as JSON")

    serve = subparsers.add_parser(
        "serve", help="serve a database over TCP with the s1 wire "
                      "protocol; SIGTERM drains gracefully")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7583,
                       help="bind port, 0 for ephemeral (default: 7583)")
    serve.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                       help="database kind for a fresh in-memory database "
                            "(default: temporal)")
    serve.add_argument("--dir", default=None, metavar="DIR",
                       help="recover and serve a durability directory "
                            "instead of a fresh database")
    serve.add_argument("--plan", default="auto",
                       choices=("auto", "naive", "index", "columnar"),
                       help="TQuel access-path mode (default: auto)")
    serve.add_argument("--max-active", type=int, default=8, metavar="N",
                       help="admission slots per tenant (default: 8)")
    serve.add_argument("--max-queue", type=int, default=16, metavar="N",
                       help="admission queue per tenant; excess is shed "
                            "with Overloaded (default: 16)")
    serve.add_argument("--chunk-rows", type=int, default=64, metavar="N",
                       help="rows per streamed reply chunk (default: 64)")
    serve.add_argument("--max-pipeline", type=int, default=8, metavar="N",
                       help="concurrent requests per connection "
                            "(default: 8)")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       metavar="S",
                       help="close connections idle this long "
                            "(default: 30)")
    serve.add_argument("--write-stall", type=float, default=5.0,
                       metavar="S",
                       help="abort clients that stall reads this long "
                            "(default: 5)")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       metavar="S",
                       help="seconds in-flight work may finish after "
                            "SIGTERM before typed abort (default: 5)")
    serve.add_argument("--default-budget-ms", type=float, default=None,
                       metavar="MS",
                       help="deadline for requests that name none "
                            "(default: unbounded)")

    loadgen = subparsers.add_parser(
        "loadgen", help="drive the serving layer with concurrent "
                        "clients, optional wire chaos and failover; "
                        "audit zero lost acks and read-your-writes")
    loadgen.add_argument("--kind", choices=sorted(_KINDS),
                         default="temporal",
                         help="database kind behind the server "
                              "(default: temporal)")
    loadgen.add_argument("--clients", type=int, default=6, metavar="N",
                         help="concurrent client connections (default: 6)")
    loadgen.add_argument("--ops", type=int, default=20, metavar="N",
                         help="requests per client (default: 20)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="workload, backoff and chaos seed "
                              "(default: 0)")
    loadgen.add_argument("--write-ratio", type=float, default=0.5,
                         metavar="P",
                         help="fraction of requests that are writes "
                              "(default: 0.5)")
    loadgen.add_argument("--budget-ms", type=float, default=5000.0,
                         metavar="MS",
                         help="per-request deadline (default: 5000)")
    loadgen.add_argument("--tenants", type=int, default=1, metavar="N",
                         help="spread clients over N admission tenants "
                              "(default: 1)")
    loadgen.add_argument("--replicas", type=int, default=0, metavar="N",
                         help="stream commits to N replicas and route "
                              "replica/ryw reads (default: 0)")
    loadgen.add_argument("--failover-at", type=int, default=None,
                         metavar="N",
                         help="kill the primary server after N acked "
                              "writes and promote a replica "
                              "(needs --replicas >= 1)")
    loadgen.add_argument("--drop", type=float, default=0.0, metavar="P",
                         help="wire chaos: per-line drop probability")
    loadgen.add_argument("--delay", type=float, default=0.0, metavar="P",
                         help="wire chaos: per-line delay probability")
    loadgen.add_argument("--split", type=float, default=0.0, metavar="P",
                         help="wire chaos: partial-write probability")
    loadgen.add_argument("--corrupt", type=float, default=0.0, metavar="P",
                         help="wire chaos: byte-flip probability (the CRC "
                              "framing must catch every one)")
    loadgen.add_argument("--disconnect", type=float, default=0.0,
                         metavar="P",
                         help="wire chaos: mid-line disconnect probability")
    loadgen.add_argument("--json", action="store_true",
                         help="emit the full report as JSON")
    return parser


def _append_points():
    """The journal-append crash points ``repro stress --faults`` accepts."""
    from repro.storage.faults import CrashPoint
    return (CrashPoint.TORN_RECORD, CrashPoint.LOST_RECORD)


#: DatabaseKind value string (as checkpoints record it) → class.
_KIND_VALUES = {
    "static": StaticDatabase,
    "static rollback": RollbackDatabase,
    "historical": HistoricalDatabase,
    "temporal": TemporalDatabase,
}


def _durable_class(directory: str, kind_flag: str):
    """The database class a durability directory holds.

    The newest valid checkpoint records the kind; without one (fresh or
    journal-only directory) the ``--kind`` flag decides."""
    from repro.storage import detect_kind
    detected = detect_kind(directory)
    if detected is not None:
        return _KIND_VALUES[detected]
    return _KINDS[kind_flag]


def _repro_recover(args) -> int:
    """The ``repro recover`` verb: rebuild, then report what it took."""
    from repro.storage import DurabilityManager
    manager = DurabilityManager(args.dir)
    database, report = manager.recover(
        _durable_class(args.dir, args.kind), use_checkpoint=not args.full)
    data = report.describe()
    data["kind"] = str(database.kind)
    data["relations"] = sorted(database.relation_names())
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    source = ("full journal replay" if report.full_replay else
              f"checkpoint at commit index {report.checkpoint_index}")
    print(f"recovered a {database.kind} database from {source}")
    print(f"  records replayed:   {report.records_replayed} "
          f"of {report.records_total} durable")
    print(f"  segments read:      {report.segments_read}")
    if report.torn_bytes_truncated:
        print(f"  torn tail repaired: {report.torn_bytes_truncated} bytes "
              f"truncated")
    if report.checkpoints_skipped:
        print(f"  checkpoints skipped (damaged): "
              f"{report.checkpoints_skipped}")
    for name in data["relations"]:
        print(f"  relation: {name}")
    return 0


def _repro_checkpoint(args) -> int:
    """The ``repro checkpoint`` verb: recover, optionally run a script,
    publish a checkpoint."""
    from repro.storage import DurabilityManager
    manager = DurabilityManager(args.dir)
    database, _ = manager.recover(_durable_class(args.dir, args.kind))
    if args.file is not None:
        session = Session(database)
        with open(args.file, encoding="utf-8") as handle:
            for _ in session.execute_script(handle.read()):
                pass
    path = manager.checkpoint()
    print(f"checkpointed the {database.kind} database at commit index "
          f"{manager.record_count}: {path}")
    return 0


def _repro_stress(args) -> int:
    """The ``repro stress`` verb: run the harness, print the audit."""
    import tempfile

    from repro.concurrency import AdmissionController
    from repro.storage.faults import CrashPoint
    from repro.workload.stress import run_stress

    admission = None
    if args.max_active is not None or args.max_queue is not None:
        admission = AdmissionController(
            max_active=args.max_active or max(2, args.sessions),
            max_queue=(args.max_queue if args.max_queue is not None
                       else 4 * args.sessions))
    faults = CrashPoint(args.faults) if args.faults else None

    def run(directory):
        return run_stress(
            kind=_KINDS[args.kind], sessions=args.sessions,
            transactions=args.ops, keys=args.keys, seed=args.seed,
            admission=admission, timeout=args.timeout,
            faults=faults, fault_at=args.fault_at, directory=directory)

    if faults is not None and args.dir is None:
        with tempfile.TemporaryDirectory() as scratch:
            report = run(scratch)
    else:
        report = run(args.dir)

    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(f"stress: {report.sessions} sessions x "
          f"{report.transactions_per_session} transactions on a "
          f"{args.kind} database ({report.wall_s:.3f}s)")
    print(f"  committed:          {report.committed} of {report.attempted} "
          f"attempted")
    print(f"  conflicts retried:  {report.conflicts} "
          f"({report.retries} retries)")
    print(f"  shed (overloaded):  {report.shed}")
    print(f"  deadline exceeded:  {report.deadline_exceeded}")
    if faults is not None:
        print(f"  crashed:            {report.crashed} worker(s) saw the "
              f"injected crash")
        print(f"  recovered records:  {report.recovered_records} "
              f"(durable prefix intact: "
              f"{report.recovery_is_durable_prefix})")
    print(f"  lost updates:       {report.lost_updates}")
    print(f"  commit times:       "
          f"{'strictly increasing' if report.commit_times_monotone else 'OUT OF ORDER'}")
    print(f"  serial replay:      "
          f"{'equivalent' if report.serial_equivalent else 'DIVERGED'}")
    print(f"  audit: {'ok' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _repro_shard_stress(args) -> int:
    """The ``repro shard-stress`` verb: run the sharded harness."""
    import tempfile

    from repro.storage.faults import CrashPoint
    from repro.workload.sharded import run_sharded

    faults = CrashPoint(args.faults) if args.faults else None

    def run(directory):
        return run_sharded(
            kind=_KINDS[args.kind], shards=args.shards,
            sessions=args.sessions, transactions=args.ops,
            keys_per_session=args.keys, cross_ratio=args.cross,
            seed=args.seed, placement=args.placement,
            timeout=args.timeout, faults=faults, fault_at=args.fault_at,
            directory=directory, replicas=args.replicas,
            trace_out=args.trace_out, events_out=args.events_out)

    if faults is not None and args.dir is None:
        with tempfile.TemporaryDirectory() as scratch:
            report = run(scratch)
    else:
        report = run(args.dir)

    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(f"shard-stress: {report.sessions} sessions x "
          f"{report.transactions_per_session} transactions over "
          f"{report.shards} shards of a {args.kind} database "
          f"({report.wall_s:.3f}s, {report.placement} keys)")
    print(f"  committed:          {report.committed} of {report.attempted} "
          f"attempted ({report.tps:.0f} tps)")
    print(f"  cross-shard:        {report.cross_shard_commits} committed "
          f"through the two-phase protocol")
    print(f"  conflicts retried:  {report.conflicts}")
    print(f"  commit latency:     p50 {report.latency_p50_s * 1e6:.0f}us, "
          f"p95 {report.latency_p95_s * 1e6:.0f}us, "
          f"p99 {report.latency_p99_s * 1e6:.0f}us")
    for entry in report.per_shard:
        extra = (f", {entry['journal_bytes']} journal bytes"
                 if "journal_bytes" in entry else "")
        print(f"  shard {entry['shard']}:            "
              f"{entry['commits']} commits, "
              f"{entry['conflicts']} conflicts{extra}")
    if faults is not None:
        print(f"  crashed:            {report.crashed} worker(s) saw the "
              f"injected crash")
        print(f"  recovery:           {report.recovered_records} records, "
              f"{report.recovery_reapplied} decided batches re-applied, "
              f"{report.recovery_in_doubt_aborted} in-doubt rolled back")
        print(f"  durable prefix:     {report.recovery_is_durable_prefix}")
    if report.replicas:
        digest_note = ("" if report.replica_digest_match is None else
                       f", digests "
                       f"{'match' if report.replica_digest_match else 'DIVERGED'}")
        print(f"  replicas:           {report.replicas} "
              f"({'converged' if report.replica_converged else 'LAGGING'}, "
              f"{report.replica_records_applied} records applied"
              f"{digest_note})")
    if report.sample_cross_txn is not None:
        print(f"  sample cross txn:   {report.sample_cross_txn}"
              + (f"  (repro trace --txn {report.sample_cross_txn} "
                 f"--input {report.trace_path})"
                 if report.trace_path else ""))
    if report.trace_path:
        print(f"  spans exported:     {report.trace_path} "
              f"({report.spans_dropped} dropped)")
    if report.events_path:
        print(f"  events exported:    {report.events_path} "
              f"({report.events_dropped} dropped)")
    if report.slo:
        print(f"  slo:                "
              f"{'within objectives' if report.slo.get('ok') else 'BUDGET BURNED'}")
    print(f"  lost updates:       {report.lost_updates}")
    print(f"  sum conservation:   delta {report.sum_delta:+d}")
    print(f"  commit times:       "
          f"{'strictly increasing' if report.commit_times_monotone else 'OUT OF ORDER'}")
    print(f"  serial replay:      "
          f"{'equivalent' if report.serial_equivalent else 'DIVERGED'}")
    print(f"  audit: {'ok' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _repro_health(args) -> int:
    """The ``repro health`` verb: mixed workload, SLO verdict, exit code.

    Drives *ops* transactions of each operation class — read-only,
    single-shard write, cross-shard transfer — through a small sharded
    store, then judges the recorded latencies against the policy built
    from the objective flags.  Exit 1 means an error budget burned:
    more than ``--budget`` of a class's transactions missed their
    latency objective.
    """
    from repro import obs
    from repro.obs.slo import Objective, SloPolicy
    from repro.relational import Domain, Schema
    from repro.sharding.store import ShardedDatabase

    policy = SloPolicy({
        "read": Objective(args.read_ms / 1000.0, args.budget),
        "single_shard_write": Objective(args.write_ms / 1000.0, args.budget),
        "cross_shard_write": Objective(args.cross_ms / 1000.0, args.budget),
    })
    store = ShardedDatabase(StaticDatabase, shards=2,
                            clock=SimulatedClock("01/01/77"))
    store.define("counters", Schema.of(key=["k"], k=Domain.STRING,
                                       v=Domain.INTEGER))
    keys = [f"k{i}" for i in range(16)]
    for key in keys:
        store.insert("counters", {"k": key, "v": 0})
    by_shard = sorted(keys, key=lambda k: store.shard_of_key(
        "counters", {"k": k}))
    cross_a, cross_b = by_shard[0], by_shard[-1]
    layer = store.sessions()

    def read_only(session):
        session.get("counters", {"k": keys[0]})

    def increment(session):
        row = session.get("counters", {"k": keys[1]})[0]
        session.replace("counters", {"k": keys[1]}, {"v": row["v"] + 1})

    def transfer(session):
        row_a = session.get("counters", {"k": cross_a})[0]
        row_b = session.get("counters", {"k": cross_b})[0]
        session.replace("counters", {"k": cross_a}, {"v": row_a["v"] + 1})
        session.replace("counters", {"k": cross_b}, {"v": row_b["v"] - 1})

    with obs.recording() as instrumentation:
        for _ in range(args.ops):
            layer.run(read_only)
            layer.run(increment)
            layer.run(transfer)
    health = instrumentation.slo.health(policy)
    if args.json:
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0 if health["ok"] else 1
    print(f"health: {'ok' if health['ok'] else 'BUDGET BURNED'} "
          f"({args.ops} transactions per class)")
    for name, entry in sorted(health["classes"].items()):
        print(f"  {name:<20} p50 {entry.get('p50', 0.0) * 1e3:.2f}ms  "
              f"p95 {entry.get('p95', 0.0) * 1e3:.2f}ms  "
              f"objective {entry['objective_s'] * 1e3:.0f}ms  "
              f"violations {entry['violations']}/{entry['count']} "
              f"(burn {entry['burn']:.2f} of budget {entry['budget']:.2f})"
              f"  {'ok' if entry['ok'] else 'BURNED'}")
    return 0 if health["ok"] else 1


def _repro_bench_diff(args) -> int:
    """The ``repro bench-diff`` verb: gate a fresh report on a baseline."""
    from repro.obs import bench_diff

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    result = bench_diff(baseline, fresh, tolerance=args.tolerance)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0 if result["ok"] else 1
    print(f"bench-diff: {result['compared']} metrics compared, "
          f"{result['regressions']} regression(s) beyond "
          f"{result['tolerance']:.0%} tolerance")
    for row in result["rows"]:
        if row["change"] >= 0:
            marker = "REGRESSED" if row["regression"] else "ok"
            detail = f"({row['change']:+.1%} worse, {marker})"
        else:
            detail = f"({-row['change']:.1%} better)"
        print(f"  {row['metric']:<44} {row['baseline']:>12.4g} -> "
              f"{row['fresh']:>12.4g}  {detail}")
    return 0 if result["ok"] else 1


def _load_jsonl(path: str) -> list:
    """Parse one JSON object per line (span / event exports)."""
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _render_trace_tree(span_rows, event_rows, txn: str, out=None) -> int:
    """Print one transaction's spans as a causally-ordered tree.

    Children are ordered by start time under their parent; a span whose
    parent fell off the ring is shown as an extra root (and counted, so
    a truncated export is visible rather than silently re-rooted).
    """
    out = out if out is not None else sys.stdout
    mine = [s for s in span_rows if s.get("trace_id") == txn]
    if not mine:
        print(f"no spans recorded for {txn!r}", file=out)
        return 1
    by_id = {s["span_id"]: s for s in mine}
    children: dict = {}
    roots = []
    for span in sorted(mine, key=lambda s: (s.get("started_at", 0.0),
                                            s["span_id"])):
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    orphans = sum(1 for s in roots if s.get("parent_id") is not None)
    note = f", {orphans} orphaned" if orphans else ""
    print(f"trace {txn}: {len(mine)} span(s), {len(roots)} root(s){note}",
          file=out)
    base = min(s.get("started_at", 0.0) for s in mine)

    def walk(span, depth):
        attrs = span.get("attributes") or {}
        extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        offset = (span.get("started_at", 0.0) - base) * 1e6
        print(f"  {'  ' * depth}- {span['name']}  "
              f"+{offset:.0f}us {span.get('duration_s', 0.0) * 1e6:.0f}us"
              + (f"  [{extra}]" if extra else ""), file=out)
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    events = [e for e in event_rows if e.get("txn") == txn]
    if events:
        print(f"events ({len(events)}):", file=out)
        for event in sorted(events, key=lambda e: e.get("seq", 0)):
            attrs = event.get("attrs") or {}
            extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            print(f"  #{event.get('seq')} {event['kind']}"
                  + (f"  {extra}" if extra else ""), file=out)
    return 0


def _repro_digest(args) -> int:
    """The ``repro digest`` verb: recover, print the canonical digest.

    The digest is over recovered *state*, not files, so two directories
    holding the same commit history — checkpointed differently, torn
    differently — print the same value; so do a primary and a caught-up
    replica.  ``--full`` forces the full-replay path as a cross-check.
    """
    from repro.replication import state_digest
    from repro.storage import DurabilityManager
    database, report = DurabilityManager(args.dir).recover(
        _durable_class(args.dir, args.kind), use_checkpoint=not args.full)
    digest = state_digest(database)
    if args.json:
        print(json.dumps({"digest": digest, "kind": str(database.kind),
                          "records": report.records_total,
                          "full_replay": report.full_replay},
                         indent=2, sort_keys=True))
        return 0
    print(digest)
    return 0


def _format_audit(report) -> str:
    """Human-readable rendering of one AuditReport."""
    lines = [f"audited {report.directory}: "
             f"{report.segments_audited} segment(s), "
             f"{report.checkpoints_audited} checkpoint(s), "
             f"{report.sidelogs_audited} side log(s)"]
    lines.append(f"  records:         {report.records_total} "
                 f"({report.chain_verified} chain-verified, "
                 f"{report.legacy_frames} legacy bare-JSON)")
    lines.append(f"  verified prefix: {report.verified_prefix} record(s)")
    head = report.chain_head
    lines.append(f"  chain head:      "
                 f"{head if head is not None else '(unknown)'}")
    if report.clean:
        lines.append("  clean: no damage found")
    else:
        lines.append(f"  findings: {len(report.findings)}")
        for finding in report.findings:
            where = finding.file
            if finding.line_number is not None:
                where += f":{finding.line_number}"
            lines.append(f"    [{finding.kind}] {where}: {finding.detail}")
    return "\n".join(lines)


def _repro_audit(args) -> int:
    """The ``repro audit`` verb: classify damage, change nothing.

    Exit status 0 means clean; 2 means the audit found damage (so a
    cron job can page on it) — 1 stays reserved for operational errors.
    """
    from repro.storage import audit_directory
    from repro.storage.scrub import audit_sharded
    if args.sharded:
        result = audit_sharded(args.dir)
        if args.json:
            data = dict(result)
            data["per_shard"] = [r.describe() for r in result["per_shard"]]
            data["decision_log"] = [f.describe()
                                    for f in result["decision_log"]]
            print(json.dumps(data, indent=2, sort_keys=True))
        else:
            for report in result["per_shard"]:
                print(_format_audit(report))
            for finding in result["decision_log"]:
                print(f"  [sidelog] decisions.seg: {finding.detail}")
            root = result["combined_root"]
            print(f"combined root: "
                  f"{root if root is not None else '(unknown)'}")
        return 0 if result["clean"] else 2
    report = audit_directory(args.dir)
    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
    else:
        print(_format_audit(report))
    return 0 if report.clean else 2


def _repro_scrub(args) -> int:
    """The ``repro scrub`` verb: quarantine damage, optionally repair.

    Without ``--repair-from`` the damaged files are quarantined and the
    directory is left recoverable at its verified prefix.  With it, the
    damaged suffix is re-fetched from the source (records, or a whole
    snapshot when the source compacted past the prefix) and the result
    is digest-checked against the source.
    """
    from repro.storage import Scrubber
    from repro.storage.scrub import DirectorySource
    scrubber = Scrubber(args.dir)
    factory = _durable_class(args.dir, args.kind)
    if args.repair_from is None:
        report = scrubber.audit()
        moved = scrubber.quarantine(report)
        if args.json:
            data = report.describe()
            data["quarantined"] = moved
            print(json.dumps(data, indent=2, sort_keys=True))
            return 0 if report.clean else 2
        print(_format_audit(report))
        if moved:
            print(f"  quarantined: {', '.join(moved)}")
            print(f"  the directory now recovers to its verified prefix; "
                  f"re-run with --repair-from to converge with a healthy "
                  f"copy")
        return 0 if report.clean else 2
    source = DirectorySource(args.repair_from, factory)
    report = scrubber.repair(source, factory)
    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
        return 0
    if report.findings == 0:
        print(f"{args.dir} is clean: {report.records_total} record(s), "
              f"nothing to repair")
        return 0
    path = "snapshot catch-up" if report.used_snapshot else "record resend"
    print(f"repaired {args.dir} from {args.repair_from}")
    print(f"  findings:     {report.findings}")
    print(f"  quarantined:  {', '.join(report.quarantined) or '(nothing)'}")
    print(f"  re-fetched:   {report.refetched_records} record(s) via {path}")
    print(f"  records now:  {report.records_total}")
    head = report.chain_head
    print(f"  chain head:   {head if head is not None else '(unknown)'}")
    if report.digest_match is not None:
        print(f"  digest check: "
              f"{'equal to source' if report.digest_match else 'MISMATCH'}")
    return 0 if report.digest_match in (True, None) else 1


def _repro_promote(args) -> int:
    """The ``repro promote`` verb: durably bump a directory's epoch.

    Recovery proves the directory's history is intact, then the fencing
    epoch file is atomically advanced — records stamped with the old
    epoch are rejected by every replica that saw this promotion.
    """
    from repro.replication import read_epoch, state_digest, write_epoch
    from repro.storage import DurabilityManager
    database, report = DurabilityManager(args.dir).recover(
        _durable_class(args.dir, args.kind))
    epoch = read_epoch(args.dir) + 1
    write_epoch(args.dir, epoch)
    digest = state_digest(database)
    if args.json:
        print(json.dumps({"epoch": epoch, "digest": digest,
                          "kind": str(database.kind),
                          "records": report.records_total},
                         indent=2, sort_keys=True))
        return 0
    print(f"promoted the {database.kind} database in {args.dir}")
    print(f"  epoch:   {epoch} (records from older epochs are now fenced)")
    print(f"  records: {report.records_total}")
    print(f"  digest:  {digest}")
    return 0


def _repro_replicate(args) -> int:
    """The ``repro replicate`` verb: run the replicated chaos harness."""
    from repro.workload.stress import run_replicated

    report = run_replicated(
        kind=_KINDS[args.kind], replicas=args.replicas,
        writers=args.writers, transactions=args.ops, keys=args.keys,
        seed=args.seed, drop=args.drop, duplicate=args.duplicate,
        reorder=args.reorder, delay=args.delay,
        partition_at=args.partition_at, heal_at=args.heal_at,
        failover_at=args.failover_at)
    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(f"replicate: {report.writers} writers x "
          f"{report.transactions_per_writer} transactions, "
          f"{report.replicas} replicas on a {args.kind} database "
          f"({report.wall_s:.3f}s)")
    print(f"  committed:          {report.committed} of {report.attempted} "
          f"attempted")
    print(f"  primary seq:        {report.primary_seq} "
          f"(epoch {report.final_epoch})")
    faults = ", ".join(f"{name}={count}" for name, count
                       in sorted(report.transport.items()))
    print(f"  transport:          {faults}")
    print(f"  stream repair:      {report.gaps_detected} gaps, "
          f"{report.duplicates_dropped} duplicates dropped, "
          f"{report.snapshots_loaded} snapshot catch-ups")
    if report.failover_performed:
        print(f"  failover:           promoted (prefix verified: "
              f"{report.promoted_prefix_verified}, "
              f"{report.fenced_rejects} zombie records fenced)")
    print(f"  lost durable:       {report.lost_durable_commits}")
    print(f"  replicas:           "
          f"{'converged' if report.replicas_converged else 'DIVERGED'} "
          f"({report.diverged} latched divergence)")
    print(f"  read-your-writes:   "
          f"{'ok' if report.read_your_writes_ok else 'VIOLATED'} "
          f"({report.ryw_reads_lagging} reads waited on the token)")
    print(f"  audit: {'ok' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _demo_workload(session: Session, clock: SimulatedClock) -> None:
    """The quickstart faculty history, plus repeated indexed reads.

    Mirrors ``examples/quickstart.py``'s six transactions (§4 of the
    paper); the repeated trailing queries make the index cache show hits,
    so a bare ``repro stats`` demonstrates every instrumented layer.
    """
    database = session.database
    historical = database.supports_historical_queries
    valid = (lambda clause: " " + clause) if historical else (lambda _: "")

    session.execute("create faculty (name = string, rank = string) "
                    "key (name)")
    session.execute("range of f is faculty")
    history = [
        ("08/25/77", 'append to faculty (name = "Merrie", '
                     'rank = "associate")' + valid('valid from "09/01/77"')),
        ("12/01/82", 'append to faculty (name = "Tom", rank = "full")'
                     + valid('valid from "12/05/82"')),
        ("12/07/82", 'replace f (rank = "associate") where f.name = "Tom"'
                     + valid('valid from "12/05/82"')),
        ("12/15/82", 'replace f (rank = "full") where f.name = "Merrie"'
                     + valid('valid from "12/01/82"')),
        ("01/10/83", 'append to faculty (name = "Mike", rank = "assistant")'
                     + valid('valid from "01/01/83"')),
        ("02/25/84", 'delete f where f.name = "Mike"'
                     + valid('valid from "03/01/84"')),
    ]
    for instant, statement in history:
        clock.set(instant)
        session.execute(statement)
    for _ in range(3):
        if database.supports_rollback:
            session.execute('retrieve (f.rank) where f.name = "Merrie" '
                            'as of "12/10/82"')
        else:
            session.execute('retrieve (f.name, f.rank) sort by name')
    if database.supports_rollback and session.plan == "auto":
        # The cost model keeps this tiny relation on the naive path, so
        # force one indexed pass (a miss, then a hit) to keep the
        # interval-tree layer in the stats story too.
        session.plan = "index"
        try:
            for _ in range(2):
                session.execute('retrieve (f.rank) where f.name = "Merrie" '
                                'as of "12/10/82"')
        finally:
            session.plan = "auto"


def _sharded_demo(shards: int) -> None:
    """A small sharded workload: populates every ``shard.<i>.*`` metric.

    Runs inside the caller's recording: durable store, per-shard
    sessions with a deliberate same-key collision (conflicts), a
    cross-shard transfer (the 2PC counters), then ``shard_stats()`` for
    the journal-bytes and record gauges.
    """
    import tempfile

    from repro.relational import Domain, Schema
    from repro.sharding import ShardedDurabilityManager

    with tempfile.TemporaryDirectory() as scratch:
        manager = ShardedDurabilityManager(scratch, shards=shards)
        store, _ = manager.recover(StaticDatabase)
        for shard_db in store.shard_databases:
            shard_db.manager.clock.source.set("01/01/77")
        store.define("counters", Schema.of(key=["k"], k=Domain.STRING,
                                           v=Domain.INTEGER))
        keys = [f"k{i}" for i in range(8 * shards)]
        for key in keys:
            store.insert("counters", {"k": key, "v": 0})
        layer = store.sessions()

        def bump(key):
            def closure(session):
                row = session.get("counters", {"k": key})[0]
                session.replace("counters", {"k": key},
                                {"v": row["v"] + 1})
            return closure

        for key in keys:
            layer.run(bump(key))
        # one deliberate conflict: validate against a moved footprint
        first, second = layer.begin(), layer.begin()
        first.replace("counters", {"k": keys[0]}, {"v": 100})
        second.replace("counters", {"k": keys[0]}, {"v": 200})
        first.commit()
        try:
            second.commit()
        except ReproError:
            pass
        # one cross-shard transfer through the two-phase protocol
        pair = sorted(keys, key=lambda k: store.shard_of_key(
            "counters", {"k": k}))
        with store.begin() as txn:
            store.replace("counters", {"k": pair[0]}, {"v": 1}, txn=txn)
            store.replace("counters", {"k": pair[-1]}, {"v": 2}, txn=txn)
        manager.shard_stats()


def _instrumented_run(args):
    """Run the requested workload under a fresh recording; return it."""
    from repro import obs
    clock = SimulatedClock("01/01/77")
    session = Session(_KINDS[args.kind](clock=clock))
    if getattr(args, "shards", None):
        with obs.recording() as instrumentation:
            _sharded_demo(args.shards)
        return instrumentation
    with obs.recording() as instrumentation:
        if args.file is not None:
            with open(args.file, encoding="utf-8") as handle:
                source = handle.read()
            for _ in session.execute_script(source):
                pass
        else:
            _demo_workload(session, clock)
    return instrumentation


def _cache_snapshot(database) -> dict:
    """The two query caches' stats, as one JSON-friendly dict."""
    columnar = database.columnar_cache
    results = database.result_cache
    return {
        "columnar": columnar.describe() if columnar is not None else None,
        "results": results.describe() if results is not None else None,
    }


def _format_caches(database) -> str:
    """Render the columnar and result caches as aligned text."""
    snapshot = _cache_snapshot(database)
    if snapshot["columnar"] is None and snapshot["results"] is None:
        return "query caches disabled (database created with index=False)"
    lines = []
    columnar = snapshot["columnar"]
    if columnar is not None:
        lines.append("columnar chunks:")
        lines.append(f"  built for: "
                     f"{', '.join(columnar['relations']) or '(none)'}")
        for name, count in columnar["rows"].items():
            lines.append(f"  rows packed ({name}): {count}")
        lines.append(f"  hits={columnar['hits']} misses={columnar['misses']} "
                     f"extensions={columnar['extensions']}")
    results = snapshot["results"]
    if results is not None:
        lines.append("as-of result cache:")
        lines.append(f"  entries: {results['size']}/{results['capacity']} "
                     f"({results['immutable_entries']} immutable, "
                     f"{results['epoch_entries']} epoch-bound)")
        lines.append(f"  hits={results['hits']} misses={results['misses']} "
                     f"evictions={results['evictions']} "
                     f"invalidations={results['invalidations']}")
    return "\n".join(lines)


def _repro_cache(args) -> int:
    """``repro cache``: run a workload, report both query caches."""
    clock = SimulatedClock("01/01/77")
    session = Session(_KINDS[args.kind](clock=clock), plan=args.plan)
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            session.execute_script(handle.read())
    else:
        _demo_workload(session, clock)
    if args.json:
        print(json.dumps(_cache_snapshot(session.database), indent=2,
                         sort_keys=True))
    else:
        print(_format_caches(session.database))
    return 0


def _format_stats(stats) -> str:
    """Render a ``stats()`` snapshot as aligned text."""
    state = "recording" if stats["instrumentation_enabled"] else "off"
    lines = [f"instrumentation: {state}"]
    metrics = stats["metrics"]
    if metrics.get("counters"):
        lines.append("counters:")
        for name, value in metrics["counters"].items():
            lines.append(f"  {name:<34} {value}")
    if metrics.get("gauges"):
        lines.append("gauges:")
        for name, value in metrics["gauges"].items():
            lines.append(f"  {name:<34} {value}")
    if metrics.get("histograms"):
        lines.append("histograms:")
        for name, summary in metrics["histograms"].items():
            lines.append(
                f"  {name}: count={summary['count']} "
                f"total={summary['total'] * 1e3:.3f}ms "
                f"p50={summary['p50'] * 1e6:.1f}us "
                f"p95={summary['p95'] * 1e6:.1f}us "
                f"max={summary['max'] * 1e6:.1f}us")
    if stats["spans"]:
        dropped = stats.get("spans_dropped", 0)
        lines.append(f"spans ({stats['spans_retained']} retained, "
                     f"{dropped} dropped):")
        for name, entry in sorted(stats["spans"].items()):
            lines.append(
                f"  {name:<34} count={entry['count']} "
                f"total={entry['total_s'] * 1e3:.3f}ms "
                f"max={entry['max_s'] * 1e6:.1f}us")
    events = stats.get("events") or {}
    if events.get("recorded"):
        lines.append(f"events ({events['recorded']} recorded, "
                     f"{events['dropped']} dropped):")
        for kind, count in sorted((events.get("by_kind") or {}).items()):
            lines.append(f"  {kind:<34} {count}")
    slo = stats.get("slo") or {}
    if slo.get("classes"):
        lines.append(f"slo: {'ok' if slo.get('ok') else 'BUDGET BURNED'}")
        for name, entry in sorted(slo["classes"].items()):
            lines.append(
                f"  {name:<34} count={entry['count']} "
                f"p95={entry.get('p95', 0.0) * 1e3:.2f}ms "
                f"violations={entry['violations']}")
    return "\n".join(lines)


def _repro_serve(args) -> int:
    """The ``repro serve`` verb: a TCP server with graceful SIGTERM drain."""
    import asyncio
    import signal
    from repro.server import ReproServer, ServerConfig
    if args.dir is not None:
        from repro.storage import DurabilityManager
        database, _ = DurabilityManager(args.dir).recover(
            _durable_class(args.dir, args.kind))
    else:
        database = _KINDS[args.kind]()
    config = ServerConfig(chunk_rows=args.chunk_rows,
                          max_pipeline=args.max_pipeline,
                          idle_timeout=args.idle_timeout,
                          write_stall_timeout=args.write_stall,
                          drain_grace=args.drain_grace,
                          max_active=args.max_active,
                          max_queue=args.max_queue,
                          default_budget=(args.default_budget_ms / 1000.0
                                          if args.default_budget_ms
                                          else None),
                          plan=args.plan)

    async def run() -> None:
        server = ReproServer(database, config)
        host, port = await server.serve(args.host, args.port)
        print(f"serving a {database.kind} database on {host}:{port} "
              f"(s1 protocol); SIGTERM drains", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("draining: no new work, finishing in-flight "
              f"(grace {config.drain_grace}s)", flush=True)
        tally = await server.drain()
        server.shutdown()
        print(f"drained: {tally['completed']} completed, "
              f"{tally['aborted']} aborted, "
              f"{tally['rejected']} rejected")

    asyncio.run(run())
    return 0


def _repro_loadgen(args) -> int:
    """The ``repro loadgen`` verb: run the serving harness, print the
    audit, exit 1 when an invariant broke."""
    from repro.server import ChaosConfig
    from repro.workload import run_serving
    chaos = None
    if any((args.drop, args.delay, args.split, args.corrupt,
            args.disconnect)):
        chaos = ChaosConfig(seed=args.seed, drop=args.drop,
                            delay=args.delay, split=args.split,
                            corrupt=args.corrupt,
                            disconnect=args.disconnect)
    report = run_serving(
        clients=args.clients, requests=args.ops, seed=args.seed,
        write_ratio=args.write_ratio, budget_ms=args.budget_ms,
        chaos=chaos, replicas=args.replicas,
        failover_at=args.failover_at,
        tenants=tuple(f"tenant-{i}" for i in range(args.tenants)),
        kind=_KINDS[args.kind])
    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    print(f"loadgen: {args.clients} client(s) x {args.ops} request(s) "
          f"in {report.wall_s:.3f}s")
    print(f"  succeeded:            {report.succeeded} of "
          f"{report.attempted}")
    print(f"  shed / drained:       {report.shed} / {report.drained}")
    print(f"  deadline exceeded:    {report.deadline_exceeded}")
    print(f"  transport failures:   {report.transport_failures}")
    print(f"  client retries:       {report.client_retries} "
          f"(failovers: {report.client_failovers})")
    print(f"  acked writes:         {report.acked_writes} "
          f"(lost: {report.acked_writes_lost}, "
          f"duplicate acks: {report.duplicate_acks})")
    print(f"  read-your-writes:     {report.ryw_checks} check(s), "
          f"{report.ryw_violations} violation(s)")
    if report.failover_performed:
        print("  failover:             primary killed mid-run, replica "
              "promoted")
    if report.chaos:
        print("  chaos injected:       " + ", ".join(
            f"{name}={count}" for name, count in
            sorted(report.chaos.items())))
    print(f"  late replies suppressed: "
          f"{report.server.get('late_suppressed', 0)}")
    print("  audit: " + ("OK" if report.ok else "FAILED"))
    return 0 if report.ok else 1


def repro_main(argv: Optional[list] = None) -> int:
    """Entry point for the ``repro`` console script."""
    args = build_repro_parser().parse_args(argv)
    if args.subcommand in ("recover", "checkpoint", "stress", "digest",
                           "audit", "scrub", "replicate", "promote",
                           "shard-stress", "health", "bench-diff", "cache",
                           "serve", "loadgen"):
        try:
            handler = {"recover": _repro_recover,
                       "checkpoint": _repro_checkpoint,
                       "stress": _repro_stress,
                       "digest": _repro_digest,
                       "audit": _repro_audit,
                       "scrub": _repro_scrub,
                       "replicate": _repro_replicate,
                       "promote": _repro_promote,
                       "shard-stress": _repro_shard_stress,
                       "health": _repro_health,
                       "bench-diff": _repro_bench_diff,
                       "cache": _repro_cache,
                       "serve": _repro_serve,
                       "loadgen": _repro_loadgen}[args.subcommand]
            return handler(args)
        except (ReproError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.subcommand == "trace" and args.input is not None:
        # Offline reconstruction from a JSONL export — no workload run.
        try:
            span_rows = _load_jsonl(args.input)
            event_rows = (_load_jsonl(args.events_input)
                          if args.events_input else [])
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.txn is not None:
            return _render_trace_tree(span_rows, event_rows, args.txn)
        if args.limit is not None:
            span_rows = span_rows[-args.limit:]
        for row in span_rows:
            print(json.dumps(row, sort_keys=True, default=str))
        return 0
    try:
        instrumentation = _instrumented_run(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.subcommand == "stats":
        if args.openmetrics:
            from repro.obs import to_openmetrics
            print(to_openmetrics(instrumentation.metrics.snapshot()),
                  end="")
            return 0
        snapshot = instrumentation.stats()
        if args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
        else:
            print(_format_stats(snapshot))
        return 0
    spans = instrumentation.tracer.spans()
    if args.txn is not None:
        event_rows = [event.describe()
                      for event in instrumentation.events.events()]
        return _render_trace_tree([span.describe() for span in spans],
                                  event_rows, args.txn)
    if args.limit is not None:
        spans = spans[-args.limit:]
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.describe(), sort_keys=True,
                                        default=str) + "\n")
        print(f"wrote {len(spans)} span(s) to {args.out}")
    else:
        for span in spans:
            print(json.dumps(span.describe(), sort_keys=True, default=str))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
