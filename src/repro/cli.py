"""The ``tquel`` command-line shell.

An interactive REPL (or script runner) over any of the four database
kinds::

    tquel --kind temporal                 # interactive shell
    tquel --kind historical -f script.tq  # run a script
    tquel -c 'create r (x = string)'      # run one statement
    tquel --kind temporal --journal db.journal   # durable session

Inside the shell, TQuel statements run directly; lines starting with a
dot are shell commands:

    .help               this message
    .kind               show the database kind and its capabilities
    .relations          list relations
    .figure <relation>  render a relation in the paper's figure style
    .log                show the commit log
    .clock <instant>    advance the simulated clock (e.g. .clock 12/15/82)
    .save <path>        dump the database to JSON
    .migrate <kind>     migrate the session's database to another kind
                        (static|rollback|historical|temporal); append
                        " force" to allow a lossy downgrade
    .explain <query>    show how a retrieve would execute
    .quit               leave
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core import (HistoricalDatabase, RollbackDatabase, StaticDatabase,
                        TemporalDatabase)
from repro.errors import ReproError
from repro.storage import Journal, dumps_database
from repro.time import SimulatedClock, SystemClock
from repro.tquel import Session

_KINDS = {
    "static": StaticDatabase,
    "rollback": RollbackDatabase,
    "historical": HistoricalDatabase,
    "temporal": TemporalDatabase,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="tquel",
        description="A TQuel shell over the four database kinds of "
                    "Snodgrass & Ahn's taxonomy.")
    parser.add_argument("--kind", choices=sorted(_KINDS), default="temporal",
                        help="which kind of database to run (default: temporal)")
    parser.add_argument("--simulated-clock", metavar="INSTANT", default=None,
                        help="start from a simulated clock at INSTANT "
                             "(e.g. 01/01/80) instead of the system clock")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="journal every commit to PATH (JSON lines)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="rebuild the database from a journal first")
    parser.add_argument("-c", "--command", default=None,
                        help="run one statement and exit")
    parser.add_argument("-f", "--file", default=None,
                        help="run a script file and exit")
    return parser


def make_session(args) -> Session:
    """Construct the session an invocation asked for."""
    if args.replay is not None:
        database = Journal(args.replay).replay(_KINDS[args.kind])
    else:
        if args.simulated_clock is not None:
            clock = SimulatedClock(args.simulated_clock)
        else:
            clock = SystemClock()
        database = _KINDS[args.kind](clock=clock)
    if args.journal is not None:
        Journal(args.journal).bind(database)
    return Session(database)


def run_source(session: Session, source: str, out=None) -> int:
    """Run statements from *source*, printing results; returns an exit code."""
    out = out if out is not None else sys.stdout
    try:
        for result in session.execute_script(source):
            rendered = session.render(result)
            if rendered != "(no result)":
                print(rendered, file=out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _dot_command(session: Session, line: str, out) -> bool:
    """Handle a shell command; returns False to quit."""
    command, _, argument = line.partition(" ")
    argument = argument.strip()
    database = session.database
    if command in (".quit", ".exit"):
        return False
    if command == ".help":
        print(__doc__, file=out)
    elif command == ".kind":
        kind = database.kind
        print(f"{kind} database — rollback: "
              f"{'yes' if kind.supports_rollback else 'no'}, historical "
              f"queries: {'yes' if kind.supports_historical_queries else 'no'}",
              file=out)
    elif command == ".relations":
        for name in database.relation_names():
            print(f"  {name}{'  (event)' if getattr(database, 'is_event_relation', lambda n: False)(name) else ''}",
                  file=out)
    elif command == ".figure":
        from repro.tquel import printer
        if hasattr(database, "temporal"):
            print(printer.render_temporal(
                database.temporal(argument), argument,
                event=database.is_event_relation(argument)), file=out)
        elif hasattr(database, "history"):
            print(printer.render_historical(
                database.history(argument), argument,
                event=database.is_event_relation(argument)), file=out)
        elif hasattr(database, "store"):
            store = database.store(argument)
            if hasattr(store, "rows"):
                print(printer.render_rollback(store, argument), file=out)
            else:
                print(database.snapshot(argument).pretty(argument), file=out)
        else:
            print(database.snapshot(argument).pretty(argument), file=out)
    elif command == ".log":
        for record in database.log:
            ops = ", ".join(f"{op.action} {op.relation}"
                            for op in record.operations)
            print(f"  #{record.sequence} at {record.commit_time}: {ops}",
                  file=out)
    elif command == ".clock":
        clock = database.manager.clock.source
        if isinstance(clock, SimulatedClock):
            clock.set(argument)
            print(f"clock at {clock.current()}", file=out)
        else:
            print("not running on a simulated clock", file=out)
    elif command == ".migrate":
        parts = argument.split()
        kind_name = parts[0] if parts else ""
        force = len(parts) > 1 and parts[1] == "force"
        if kind_name not in _KINDS:
            print(f"usage: .migrate <{('|'.join(sorted(_KINDS)))}> [force]",
                  file=out)
        else:
            try:
                session.migrate_database(_KINDS[kind_name],
                                         allow_loss=force)
                print(f"migrated to a {session.database.kind} database",
                      file=out)
            except ReproError as error:
                print(f"error: {error}", file=out)
    elif command == ".explain":
        try:
            print(session.explain(argument), file=out)
        except ReproError as error:
            print(f"error: {error}", file=out)
    elif command == ".save":
        with open(argument, "w", encoding="utf-8") as handle:
            handle.write(dumps_database(session.database, indent=2))
        print(f"saved to {argument}", file=out)
    else:
        print(f"unknown command {command!r}; try .help", file=out)
    return True


def repl(session: Session, stdin=None, out=None) -> int:
    """The interactive loop."""
    stdin = stdin if stdin is not None else sys.stdin
    out = out if out is not None else sys.stdout
    print(f"tquel shell — {session.database.kind} database "
          f"(.help for commands)", file=out)
    while True:
        try:
            print("tquel> ", end="", file=out, flush=True)
            line = stdin.readline()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print(file=out)
            return 0
        if not line:
            return 0
        line = line.strip()
        if not line:
            continue
        if line.startswith("."):
            if not _dot_command(session, line, out):
                return 0
            continue
        try:
            result = session.execute(line)
            rendered = session.render(result)
            print(rendered, file=out)
        except ReproError as error:
            print(f"error: {error}", file=out)


def main(argv: Optional[list] = None) -> int:
    """Entry point for the ``tquel`` console script."""
    args = build_parser().parse_args(argv)
    session = make_session(args)
    if args.command is not None:
        return run_source(session, args.command)
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            return run_source(session, handle.read())
    return repl(session)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
