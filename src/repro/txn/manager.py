"""The transaction manager: begin/commit/abort plus commit timestamps.

One :class:`TransactionManager` serves one database.  It owns the
:class:`~repro.time.clock.TransactionClock` (so commit times are strictly
increasing and system-assigned — the paper's append-only,
application-independent transaction time) and the
:class:`~repro.txn.log.CommitLog`.

The concurrency model is single-writer: one transaction may be active at a
time, matching the serial-history semantics the paper's figures assume (a
rollback relation *is* the serialized sequence of its transactions).
Attempting to begin a second concurrent transaction raises
:class:`~repro.errors.TransactionStateError` naming the holding
transaction.  Many *sessions* may nonetheless race toward the serialized
order through :mod:`repro.concurrency`, which funnels every commit
through :meth:`TransactionManager.run` — the ``validate`` hook there is
the optimistic-concurrency seam (docs/CONCURRENCY.md).  Explicit
commits take the same serialization lock as ``run()``, so a writer
bypassing the session layer can never slip between a session's
validation and its apply.

**Failure release.**  A failed commit never wedges the manager: the
active slot is released in a ``finally`` whether the applier, the log
append, or the ``on_commit`` hook raised, so the next ``begin()`` is
always accepted (the transaction itself is marked aborted by
:meth:`Transaction.commit`).

**Durability obligations.**  The manager itself persists nothing; the
:attr:`TransactionManager.on_commit` hook is the durability seam.  It
fires with each :class:`~repro.txn.log.CommitRecord` *after* the applier
succeeded and the record was logged, and — deliberately — *inside* the
commit lock, so concurrent sessions journal records in exactly the
serialized commit order (an out-of-order append would make replay
non-monotone).  A durable database
(:class:`~repro.storage.recovery.DurabilityManager`) journals the record
there, and the commit is durable only once that append returns.  A crash
between apply and append — including an ``on_commit`` hook that raises —
loses exactly that commit, which is the contract docs/DURABILITY.md
documents.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from repro.errors import TransactionStateError
from repro.obs import runtime as _obs
from repro.time.clock import Clock, SystemClock, TransactionClock
from repro.time.instant import Instant
from repro.txn.log import CommitLog, CommitRecord
from repro.txn.transaction import Operation, Transaction

#: The database-side applier: given operations and the commit time, make
#: them durable.  Must raise (leaving state untouched) to reject the commit.
Applier = Callable[[Sequence[Operation], Instant], None]


class TransactionManager:
    """Coordinates transactions for one database."""

    def __init__(self, applier: Applier, clock: Optional[Clock] = None) -> None:
        self._applier = applier
        self._txn_clock = TransactionClock(clock if clock is not None
                                           else SystemClock())
        self._log = CommitLog()
        self._active: Optional[Transaction] = None
        self._next_id = 1
        self._lock = threading.Lock()
        # Reentrant: _commit re-acquires it under run(), which already
        # holds it around validate + begin + commit.
        self._run_lock = threading.RLock()
        #: Optional hook invoked with each CommitRecord after it is logged
        #: (used by the durable journal).
        self.on_commit: Optional[Callable[[CommitRecord], None]] = None

    # -- accessors ------------------------------------------------------------

    @property
    def log(self) -> CommitLog:
        """The append-only commit log."""
        return self._log

    @property
    def clock(self) -> TransactionClock:
        """The transaction clock (strictly monotone)."""
        return self._txn_clock

    @property
    def serialization_lock(self) -> threading.RLock:
        """The reentrant commit serialization lock.

        Every commit path — :meth:`run`, an explicit
        :meth:`Transaction.commit`, :meth:`certify` — acquires this
        lock, and it is reentrant, so a holder may still call
        :meth:`run` on this manager.  Exposed for *cross-manager*
        coordination: the sharded store's two-phase commit
        (:mod:`repro.sharding.coordinator`) takes several managers'
        locks in shard order to make one multi-shard commit atomic
        against every single-shard committer on the involved shards.
        Holders must acquire managers in a globally consistent order
        (ascending shard id) or risk deadlock.
        """
        return self._run_lock

    def now(self) -> Instant:
        """The database's notion of *now* (for ``now`` literals and defaults).

        This is the underlying clock's reading, floored at the last commit
        time: when a stalled simulated clock forces the monotone
        transaction clock to bump commit times past the raw reading,
        *now* follows — the present never precedes the latest commit.
        """
        reading = self._txn_clock.current()
        last = self._txn_clock.last
        if last is not None and last > reading:
            return last
        return reading

    @property
    def active(self) -> Optional[Transaction]:
        """The currently active transaction, if any."""
        if self._active is not None and not self._active.is_active:
            self._active = None
        return self._active

    # -- lifecycle ----------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction (single-writer: only one may be active)."""
        with self._lock:
            if self.active is not None:
                raise TransactionStateError(
                    f"transaction {self._active.txn_id} is still active; "
                    f"the manager is single-writer"
                )
            txn = Transaction(self._next_id, self._commit)
            self._next_id += 1
            self._active = txn
            metrics = _obs.current().metrics
            metrics.counter("txn.begin").inc()
            metrics.gauge("txn.active").add(1)
            return txn

    def _commit(self, txn: Transaction) -> Instant:
        """Assign a commit time, apply, log and journal (via Transaction.commit).

        The active slot is released in the ``finally`` no matter which
        step raised — a failed commit must never wedge the manager (the
        transaction is marked aborted by its caller).  ``on_commit``
        fires *inside* the lock so durable journal appends happen in
        serialized commit order; if it raises, the commit is applied
        in memory but not durable, the documented crash-equivalent
        (docs/DURABILITY.md).

        Every commit — :meth:`run`'s or an explicit
        :meth:`Transaction.commit` — passes through ``_run_lock``
        (reentrant from :meth:`run`), so no commit can interleave
        between another caller's ``validate`` and its apply: the
        first-committer-wins check of the session layer holds against
        explicit transactions too, not just other ``run()`` callers.
        """
        with self._run_lock:
            with self._lock:
                try:
                    commit_time = self._txn_clock.tick()
                    self._applier(txn.operations, commit_time)
                    record = self._log.append(commit_time, txn.operations)
                    if self.on_commit is not None:
                        self.on_commit(record)
                finally:
                    self._active = None
        metrics = _obs.current().metrics
        metrics.counter("txn.commit").inc()
        metrics.gauge("txn.active").add(-1)
        return commit_time

    def run(self, operations: Sequence[Operation],
            validate: Optional[Callable[[], None]] = None) -> Instant:
        """Convenience: begin, buffer *operations*, and commit.

        Unlike interleaved explicit ``begin()`` calls (which the
        single-writer rule rejects), concurrent ``run()`` calls simply
        *serialize*: each whole-transaction convenience call takes its
        turn.

        *validate*, when given, runs under the serialization lock before
        anything begins; raising there rejects the transaction with no
        clock tick and no state change.  This is the optimistic-
        concurrency seam: the session layer passes its first-committer-
        wins check here, making validation atomic with the commit it
        guards against every other ``run()`` caller *and* every explicit
        :meth:`Transaction.commit` (``_commit`` takes the same lock).
        """
        with self._run_lock:
            if validate is not None:
                validate()
            txn = self.begin()
            try:
                for operation in operations:
                    txn.add(operation)
                return txn.commit()
            finally:
                if txn.is_active:
                    txn.abort()

    def certify(self, validate: Callable[[], None]) -> None:
        """Run *validate* atomically with respect to every commit.

        The read-only counterpart of :meth:`run`: *validate* executes
        under the commit serialization lock — no ``run()`` caller and no
        explicit :meth:`Transaction.commit` can apply while it checks —
        but no transaction begins, the clock does not tick, and no
        commit record is produced.  The session layer certifies
        read-only sessions here (their whole read set held
        simultaneously at one point in the serial history).
        """
        with self._run_lock:
            validate()

    def __repr__(self) -> str:
        return (f"TransactionManager({len(self._log)} commits, "
                f"active={self._active is not None})")
