"""Transaction machinery.

The paper's transaction time is "the time the information was stored in
the database" — assigned by the system, strictly increasing, append-only.
This package supplies:

- :class:`~repro.txn.transaction.Transaction` — a buffered batch of update
  operations that commits atomically at a single transaction time;
- :class:`~repro.txn.log.CommitLog` — the in-memory append-only record of
  every committed transaction (the journal of
  :mod:`repro.storage.journal` persists it);
- :class:`~repro.txn.manager.TransactionManager` — begin/commit/abort,
  commit timestamps from a :class:`~repro.time.clock.TransactionClock`.

Every database kind in :mod:`repro.core` routes updates through this
machinery, which is how a *static rollback* or *temporal* database can
guarantee its past states were really the states the database went
through.
"""

from repro.txn.transaction import Operation, Transaction, TxnStatus
from repro.txn.log import CommitLog, CommitRecord
from repro.txn.manager import TransactionManager

__all__ = [
    "CommitLog",
    "CommitRecord",
    "Operation",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
]
