"""Transactions: atomic batches of update operations.

A :class:`Transaction` buffers :class:`Operation` records — plain,
serializable descriptions of inserts, deletes and replaces, including
their valid-time arguments where the database kind supports valid time —
and hands the batch to its owning database at commit.  The whole batch
takes effect at one commit instant, which is exactly the paper's model:
"each transaction results in a new static relation being appended to the
front of the cube" (§4.2).

Operations carry *values*, not predicates, so a committed transaction can
be journaled and replayed byte-for-byte.  Databases that accept predicate
deletes resolve the predicate to concrete matches *before* buffering.
This value-only rule is a durability obligation: every argument of every
:class:`Operation` must survive the tagged-JSON round-trip of
:mod:`repro.storage.serializer` — the one documented exception being
declared check constraints on ``define``, which are not journaled
(docs/DURABILITY.md).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import TransactionStateError
from repro.obs import runtime as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.time.instant import Instant


class TxnStatus(enum.Enum):
    """The lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Operation:
    """One serializable update step inside a transaction.

    ``action`` is ``"define"``, ``"drop"``, ``"insert"``, ``"delete"`` or
    ``"replace"``; ``arguments`` is a plain dict whose meaning the database
    kind defines (tuple values, valid-time bounds, replacement updates).
    """

    __slots__ = ("action", "relation", "arguments")

    def __init__(self, action: str, relation: str,
                 arguments: Mapping[str, Any]) -> None:
        self.action = action
        self.relation = relation
        self.arguments = dict(arguments)

    def describe(self) -> Dict[str, Any]:
        """A plain-dict description (used by the journal)."""
        return {"action": self.action, "relation": self.relation,
                "arguments": dict(self.arguments)}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.describe() == other.describe()

    def __repr__(self) -> str:
        return f"Operation({self.action} {self.relation} {self.arguments!r})"


class Transaction:
    """A buffered, atomically-committing batch of operations.

    Obtained from a database's ``begin()``.  Buffer operations with
    :meth:`add`, then :meth:`commit` (applying them all at one transaction
    time) or :meth:`abort` (discarding them).  A transaction can be used as
    a context manager: committing on clean exit, aborting on exception. ::

        with db.begin() as txn:
            db.insert("faculty", {"name": "Tom", "rank": "associate"}, txn=txn)
    """

    def __init__(self, txn_id: int, commit_callback) -> None:
        self._id = txn_id
        self._status = TxnStatus.ACTIVE
        self._operations: List[Operation] = []
        self._commit_callback = commit_callback
        self._commit_time: Optional["Instant"] = None

    # -- accessors ------------------------------------------------------------

    @property
    def txn_id(self) -> int:
        """A session-unique, increasing transaction identifier."""
        return self._id

    @property
    def status(self) -> TxnStatus:
        """The current lifecycle state."""
        return self._status

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The buffered operations, in order."""
        return tuple(self._operations)

    @property
    def commit_time(self) -> Optional["Instant"]:
        """The transaction time assigned at commit (None before commit)."""
        return self._commit_time

    @property
    def is_active(self) -> bool:
        """True while the transaction can still buffer operations."""
        return self._status is TxnStatus.ACTIVE

    # -- lifecycle ----------------------------------------------------------------

    def _require_active(self) -> None:
        if self._status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self._id} is {self._status.value}, not active"
            )

    def add(self, operation: Operation) -> None:
        """Buffer one operation."""
        self._require_active()
        self._operations.append(operation)

    def commit(self) -> "Instant":
        """Apply every buffered operation at one commit time.

        Returns the assigned transaction time.  If application fails, the
        transaction is marked aborted and nothing has taken effect.
        """
        self._require_active()
        try:
            self._commit_time = self._commit_callback(self)
        except Exception:
            self._status = TxnStatus.ABORTED
            metrics = _obs.current().metrics
            metrics.counter("txn.abort").inc()
            metrics.gauge("txn.active").add(-1)
            raise
        self._status = TxnStatus.COMMITTED
        return self._commit_time

    def abort(self) -> None:
        """Discard the buffered operations."""
        self._require_active()
        self._operations.clear()
        self._status = TxnStatus.ABORTED
        metrics = _obs.current().metrics
        metrics.counter("txn.abort").inc()
        metrics.gauge("txn.active").add(-1)

    # -- context manager ---------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        self._require_active()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self._status is TxnStatus.ACTIVE:
                self.abort()
            return False
        if self._status is TxnStatus.ACTIVE:
            self.commit()
        return False

    def __repr__(self) -> str:
        return (f"Transaction(id={self._id}, {self._status.value}, "
                f"{len(self._operations)} ops)")
