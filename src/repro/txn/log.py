"""The append-only commit log.

Every committed transaction leaves a :class:`CommitRecord` — its sequence
number, commit (transaction) time, and operations.  The log is the
system's source of truth for *representation* history: a static rollback
database could in principle be reconstructed purely by replaying it (the
durable journal in :mod:`repro.storage.journal` does exactly that).

The log is append-only by construction: records can be appended and read,
never modified or removed.

**Durability obligations.**  This log is in-memory; persistence happens
one layer out, through :attr:`TransactionManager.on_commit
<repro.txn.manager.TransactionManager.on_commit>` (bound to a
:class:`~repro.storage.journal.Journal` or
:class:`~repro.storage.recovery.DurabilityManager`).  After a
checkpointed recovery the in-memory log deliberately holds only the
replayed *tail* — full history stays in the journal segments — so code
must treat the log as "commits since load", never as all of history.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import JournalError
from repro.time.instant import Instant
from repro.txn.transaction import Operation


class CommitRecord:
    """One committed transaction: sequence number, commit time, operations."""

    __slots__ = ("sequence", "commit_time", "operations")

    def __init__(self, sequence: int, commit_time: Instant,
                 operations: Sequence[Operation]) -> None:
        self.sequence = sequence
        self.commit_time = commit_time
        self.operations: Tuple[Operation, ...] = tuple(operations)

    def describe(self) -> dict:
        """A plain-dict description (used by the durable journal)."""
        return {
            "sequence": self.sequence,
            "commit_time": self.commit_time.isoformat(),
            "operations": [op.describe() for op in self.operations],
        }

    def __repr__(self) -> str:
        return (f"CommitRecord(#{self.sequence} at {self.commit_time}, "
                f"{len(self.operations)} ops)")


class CommitLog:
    """An in-memory, append-only sequence of commit records."""

    def __init__(self) -> None:
        self._records: List[CommitRecord] = []

    def append(self, commit_time: Instant,
               operations: Sequence[Operation]) -> CommitRecord:
        """Record a committed transaction; commit times must increase."""
        if self._records and commit_time <= self._records[-1].commit_time:
            raise JournalError(
                f"commit time {commit_time} does not advance past "
                f"{self._records[-1].commit_time}"
            )
        record = CommitRecord(len(self._records), commit_time, operations)
        self._records.append(record)
        return record

    # -- reading -----------------------------------------------------------------

    @property
    def records(self) -> Tuple[CommitRecord, ...]:
        """All records, oldest first."""
        return tuple(self._records)

    def last(self) -> Optional[CommitRecord]:
        """The most recent record, or ``None`` if empty."""
        return self._records[-1] if self._records else None

    def as_of(self, when: Instant) -> List[CommitRecord]:
        """The records with ``commit_time <= when`` (the rollback prefix)."""
        return [record for record in self._records
                if record.commit_time <= when]

    def __iter__(self) -> Iterator[CommitRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"CommitLog({len(self._records)} records)"
