"""The replication wire format: framed, checksummed protocol messages.

Every message that crosses the :class:`~repro.replication.transport.
Transport` seam is one framed line (:mod:`repro.storage.framing`) under
its own tag, ``p1`` — the same length-prefix + CRC32 armor the journal
uses, so a mangled message is *detected*, never half-applied.  The
payload is a JSON object with a ``type`` field:

``record``
    One journal entry: ``epoch``, ``seq`` (the record's global index in
    the primary's commit order) and ``entry`` (the
    :func:`~repro.storage.journal.encode_commit` form — exactly the
    bytes the durable journal holds, so a replica applies it through
    the same :func:`~repro.storage.journal.apply_entries` path recovery
    uses).
``gap``
    A replica asking for a resend: ``next_seq`` is the first sequence
    number it is missing.
``catchup``
    A cold or lagging replica announcing ``applied`` and asking the
    primary to bring it current (resend or snapshot, primary's choice).
``snapshot``
    Checkpoint-based catch-up: the primary's full dumped state as of
    ``seq`` records, plus the stream ``epoch``.
``head``
    The O(1) fast-path integrity check, sent on **every** heartbeat:
    the primary's chain head (:mod:`repro.storage.chain`) at exactly
    ``seq`` applied records.  A replica that folded the same entries
    holds the same head — comparing two 64-char strings replaces
    re-serializing the whole store.  ``chronon`` rides along for lag
    reporting, same as ``digest``.
``digest``
    The slow-path cross-check: the primary's canonical state digest at
    exactly ``seq`` applied records (``chronon`` carries the last commit
    time so replicas can report lag in time units, not just records).
    Sent every ``digest_every``-th heartbeat — the chain proves the
    journal prefix, the digest proves the materialized state.
``repair``
    A degraded replica asking to be made whole: its chain head stopped
    matching the primary's, so records alone cannot be trusted — the
    primary answers with a full snapshot (which carries the chain head
    to re-anchor on).

Epoch numbers ride on every primary-originated message; see
docs/REPLICATION.md for the fencing rules.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.storage.framing import frame, parse_frame

#: Frame tag of replication protocol messages.
REPLICATION_TAG = "p1"


def encode_message(message: Dict[str, Any]) -> str:
    """Frame one protocol message as a single line."""
    return frame(json.dumps(message, sort_keys=True, ensure_ascii=False),
                 tag=REPLICATION_TAG)


def decode_message(line: str) -> Dict[str, Any]:
    """Parse a framed protocol line (raises
    :class:`~repro.storage.framing.FrameError` on damage)."""
    return parse_frame(line, tag=REPLICATION_TAG)


def record_message(epoch: int, seq: int, entry: Dict[str, Any],
                   trace: Optional[Dict[str, Any]] = None) -> str:
    """One journal record at global index *seq*.

    *trace* is the optional serialized
    :class:`~repro.obs.context.TraceContext` of the publishing commit
    (``{"txn", "span"}``): the cross-thread handoff that lets a
    replica's apply span parent under the primary-side ship span.
    Replicas ignore its absence (resends and old-format messages carry
    none).
    """
    message: Dict[str, Any] = {"type": "record", "epoch": epoch, "seq": seq,
                               "entry": entry}
    if trace is not None:
        message["trace"] = trace
    return encode_message(message)


def gap_message(next_seq: int) -> str:
    """A replica's resend request from *next_seq* onward."""
    return encode_message({"type": "gap", "next_seq": next_seq})


def catchup_message(applied: int) -> str:
    """A replica announcing how far it got and asking to be caught up."""
    return encode_message({"type": "catchup", "applied": applied})


def snapshot_message(epoch: int, seq: int, state: Dict[str, Any],
                     head: Optional[str] = None) -> str:
    """The primary's full state as of *seq* records (checkpoint catch-up).

    *head* is the primary's chain head at *seq*, when known — a replica
    adopting the snapshot re-anchors its chain fold on it.
    """
    message: Dict[str, Any] = {"type": "snapshot", "epoch": epoch,
                               "seq": seq, "state": state}
    if head is not None:
        message["head"] = head
    return encode_message(message)


def digest_message(epoch: int, seq: int, digest: str,
                   chronon: Optional[int] = None) -> str:
    """The primary's canonical state digest at exactly *seq* records."""
    return encode_message({"type": "digest", "epoch": epoch, "seq": seq,
                           "digest": digest, "chronon": chronon})


def head_message(epoch: int, seq: int, head: Optional[str],
                 chronon: Optional[int] = None) -> str:
    """The primary's chain head at exactly *seq* records (O(1) check).

    *head* may be None when the primary itself does not know its chain
    prefix (promoted with an unknown floor); replicas then skip the
    compare but still learn the advertised head seq for lag.
    """
    return encode_message({"type": "head", "epoch": epoch, "seq": seq,
                           "head": head, "chronon": chronon})


def repair_message(applied: int) -> str:
    """A degraded replica asking for snapshot repair from *applied*."""
    return encode_message({"type": "repair", "applied": applied})
