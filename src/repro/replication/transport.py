"""The transport seam: in-process delivery plus a seeded fault injector.

Replication never talks to a socket in this codebase — it talks to a
:class:`Transport`, and tests choose how hostile the network is.  A
:class:`InProcessTransport` is the honest baseline: thread-safe mailbox
queues, at-most-once, in-order per link.  :class:`FaultyTransport`
wraps it with the misbehaviours real networks exhibit — **drop**,
**duplicate**, **reorder**, **delay**, **partition** — decided by a
seeded :class:`random.Random` in the spirit of
:class:`~repro.storage.faults.FaultyIO`: a fixed seed reproduces the
exact fault schedule, so every chaos run is a test, not a lottery.

The protocol is designed so that none of these faults can corrupt a
replica, only slow it down: records are sequence-numbered and apply is
idempotent, so each :class:`TransportFault` maps to a *typed, retryable*
error (:data:`FAULT_ERRORS`) when it surfaces at all.  The fault matrix
in ``tests/storage/test_faults.py`` pins that mapping.

Injected faults are counted through :mod:`repro.obs`
(``replication.transport.*``), so a chaos run's report can say exactly
how hostile the schedule was.
"""

from __future__ import annotations

import enum
import random
import threading
from collections import deque
from typing import Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import (DuplicateRecord, ReplicaLagging, ReplicationGap,
                          TransportError)
from repro.obs import runtime as _obs

#: One queued delivery: (source node, framed line).
Delivery = Tuple[str, str]


class Transport:
    """The delivery seam replication speaks through."""

    def send(self, source: str, target: str, line: str) -> None:
        """Queue *line* from *source* for *target* (may be dropped)."""
        raise NotImplementedError

    def receive(self, target: str,
                limit: Optional[int] = None) -> List[Delivery]:
        """Drain up to *limit* pending deliveries for *target*."""
        raise NotImplementedError


class InProcessTransport(Transport):
    """Honest in-memory delivery: per-target FIFO mailboxes, thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queues: Dict[str, Deque[Delivery]] = {}

    def _push(self, target: str, item: Delivery, front: bool = False) -> None:
        with self._lock:
            queue = self._queues.setdefault(target, deque())
            if front:
                queue.appendleft(item)
            else:
                queue.append(item)

    def send(self, source: str, target: str, line: str) -> None:
        self._push(target, (source, line))
        _obs.current().metrics.counter("replication.transport.sent").inc()

    def receive(self, target: str,
                limit: Optional[int] = None) -> List[Delivery]:
        with self._lock:
            queue = self._queues.get(target)
            if not queue:
                return []
            count = len(queue) if limit is None else min(limit, len(queue))
            return [queue.popleft() for _ in range(count)]

    def pending(self, target: str) -> int:
        """Deliveries currently queued for *target* (diagnostic)."""
        with self._lock:
            queue = self._queues.get(target)
            return len(queue) if queue else 0


class TransportFault(enum.Enum):
    """The misbehaviours :class:`FaultyTransport` can inject."""

    #: The message silently vanishes.
    DROP = "drop"
    #: The message is delivered twice.
    DUPLICATE = "duplicate"
    #: The message jumps ahead of those already queued for its target.
    REORDER = "reorder"
    #: Delivery is held back for a number of receive rounds.
    DELAY = "delay"
    #: A bidirectional link is down until healed; sends on it vanish.
    PARTITION = "partition"


ALL_TRANSPORT_FAULTS = tuple(TransportFault)

#: What each fault surfaces as when the protocol notices it at all.
#: Drop and reorder show up as a sequence gap the replica re-requests;
#: duplication as an idempotently-dropped record; delay and partition as
#: lag that read-your-writes reads observe.  All of them are transient
#: by construction, hence retryable (``tests/storage/test_faults.py``).
FAULT_ERRORS = {
    TransportFault.DROP: ReplicationGap,
    TransportFault.DUPLICATE: DuplicateRecord,
    TransportFault.REORDER: ReplicationGap,
    TransportFault.DELAY: ReplicaLagging,
    TransportFault.PARTITION: ReplicaLagging,
}


class FaultyTransport(Transport):
    """A seeded fault injector over an :class:`InProcessTransport`.

    ``drop`` / ``duplicate`` / ``reorder`` / ``delay`` are independent
    per-message probabilities drawn in a fixed order from one seeded
    RNG, so a given ``seed`` reproduces the exact schedule for a given
    message sequence.  ``delay_rounds`` is how many ``receive`` calls a
    delayed message sits out.  Partitions are explicit and symmetric:
    :meth:`partition` downs a link (sends in either direction vanish)
    until :meth:`heal`.
    """

    def __init__(self, inner: Optional[InProcessTransport] = None,
                 seed: int = 0, drop: float = 0.0, duplicate: float = 0.0,
                 reorder: float = 0.0, delay: float = 0.0,
                 delay_rounds: int = 2) -> None:
        self._inner = inner if inner is not None else InProcessTransport()
        self._rng = random.Random(seed)
        self._drop = drop
        self._duplicate = duplicate
        self._reorder = reorder
        self._delay = delay
        self._delay_rounds = max(1, delay_rounds)
        self._lock = threading.Lock()
        self._partitions: Set[FrozenSet[str]] = set()
        #: target -> [(rounds_left, delivery)]
        self._held: Dict[str, List[Tuple[int, Delivery]]] = {}

    # -- partitions ----------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Down the *a* <-> *b* link until :meth:`heal`."""
        with self._lock:
            self._partitions.add(frozenset((a, b)))

    def heal(self, a: Optional[str] = None, b: Optional[str] = None) -> None:
        """Restore one link, or every link when called with no arguments."""
        with self._lock:
            if a is None:
                self._partitions.clear()
            else:
                self._partitions.discard(frozenset((a, b)))

    def partitioned(self, a: str, b: str) -> bool:
        """True while the *a* <-> *b* link is down."""
        with self._lock:
            return frozenset((a, b)) in self._partitions

    # -- delivery ------------------------------------------------------------

    def send(self, source: str, target: str, line: str) -> None:
        metrics = _obs.current().metrics
        if self.partitioned(source, target):
            metrics.counter("replication.transport.partitioned").inc()
            return
        with self._lock:
            # One draw per fault type, in a fixed order: the schedule is
            # a pure function of (seed, message index).
            dropped = self._rng.random() < self._drop
            duplicated = self._rng.random() < self._duplicate
            reordered = self._rng.random() < self._reorder
            delayed = self._rng.random() < self._delay
        if dropped:
            metrics.counter("replication.transport.dropped").inc()
            return
        if delayed:
            metrics.counter("replication.transport.delayed").inc()
            with self._lock:
                self._held.setdefault(target, []).append(
                    (self._delay_rounds, (source, line)))
            return
        self._inner._push(target, (source, line), front=reordered)
        if reordered:
            metrics.counter("replication.transport.reordered").inc()
        if duplicated:
            metrics.counter("replication.transport.duplicated").inc()
            self._inner._push(target, (source, line))
        metrics.counter("replication.transport.sent").inc()

    def receive(self, target: str,
                limit: Optional[int] = None) -> List[Delivery]:
        with self._lock:
            held = self._held.get(target, [])
            still_held: List[Tuple[int, Delivery]] = []
            due: List[Delivery] = []
            for rounds, delivery in held:
                if rounds <= 1:
                    due.append(delivery)
                else:
                    still_held.append((rounds - 1, delivery))
            if held:
                self._held[target] = still_held
        for delivery in due:
            self._inner._push(target, delivery)
        return self._inner.receive(target, limit=limit)

    def pending(self, target: str) -> int:
        """Queued plus held deliveries for *target* (diagnostic)."""
        with self._lock:
            held = len(self._held.get(target, ()))
        return self._inner.pending(target) + held


def fault_error(fault: TransportFault) -> type:
    """The typed error class a given transport fault surfaces as."""
    error = FAULT_ERRORS.get(fault)
    if error is None:
        raise TransportError(f"unmapped transport fault {fault!r}")
    return error
