"""The canonical state digest: one hash that names a database state.

Replication needs a cheap, deterministic way to ask "are these two
databases the same?" without shipping either one: divergence detection
compares a replica's digest against the primary's at an equal sequence
number, failover checks the promoted state against the old primary's
durable prefix, and ``repro digest`` lets an operator compare two
directories by hand.

The digest is a SHA-256 over the canonical form of
:func:`~repro.storage.serializer.dump_database`:

- ``clock_last`` is dropped — the digest names *state*, not the clock's
  bookkeeping (two stores holding identical relations must hash equal
  even if one has since observed a later reading);
- every top-level list inside a relation's store (``tuples``, ``rows``,
  ``states``) is sorted by its canonical JSON — physical row order is
  an implementation detail that checkpoint load and journal replay are
  allowed to disagree on;
- the result is serialized with sorted keys and hashed.

Because transaction time is append-only and replay is deterministic,
two nodes that applied the same commit prefix *must* hash equal — the
dump excludes the in-memory commit log precisely so the digest
round-trips through both full-replay and checkpoint recovery (after a
checkpoint recovery the log holds only the tail).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.storage.serializer import dump_database


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, ensure_ascii=False)


def canonical_state(database) -> Dict[str, Any]:
    """The dump of *database* normalized for digesting (a fresh dict)."""
    data = dump_database(database)
    data.pop("clock_last", None)
    for entry in data.get("relations", {}).values():
        store = entry.get("store")
        if not isinstance(store, dict):
            continue
        canonical = dict(store)
        for field, rows in store.items():
            if isinstance(rows, list):
                canonical[field] = sorted(rows, key=_canonical_json)
        entry["store"] = canonical
    return data


def state_digest(database) -> str:
    """The canonical SHA-256 hex digest of *database*'s current state."""
    payload = _canonical_json(canonical_state(database))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
