"""The canonical state digest: one hash that names a database state.

Replication needs a cheap, deterministic way to ask "are these two
databases the same?" without shipping either one: divergence detection
compares a replica's digest against the primary's at an equal sequence
number, failover checks the promoted state against the old primary's
durable prefix, and ``repro digest`` lets an operator compare two
directories by hand.

The digest is a SHA-256 over the canonical form of
:func:`~repro.storage.serializer.dump_database`:

- ``clock_last`` is dropped — the digest names *state*, not the clock's
  bookkeeping (two stores holding identical relations must hash equal
  even if one has since observed a later reading);
- every top-level list inside a relation's store (``tuples``, ``rows``,
  ``states``) is sorted by its canonical JSON — physical row order is
  an implementation detail that checkpoint load and journal replay are
  allowed to disagree on;
- the result is serialized with sorted keys and hashed.

Because transaction time is append-only and replay is deterministic,
two nodes that applied the same commit prefix *must* hash equal — the
dump excludes the in-memory commit log precisely so the digest
round-trips through both full-replay and checkpoint recovery (after a
checkpoint recovery the log holds only the tail).

**Memoization.**  Re-serializing the whole store per heartbeat is the
cost the chain-prefix fast path exists to avoid, but callers that do
want the full digest (failover audits, ``repro digest``) should not pay
it twice when nothing committed in between.  :func:`state_digest`
caches its result *on the database object*, keyed by the identity of
the last commit record — state only changes through commits, so an
unchanged log tail means an unchanged state.  Pass ``cache=False`` to
force a fresh serialization (the benchmark's honest baseline).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.obs import runtime as _obs
from repro.storage.serializer import dump_database

#: Attribute the memo rides on (per database object; never cross-object).
_CACHE_ATTR = "_repro_digest_memo"


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, ensure_ascii=False)


def canonical_state(database) -> Dict[str, Any]:
    """The dump of *database* normalized for digesting (a fresh dict)."""
    data = dump_database(database)
    data.pop("clock_last", None)
    for entry in data.get("relations", {}).values():
        store = entry.get("store")
        if not isinstance(store, dict):
            continue
        canonical = dict(store)
        for field, rows in store.items():
            if isinstance(rows, list):
                canonical[field] = sorted(rows, key=_canonical_json)
        entry["store"] = canonical
    return data


def _memo_key(database) -> Optional[Tuple[int, Any]]:
    """A key that changes iff the database committed since it was taken.

    ``(commit count, last record)`` — the record rides in the key as a
    strong reference, so identity comparison can never be fooled by an
    id being recycled.  None (no caching) when the log is empty or the
    database has no log: a checkpoint may clear the log, making "empty"
    ambiguous, and empty-log digests are cheap anyway.
    """
    records = getattr(getattr(database, "log", None), "records", None)
    if not records:
        return None
    return (len(records), records[-1])


def state_digest(database, cache: bool = True) -> str:
    """The canonical SHA-256 hex digest of *database*'s current state.

    Memoized on the database object by the identity of its last commit
    record; ``cache=False`` forces a fresh serialization.
    """
    key = _memo_key(database) if cache else None
    if key is not None:
        memo = getattr(database, _CACHE_ATTR, None)
        if (memo is not None and memo[0][0] == key[0]
                and memo[0][1] is key[1]):
            _obs.current().metrics.counter("digest.cache_hits").inc()
            return memo[1]
    payload = _canonical_json(canonical_state(database))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if key is not None:
        try:
            setattr(database, _CACHE_ATTR, (key, digest))
        except AttributeError:
            pass  # slotted stand-ins just skip the memo
        _obs.current().metrics.counter("digest.cache_misses").inc()
    return digest
