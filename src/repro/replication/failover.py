"""Failover: promote a replica, fence the old primary, prove the prefix.

:class:`FailoverCoordinator.promote` turns a replica into the new
primary in four audited steps:

1. **fence** — the old primary (when reachable) is retired: it stops
   publishing, and the epoch number the new primary streams under is
   strictly greater, so any *zombie* — an old primary that was not
   reachable to retire and keeps streaming — is rejected by every
   replica (:class:`~repro.errors.FencedError` semantics; the replica
   counts ``replication.fenced_rejects``).
2. **drain** — the old primary's remaining durable records (its
   retained journal entries are exactly what its durable log holds:
   publication happens *after* the journal append, under the same
   commit lock) are applied to the chosen replica through the normal
   sequence-checked path.  An unreachable old primary simply drains
   nothing: the promoted state is then the replica's applied prefix.
3. **audit** — the promoted state must equal a durable prefix of the
   old primary's commit order.  The fast check compares **chain heads**
   (:mod:`repro.storage.chain`) at exactly the promoted sequence
   number: two equal 64-char heads prove the replica applied exactly
   the old primary's journal prefix, in O(1).  The canonical digest is
   the slow-path cross-check against the old primary's heartbeat
   history at that seq (or its live state when fully drained).  Either
   mismatch aborts promotion with
   :class:`~repro.errors.DivergenceError`.
4. **announce** — the surviving replicas are registered with the new
   primary and a heartbeat publishes the new epoch; each replica adopts
   it on receipt and discards any buffered records of the deposed
   epoch.

``repro promote`` uses :func:`read_epoch` / :func:`write_epoch` to
persist the fencing epoch next to a durability directory, so a
hand-operated promotion survives restarts.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, Iterable, Optional

from repro.errors import DivergenceError, StorageError
from repro.obs import runtime as _obs
from repro.replication.digest import state_digest
from repro.replication.primary import Primary
from repro.replication.replica import Replica
from repro.replication.transport import Transport
from repro.storage.io import REAL_IO, StorageIO

#: File holding the persisted fencing epoch in a durability directory.
EPOCH_FILE = "epoch"


@dataclasses.dataclass(frozen=True)
class PromotionReport:
    """What one promotion did, and the prefix proof that gates it."""

    #: The replica's applied records at promotion (= new primary's seq).
    promoted_seq: int
    #: The old primary's record count at fencing (None if unreachable).
    old_seq: Optional[int]
    #: Records the coordinator drained from the old primary's durable log.
    drained: int
    #: The promoted state's canonical digest.
    digest: str
    #: True when the digest was proven equal to the old primary's at
    #: ``promoted_seq``; None when no reference digest was available
    #: (crash failover with no heartbeat at that seq).
    prefix_verified: Optional[bool]
    #: The epoch the new primary streams under.
    epoch: int
    #: True when the chain heads matched at ``promoted_seq`` (the O(1)
    #: fast-path proof); None when either side's head was unknown.
    chain_verified: Optional[bool] = None
    #: The promoted state's chain head (what the new primary anchors on).
    chain_head: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro replicate --json`` embeds)."""
        return dataclasses.asdict(self)


class FailoverCoordinator:
    """Promotes replicas and guarantees the durable-prefix contract."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport

    def promote(self, replica: Replica, old_primary: Optional[Primary] = None,
                replicas: Iterable[str] = (),
                announce: bool = True) -> "tuple[Primary, PromotionReport]":
        """Promote *replica*; returns ``(new_primary, report)``.

        *old_primary* is passed when reachable (planned failover): it is
        retired first and its remaining durable records drained into the
        replica, so zero durable commits are lost.  With it unreachable
        (crash failover), the promoted state is the replica's applied
        prefix — still a durable prefix of the old commit order, just a
        shorter one.  *replicas* are the surviving followers to attach
        to the new primary.
        """
        metrics = _obs.current().metrics
        old_seq: Optional[int] = None
        drained = 0
        old_epoch = replica.epoch
        if old_primary is not None:
            old_primary.retire()
            old_epoch = max(old_epoch, old_primary.epoch)
            old_seq = old_primary.current_seq
            if replica.applied_seq < old_primary.floor:
                # The gap fell below the old primary's in-memory floor:
                # catch up from its full state (checkpoint-style), which
                # is still the durable state at old_seq.
                drained += replica.load_snapshot(
                    old_seq, old_primary.snapshot_state())
            for seq, entry in old_primary.entries_from(replica.applied_seq):
                drained += replica.apply_direct(seq, entry)

        promoted_seq = replica.applied_seq
        replica.check()  # a diverged replica must never be promoted
        digest = state_digest(replica.database)

        # Fast-path audit: the chain heads must agree at promoted_seq.
        chain_verified: Optional[bool] = None
        promoted_head = replica.chain_head
        if old_primary is not None and promoted_head is not None:
            expected_head = old_primary.chain_head_at(promoted_seq)
            if expected_head is not None:
                chain_verified = expected_head == promoted_head
                metrics.counter("replication.chain_checks").inc()
                if not chain_verified:
                    metrics.counter(
                        "replication.chain_divergence").inc()
                    raise DivergenceError(
                        f"promotion of {replica.node_id} aborted: chain "
                        f"head at seq {promoted_seq} is "
                        f"{promoted_head[:12]}…, the old primary's journal "
                        f"walks to {expected_head[:12]}… — the replica "
                        f"applied a different stream")

        expected: Optional[str] = None
        if old_primary is not None:
            expected = old_primary.digest_at(promoted_seq)
            if expected is None and promoted_seq == old_primary.current_seq:
                expected = state_digest(old_primary.database)
        verified: Optional[bool] = None
        if expected is not None:
            verified = expected == digest
            if not verified:
                metrics.counter("replication.divergence_detected").inc()
                raise DivergenceError(
                    f"promotion of {replica.node_id} aborted: state at seq "
                    f"{promoted_seq} hashes {digest[:12]}…, the old "
                    f"primary's durable prefix hashes {expected[:12]}…")

        epoch = max(replica.epoch, old_epoch) + 1
        replica.epoch = epoch
        promoted = Primary(replica.node_id, replica.database, self.transport,
                           epoch=epoch, floor=replica.log_floor,
                           chain_head=promoted_head)
        for node in replicas:
            if node != replica.node_id:
                promoted.add_replica(node)
        if announce:
            promoted.heartbeat()  # followers adopt the new epoch on receipt
        metrics.counter("replication.promotions").inc()
        _obs.current().events.emit("replication.failover",
                                   node=replica.node_id, epoch=epoch,
                                   promoted_seq=promoted_seq,
                                   drained=drained)
        report = PromotionReport(promoted_seq=promoted_seq, old_seq=old_seq,
                                 drained=drained, digest=digest,
                                 prefix_verified=verified, epoch=epoch,
                                 chain_verified=chain_verified,
                                 chain_head=promoted_head)
        return promoted, report


# ---------------------------------------------------------------------------
# Persisted fencing epochs (the ``repro promote`` verb)
# ---------------------------------------------------------------------------

def read_epoch(directory: str) -> int:
    """The fencing epoch persisted in *directory* (0 when none yet)."""
    path = os.path.join(directory, EPOCH_FILE)
    if not os.path.exists(path):
        return 0
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read().strip()
    try:
        return int(text)
    except ValueError:
        raise StorageError(
            f"{path} does not hold an epoch number: {text[:32]!r}") from None


def write_epoch(directory: str, epoch: int,
                io: Optional[StorageIO] = None) -> str:
    """Atomically persist *epoch* in *directory*; returns the file path."""
    if epoch < 0:
        raise ValueError("epochs never decrease; refusing a negative one")
    io = io if io is not None else REAL_IO
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, EPOCH_FILE)
    io.write_atomic(path, f"{epoch}\n".encode("utf-8"), fsync=True)
    return path
