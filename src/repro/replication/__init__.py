"""Replication: ship the commit journal, apply it like recovery would.

The paper's transaction time is append-only and system-assigned, which
makes the commit journal a *total order* that fully describes the
database — so replication here is nothing more exotic than streaming
that journal over a (faulty) transport and replaying it on the other
side through the exact apply path crash recovery uses.  A replica is
another consumer of ``storage/``'s recovery machinery.

The pieces (consistency contract in docs/REPLICATION.md):

- :mod:`~repro.replication.messages` — the framed, CRC-armored wire
  format (tag ``p1``), reusing :mod:`repro.storage.framing`;
- :mod:`~repro.replication.transport` — the injectable delivery seam:
  an honest in-process transport plus :class:`FaultyTransport`, a
  seeded injector of drop / duplicate / reorder / delay / partition in
  the spirit of :class:`~repro.storage.faults.FaultyIO`;
- :mod:`~repro.replication.primary` — streams records in serialized
  commit order (published only after the durable journal append),
  serves resends and checkpoint-style snapshot catch-up, heartbeats
  state digests;
- :mod:`~repro.replication.replica` — sequence-numbered idempotent
  apply (duplicates dropped, gaps re-requested), epoch fencing,
  divergence latching, lag metrics, token-gated read-your-writes reads;
- :mod:`~repro.replication.digest` — the canonical state digest both
  sides compare (also ``repro digest``);
- :mod:`~repro.replication.failover` — :class:`FailoverCoordinator`:
  fence, drain, prove the durable-prefix equality, promote under a
  fresh epoch.
"""

from repro.replication.digest import canonical_state, state_digest
from repro.replication.failover import (EPOCH_FILE, FailoverCoordinator,
                                        PromotionReport, read_epoch,
                                        write_epoch)
from repro.replication.messages import (REPLICATION_TAG, catchup_message,
                                        decode_message, digest_message,
                                        encode_message, gap_message,
                                        record_message, snapshot_message)
from repro.replication.primary import Primary
from repro.replication.replica import GAP_RETRY_EVERY, Replica
from repro.replication.transport import (ALL_TRANSPORT_FAULTS, FAULT_ERRORS,
                                         FaultyTransport, InProcessTransport,
                                         Transport, TransportFault,
                                         fault_error)

__all__ = [
    "ALL_TRANSPORT_FAULTS",
    "EPOCH_FILE",
    "FAULT_ERRORS",
    "FailoverCoordinator",
    "FaultyTransport",
    "GAP_RETRY_EVERY",
    "InProcessTransport",
    "Primary",
    "PromotionReport",
    "REPLICATION_TAG",
    "Replica",
    "Transport",
    "TransportFault",
    "canonical_state",
    "catchup_message",
    "decode_message",
    "digest_message",
    "encode_message",
    "fault_error",
    "gap_message",
    "read_epoch",
    "record_message",
    "snapshot_message",
    "state_digest",
    "write_epoch",
]
