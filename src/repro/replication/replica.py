"""The replica: idempotent, sequence-numbered apply of the shipped journal.

A :class:`Replica` is deliberately *just another consumer of the
recovery path*: every record it accepts goes through the same
:func:`~repro.storage.journal.apply_entries` that crash recovery uses,
driving a simulated clock so each transaction re-commits at its
original instant.  Because transaction time is append-only and
system-assigned, a replica that applied the same prefix of the commit
order is observationally identical to the primary — snapshots,
timeslices, rollbacks and TQuel answers included.

The apply discipline against a faulty transport:

- **in order**: a record is applied only when its ``seq`` equals the
  next expected index; later records are buffered;
- **idempotent**: a record at or below the applied index is dropped
  (duplicate delivery);
- **gap repair**: a buffered future record (or an advertised head the
  replica has not reached) triggers a rate-limited resend request; the
  primary answers with records, or with a full snapshot when the range
  fell below its in-memory floor (checkpoint-based catch-up);
- **fencing**: every message carries the stream epoch.  Lower-epoch
  messages are rejected (a fenced zombie primary), a higher epoch is
  adopted — and the buffer is cleared, because buffered records from a
  deposed epoch may not be part of the surviving history.

Divergence detection: the primary periodically publishes its canonical
state digest at an exact sequence number; the replica checks its own
digest when it reaches that seq.  A mismatch latches a
:class:`~repro.errors.DivergenceError` that every subsequent read
raises — replay is deterministic, so divergence is corruption, and a
diverged replica must not serve.

Read-your-writes: reads accept a ``token`` (the writing session's
:attr:`~repro.concurrency.session.ConcurrentSession.commit_token`) and
raise a retryable :class:`~repro.errors.ReplicaLagging` until the
replica has applied at least that many records.

Lag is reported through :mod:`repro.obs` both in records and in
chronons (``replication.lag_records`` / ``replication.lag_chronons``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import DivergenceError, ReplicaLagging, ReplicationGap
from repro.obs import context as _trace
from repro.obs import runtime as _obs
from repro.replication.digest import state_digest
from repro.replication.messages import (catchup_message, decode_message,
                                        gap_message)
from repro.replication.transport import Transport
from repro.storage.framing import FrameError
from repro.storage.journal import apply_entries
from repro.storage.serializer import decode_value, load_database
from repro.time.clock import SimulatedClock

#: Pump calls a replica waits between resend requests for the same gap.
GAP_RETRY_EVERY = 4


class Replica:
    """One node applying the primary's shipped journal, in order."""

    def __init__(self, node_id: str, kind, transport: Transport,
                 primary_id: str, epoch: int = 0) -> None:
        self.node_id = node_id
        self.transport = transport
        self.primary_id = primary_id
        self.epoch = epoch
        self._clock = SimulatedClock(1)
        self.database = kind(clock=self._clock)
        self.applied_seq = 0
        #: seq -> (epoch, entry, trace): records that arrived ahead of
        #: order (trace is the publisher's serialized context, or None).
        self._buffer: Dict[int, Tuple[int, dict, Optional[dict]]] = {}
        #: seq -> digest the primary claims; checked on reaching seq.
        self._expected: Dict[int, str] = {}
        self._divergence: Optional[DivergenceError] = None
        self._head_seq = 0
        self._head_chronon: Optional[int] = None
        self._applied_chronon: Optional[int] = None
        self._gap_cooldown = 0

    # -- catch-up ------------------------------------------------------------

    def request_catchup(self) -> None:
        """Ask the primary to bring this replica current (cold join)."""
        self.transport.send(self.node_id, self.primary_id,
                            catchup_message(self.applied_seq))
        self._gap_cooldown = GAP_RETRY_EVERY

    # -- the pump ------------------------------------------------------------

    def pump(self) -> int:
        """Drain the mailbox, apply what is in order, repair what is not.

        Returns the number of records applied this call.  Damaged
        frames are dropped and counted; the stream heals by resend.
        """
        metrics = _obs.current().metrics
        applied = 0
        for source, line in self.transport.receive(self.node_id):
            try:
                message = decode_message(line)
            except FrameError:
                metrics.counter("replication.frames_rejected").inc()
                continue
            epoch = int(message.get("epoch", self.epoch))
            kind = message.get("type")
            if kind in ("record", "snapshot", "digest"):
                if epoch < self.epoch:
                    metrics.counter("replication.fenced_rejects").inc()
                    continue
                if epoch > self.epoch:
                    self._adopt(epoch, source)
            if kind == "record":
                applied += self._on_record(int(message["seq"]),
                                           epoch, message["entry"],
                                           message.get("trace"))
            elif kind == "snapshot":
                applied += self._on_snapshot(int(message["seq"]),
                                             message["state"])
            elif kind == "digest":
                self._on_digest(int(message["seq"]), message["digest"],
                                message.get("chronon"))
        self._repair_gap()
        self._report_lag()
        return applied

    def _adopt(self, epoch: int, source: str) -> None:
        """A higher epoch: a promotion happened; follow the new primary.

        Buffered records from the deposed epoch are discarded — failover
        guarantees the *applied* prefix survives, but an un-applied
        buffered suffix may include zombie commits that did not."""
        self.epoch = epoch
        self.primary_id = source
        self._buffer.clear()
        self._gap_cooldown = 0
        _obs.current().metrics.counter("replication.epoch_adoptions").inc()

    # -- message handlers ----------------------------------------------------

    def _on_record(self, seq: int, epoch: int, entry: dict,
                   trace: Optional[dict] = None) -> int:
        metrics = _obs.current().metrics
        self._head_seq = max(self._head_seq, seq + 1)
        if seq < self.applied_seq:
            metrics.counter("replication.duplicates_dropped").inc()
            return 0
        if seq > self.applied_seq:
            if seq not in self._buffer:
                metrics.counter("replication.gaps_detected").inc()
            self._buffer[seq] = (epoch, entry, trace)
            return 0
        applied = self._apply(entry, trace)
        applied += self._drain_buffer()
        return applied

    def _on_snapshot(self, seq: int, state: dict) -> int:
        metrics = _obs.current().metrics
        if seq < self.applied_seq:
            metrics.counter("replication.duplicates_dropped").inc()
            return 0
        self.database = load_database(state)
        self._clock = self.database.manager.clock.source
        self.applied_seq = seq
        self._head_seq = max(self._head_seq, seq)
        last = self.database.manager.clock.last
        self._applied_chronon = (last.chronon if last is not None else None)
        for stale in [s for s in self._buffer if s < seq]:
            del self._buffer[stale]
        for stale in [s for s in self._expected if s < seq]:
            del self._expected[stale]
        metrics.counter("replication.snapshots_loaded").inc()
        self._check_digest()
        return self._drain_buffer()

    def _on_digest(self, seq: int, digest: str,
                   chronon: Optional[int]) -> None:
        self._head_seq = max(self._head_seq, seq)
        if chronon is not None:
            self._head_chronon = max(self._head_chronon or 0, chronon)
        if seq < self.applied_seq:
            return  # a past state cannot be recomputed; the next one can
        self._expected[seq] = digest
        self._check_digest()

    # -- apply ---------------------------------------------------------------

    def _apply(self, entry: dict, trace: Optional[dict] = None) -> int:
        obs = _obs.current()
        metrics = obs.metrics
        seq = self.applied_seq
        # The cross-thread (cross-node) handoff: the shipped record's
        # trace context parents this apply span under the primary-side
        # ship span, even though we run on the replica's pump thread.
        parent = _trace.from_wire(trace)
        with obs.tracer.span("replication.apply", parent=parent,
                             node=self.node_id, seq=seq):
            with metrics.histogram("replication.apply_seconds").time():
                apply_entries(self.database, self._clock, [entry])
        self.applied_seq += 1
        commit_time = decode_value(entry["commit_time"])
        self._applied_chronon = commit_time.chronon
        metrics.counter("replication.records_applied").inc()
        obs.events.emit("replication.apply",
                        txn=parent.trace_id if parent is not None else None,
                        node=self.node_id, seq=seq)
        self._check_digest()
        return 1

    # -- the coordinator's drain path (no transport in between) --------------

    def apply_direct(self, seq: int, entry: dict) -> int:
        """Apply one record read straight from the old primary's durable
        log (the failover drain), bypassing the transport.  Idempotent
        like the streamed path; returns records applied (0 or 1)."""
        if seq < self.applied_seq:
            return 0
        if seq > self.applied_seq:
            raise ReplicationGap(
                f"drain out of order: replica {self.node_id} expects seq "
                f"{self.applied_seq}, got {seq}")
        return self._apply(entry)

    def load_snapshot(self, seq: int, state: dict) -> int:
        """Adopt a full dumped state as of *seq* records (the failover
        drain's catch-up when the gap fell below the old primary's
        floor)."""
        return self._on_snapshot(seq, state)

    def _drain_buffer(self) -> int:
        applied = 0
        while self.applied_seq in self._buffer:
            _, entry, trace = self._buffer.pop(self.applied_seq)
            applied += self._apply(entry, trace)
        return applied

    def _check_digest(self) -> None:
        expected = self._expected.pop(self.applied_seq, None)
        if expected is None:
            return
        metrics = _obs.current().metrics
        metrics.counter("replication.digests_checked").inc()
        actual = state_digest(self.database)
        if actual != expected:
            metrics.counter("replication.divergence_detected").inc()
            self._divergence = DivergenceError(
                f"replica {self.node_id} diverged at seq "
                f"{self.applied_seq}: digest {actual[:12]}… != primary's "
                f"{expected[:12]}… — refusing to serve; rebuild from a "
                f"snapshot")

    # -- gap repair and lag --------------------------------------------------

    def _repair_gap(self) -> None:
        behind = self.applied_seq < self._head_seq or self._buffer
        if not behind:
            self._gap_cooldown = 0
            return
        if self._gap_cooldown > 0:
            self._gap_cooldown -= 1
            return
        message = (gap_message(self.applied_seq) if self._buffer
                   else catchup_message(self.applied_seq))
        self.transport.send(self.node_id, self.primary_id, message)
        self._gap_cooldown = GAP_RETRY_EVERY
        _obs.current().metrics.counter("replication.gap_requests").inc()

    def lag(self) -> Tuple[int, Optional[int]]:
        """``(records, chronons)`` behind the newest advertised head."""
        records = max(0, self._head_seq - self.applied_seq)
        chronons: Optional[int] = None
        if (self._head_chronon is not None
                and self._applied_chronon is not None):
            chronons = max(0, self._head_chronon - self._applied_chronon)
        return records, chronons

    def _report_lag(self) -> None:
        metrics = _obs.current().metrics
        records, chronons = self.lag()
        metrics.gauge("replication.lag_records").set(records)
        if chronons is not None:
            metrics.gauge("replication.lag_chronons").set(chronons)

    # -- serving reads -------------------------------------------------------

    @property
    def diverged(self) -> bool:
        """True once digest exchange latched a divergence."""
        return self._divergence is not None

    def check(self) -> None:
        """Raise the latched :class:`~repro.errors.DivergenceError`, if any."""
        if self._divergence is not None:
            raise self._divergence

    def _serveable(self, token: Optional[int]) -> None:
        self.check()
        if token is not None and self.applied_seq < token:
            _obs.current().metrics.counter(
                "replication.reads_lagging").inc()
            raise ReplicaLagging(
                f"replica {self.node_id} applied {self.applied_seq} "
                f"records, read requires {token}; retry after the stream "
                f"catches up", token=token, applied=self.applied_seq)

    def read(self, name: str, token: Optional[int] = None):
        """The relation's current snapshot, gated on *token* (see module
        docs: read-your-writes)."""
        self._serveable(token)
        return self.database.snapshot(name)

    def timeslice(self, name: str, valid_at: Any,
                  token: Optional[int] = None):
        """A valid-time slice served from the replica."""
        self._serveable(token)
        return self.database.timeslice(name, valid_at)

    def rollback(self, name: str, as_of: Any,
                 token: Optional[int] = None):
        """A transaction-time rollback served from the replica."""
        self._serveable(token)
        return self.database.rollback(name, as_of)

    @property
    def log_floor(self) -> int:
        """Global seq of the replica's own ``database.log[0]`` (records
        applied before the last snapshot load are not in memory)."""
        return self.applied_seq - len(self.database.log)

    def __repr__(self) -> str:
        return (f"Replica({self.node_id!r}, epoch={self.epoch}, "
                f"applied={self.applied_seq}, "
                f"buffered={len(self._buffer)})")
