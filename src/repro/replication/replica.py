"""The replica: idempotent, sequence-numbered apply of the shipped journal.

A :class:`Replica` is deliberately *just another consumer of the
recovery path*: every record it accepts goes through the same
:func:`~repro.storage.journal.apply_entries` that crash recovery uses,
driving a simulated clock so each transaction re-commits at its
original instant.  Because transaction time is append-only and
system-assigned, a replica that applied the same prefix of the commit
order is observationally identical to the primary — snapshots,
timeslices, rollbacks and TQuel answers included.

The apply discipline against a faulty transport:

- **in order**: a record is applied only when its ``seq`` equals the
  next expected index; later records are buffered;
- **idempotent**: a record at or below the applied index is dropped
  (duplicate delivery);
- **gap repair**: a buffered future record (or an advertised head the
  replica has not reached) triggers a rate-limited resend request; the
  primary answers with records, or with a full snapshot when the range
  fell below its in-memory floor (checkpoint-based catch-up);
- **fencing**: every message carries the stream epoch.  Lower-epoch
  messages are rejected (a fenced zombie primary), a higher epoch is
  adopted — and the buffer is cleared, because buffered records from a
  deposed epoch may not be part of the surviving history.

Divergence detection runs on two tiers:

- **chain heads (every heartbeat, O(1))**: the replica folds the hash
  chain (:mod:`repro.storage.chain`) over every entry it applies; the
  primary advertises its head at an exact seq, and comparing the two
  strings proves the replica applied exactly the primary's journal
  prefix.  The same message carries an O(1) *local-commit* check: a
  commit that entered the replica's database without coming off the
  stream (operator error, corruption) makes its in-memory log longer
  than the records it applied — that latches a
  :class:`~repro.errors.DivergenceError`, because local writes mean
  the state is no longer a function of the stream at all.
- **state digests (every ``digest_every``-th heartbeat, O(state))**:
  the slow-path cross-check of the materialized state.  A mismatch
  latches the same :class:`~repro.errors.DivergenceError` — replay is
  deterministic, so digest divergence at an equal chain head is local
  corruption, and the node must not serve.

A **chain-head mismatch**, by contrast, means the *stream* the replica
applied differs from the primary's journal (a tampered or damaged
resend) — the replica itself can be made whole, so instead of latching
dead it **degrades**: reads fail fast by default (``allow_degraded=True``
opts into the suspect state, which is verified through
:attr:`Replica.verified_seq`) while the replica asks the primary for
snapshot repair, adopts it, and emits ``integrity.healed`` —
self-healing, not an outage.

Read-your-writes: reads accept a ``token`` (the writing session's
:attr:`~repro.concurrency.session.ConcurrentSession.commit_token`) and
raise a retryable :class:`~repro.errors.ReplicaLagging` until the
replica has applied at least that many records.

Lag is reported through :mod:`repro.obs` both in records and in
chronons (``replication.lag_records`` / ``replication.lag_chronons``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import DivergenceError, ReplicaLagging, ReplicationGap
from repro.obs import context as _trace
from repro.obs import runtime as _obs
from repro.replication.digest import state_digest
from repro.replication.messages import (catchup_message, decode_message,
                                        gap_message, repair_message)
from repro.replication.transport import Transport
from repro.storage import chain as _chain
from repro.storage.framing import FrameError
from repro.storage.journal import apply_entries
from repro.storage.serializer import decode_value, load_database
from repro.time.clock import SimulatedClock

#: Pump calls a replica waits between resend requests for the same gap.
GAP_RETRY_EVERY = 4


class Replica:
    """One node applying the primary's shipped journal, in order."""

    def __init__(self, node_id: str, kind, transport: Transport,
                 primary_id: str, epoch: int = 0) -> None:
        self.node_id = node_id
        self.transport = transport
        self.primary_id = primary_id
        self.epoch = epoch
        self._clock = SimulatedClock(1)
        self.database = kind(clock=self._clock)
        self.applied_seq = 0
        #: seq -> (epoch, entry, trace): records that arrived ahead of
        #: order (trace is the publisher's serialized context, or None).
        self._buffer: Dict[int, Tuple[int, dict, Optional[dict]]] = {}
        #: seq -> digest the primary claims; checked on reaching seq.
        self._expected: Dict[int, str] = {}
        #: seq -> chain head the primary claims; checked on reaching seq.
        self._expected_heads: Dict[int, Optional[str]] = {}
        self._divergence: Optional[DivergenceError] = None
        #: The chain head folded over every applied entry (None after a
        #: snapshot that carried no head — re-anchors on the next claim).
        self._chain_head: Optional[str] = _chain.GENESIS
        #: Last seq at which the folded head matched the primary's claim.
        self._verified_seq = 0
        #: Why this replica limited itself to degraded serving, if it did.
        self._degraded: Optional[str] = None
        #: In-memory log length the stream accounts for; a longer log
        #: means a commit that never came off the stream (O(1) check).
        self._log_expected = len(self.database.log)
        self._head_seq = 0
        self._head_chronon: Optional[int] = None
        self._applied_chronon: Optional[int] = None
        self._gap_cooldown = 0
        self._repair_cooldown = 0

    # -- catch-up ------------------------------------------------------------

    def request_catchup(self) -> None:
        """Ask the primary to bring this replica current (cold join)."""
        self.transport.send(self.node_id, self.primary_id,
                            catchup_message(self.applied_seq))
        self._gap_cooldown = GAP_RETRY_EVERY

    # -- the pump ------------------------------------------------------------

    def pump(self) -> int:
        """Drain the mailbox, apply what is in order, repair what is not.

        Returns the number of records applied this call.  Damaged
        frames are dropped and counted; the stream heals by resend.
        """
        metrics = _obs.current().metrics
        applied = 0
        for source, line in self.transport.receive(self.node_id):
            try:
                message = decode_message(line)
            except FrameError:
                metrics.counter("replication.frames_rejected").inc()
                continue
            epoch = int(message.get("epoch", self.epoch))
            kind = message.get("type")
            if kind in ("record", "snapshot", "digest", "head"):
                if epoch < self.epoch:
                    metrics.counter("replication.fenced_rejects").inc()
                    continue
                if epoch > self.epoch:
                    self._adopt(epoch, source)
            if kind == "record":
                applied += self._on_record(int(message["seq"]),
                                           epoch, message["entry"],
                                           message.get("trace"))
            elif kind == "snapshot":
                applied += self._on_snapshot(int(message["seq"]),
                                             message["state"],
                                             message.get("head"))
            elif kind == "digest":
                self._on_digest(int(message["seq"]), message["digest"],
                                message.get("chronon"))
            elif kind == "head":
                self._on_head(int(message["seq"]), message.get("head"),
                              message.get("chronon"))
        self._repair_gap()
        self._report_lag()
        return applied

    def _adopt(self, epoch: int, source: str) -> None:
        """A higher epoch: a promotion happened; follow the new primary.

        Buffered records from the deposed epoch are discarded — failover
        guarantees the *applied* prefix survives, but an un-applied
        buffered suffix may include zombie commits that did not."""
        self.epoch = epoch
        self.primary_id = source
        self._buffer.clear()
        self._gap_cooldown = 0
        _obs.current().metrics.counter("replication.epoch_adoptions").inc()

    # -- message handlers ----------------------------------------------------

    def _on_record(self, seq: int, epoch: int, entry: dict,
                   trace: Optional[dict] = None) -> int:
        metrics = _obs.current().metrics
        self._head_seq = max(self._head_seq, seq + 1)
        if seq < self.applied_seq:
            metrics.counter("replication.duplicates_dropped").inc()
            return 0
        if seq > self.applied_seq:
            if seq not in self._buffer:
                metrics.counter("replication.gaps_detected").inc()
            self._buffer[seq] = (epoch, entry, trace)
            return 0
        applied = self._apply(entry, trace)
        applied += self._drain_buffer()
        return applied

    def _on_snapshot(self, seq: int, state: dict,
                     head: Optional[str] = None) -> int:
        obs = _obs.current()
        metrics = obs.metrics
        if seq < self.applied_seq:
            metrics.counter("replication.duplicates_dropped").inc()
            return 0
        was_degraded = self._degraded is not None
        self.database = load_database(state)
        self._clock = self.database.manager.clock.source
        self.applied_seq = seq
        self._head_seq = max(self._head_seq, seq)
        last = self.database.manager.clock.last
        self._applied_chronon = (last.chronon if last is not None else None)
        for stale in [s for s in self._buffer if s < seq]:
            del self._buffer[stale]
        for stale in [s for s in self._expected if s < seq]:
            del self._expected[stale]
        for stale in [s for s in self._expected_heads if s < seq]:
            del self._expected_heads[stale]
        # The snapshot replaces the state wholesale with the primary's,
        # so any suspicion about the old state is resolved with it.
        self._chain_head = head if head is not None else (
            _chain.GENESIS if seq == 0 else None)
        self._verified_seq = seq if head is not None else self._verified_seq
        self._log_expected = len(self.database.log)
        self._divergence = None
        if was_degraded:
            self._degraded = None
            self._repair_cooldown = 0
            metrics.counter("replication.self_heals").inc()
            obs.events.emit("integrity.healed", node=self.node_id, seq=seq)
        metrics.counter("replication.snapshots_loaded").inc()
        self._check_digest()
        self._check_chain()
        return self._drain_buffer()

    def _on_digest(self, seq: int, digest: str,
                   chronon: Optional[int]) -> None:
        self._head_seq = max(self._head_seq, seq)
        if chronon is not None:
            self._head_chronon = max(self._head_chronon or 0, chronon)
        if seq < self.applied_seq:
            return  # a past state cannot be recomputed; the next one can
        self._expected[seq] = digest
        self._check_digest()

    def _on_head(self, seq: int, head: Optional[str],
                 chronon: Optional[int]) -> None:
        """The O(1) fast path: compare chain heads, count local commits."""
        self._head_seq = max(self._head_seq, seq)
        if chronon is not None:
            self._head_chronon = max(self._head_chronon or 0, chronon)
        metrics = _obs.current().metrics
        metrics.counter("replication.chain_checks").inc()
        # Local-commit check: valid at any lag, because _log_expected
        # moves in lockstep with the log on every streamed apply.
        if (self._divergence is None
                and len(self.database.log) != self._log_expected):
            metrics.counter("replication.divergence_detected").inc()
            self._divergence = DivergenceError(
                f"replica {self.node_id} holds "
                f"{len(self.database.log) - self._log_expected} commit(s) "
                f"that never came off the stream — local writes made its "
                f"state independent of the primary; refusing to serve; "
                f"rebuild from a snapshot")
            return
        if seq < self.applied_seq:
            return  # past heads cannot be re-derived; the next one can
        self._expected_heads[seq] = head
        self._check_chain()

    # -- apply ---------------------------------------------------------------

    def _apply(self, entry: dict, trace: Optional[dict] = None) -> int:
        obs = _obs.current()
        metrics = obs.metrics
        seq = self.applied_seq
        # The cross-thread (cross-node) handoff: the shipped record's
        # trace context parents this apply span under the primary-side
        # ship span, even though we run on the replica's pump thread.
        parent = _trace.from_wire(trace)
        with obs.tracer.span("replication.apply", parent=parent,
                             node=self.node_id, seq=seq):
            with metrics.histogram("replication.apply_seconds").time():
                apply_entries(self.database, self._clock, [entry])
        self.applied_seq += 1
        self._log_expected += 1
        if self._chain_head is not None:
            self._chain_head = _chain.link_hash(
                self._chain_head, _chain.content_hash(entry))
        commit_time = decode_value(entry["commit_time"])
        self._applied_chronon = commit_time.chronon
        metrics.counter("replication.records_applied").inc()
        obs.events.emit("replication.apply",
                        txn=parent.trace_id if parent is not None else None,
                        node=self.node_id, seq=seq)
        self._check_digest()
        self._check_chain()
        return 1

    # -- the coordinator's drain path (no transport in between) --------------

    def apply_direct(self, seq: int, entry: dict) -> int:
        """Apply one record read straight from the old primary's durable
        log (the failover drain), bypassing the transport.  Idempotent
        like the streamed path; returns records applied (0 or 1)."""
        if seq < self.applied_seq:
            return 0
        if seq > self.applied_seq:
            raise ReplicationGap(
                f"drain out of order: replica {self.node_id} expects seq "
                f"{self.applied_seq}, got {seq}")
        return self._apply(entry)

    def load_snapshot(self, seq: int, state: dict) -> int:
        """Adopt a full dumped state as of *seq* records (the failover
        drain's catch-up when the gap fell below the old primary's
        floor)."""
        return self._on_snapshot(seq, state)

    def _drain_buffer(self) -> int:
        applied = 0
        while self.applied_seq in self._buffer:
            _, entry, trace = self._buffer.pop(self.applied_seq)
            applied += self._apply(entry, trace)
        return applied

    def _check_digest(self) -> None:
        expected = self._expected.pop(self.applied_seq, None)
        if expected is None or self._divergence is not None:
            return
        metrics = _obs.current().metrics
        metrics.counter("replication.digests_checked").inc()
        # Uncached on purpose: the digest is the detector of last
        # resort, so it must re-read the state it is judging.
        actual = state_digest(self.database, cache=False)
        if actual != expected:
            metrics.counter("replication.divergence_detected").inc()
            self._divergence = DivergenceError(
                f"replica {self.node_id} diverged at seq "
                f"{self.applied_seq}: digest {actual[:12]}… != primary's "
                f"{expected[:12]}… — refusing to serve; rebuild from a "
                f"snapshot")

    def _check_chain(self) -> None:
        """Compare the folded head against the primary's claim at the
        applied seq; a mismatch degrades (and asks for repair) rather
        than latching dead — the primary can make this node whole."""
        if self.applied_seq not in self._expected_heads:
            return
        expected = self._expected_heads.pop(self.applied_seq)
        if expected is None or self._divergence is not None:
            return
        if self._chain_head is None:
            # Unknown local prefix (snapshot without a head): adopt the
            # primary's claim and verify forward from here — the same
            # re-anchoring the recovery-side verifier does after a gap.
            self._chain_head = expected
            self._verified_seq = self.applied_seq
            return
        if self._chain_head == expected:
            self._verified_seq = self.applied_seq
            if self._degraded is not None:
                # The stream walked back onto the primary's chain
                # without needing the snapshot (e.g. a clean resend).
                self._degraded = None
                self._repair_cooldown = 0
                _obs.current().metrics.counter(
                    "replication.self_heals").inc()
                _obs.current().events.emit("integrity.healed",
                                           node=self.node_id,
                                           seq=self.applied_seq)
            return
        obs = _obs.current()
        obs.metrics.counter("replication.chain_divergence").inc()
        if self._degraded is None:
            self._degraded = (
                f"chain head at seq {self.applied_seq} is "
                f"{self._chain_head[:12]}…, primary's is {expected[:12]}… "
                f"— the applied stream differs from the primary's journal "
                f"after seq {self._verified_seq}")
            obs.events.emit("integrity.degraded", node=self.node_id,
                            seq=self.applied_seq,
                            verified_seq=self._verified_seq,
                            reason="chain-head mismatch")
        self._request_repair()

    def _request_repair(self) -> None:
        """Ask the primary for a snapshot to replace the suspect state."""
        self.transport.send(self.node_id, self.primary_id,
                            repair_message(self.applied_seq))
        self._repair_cooldown = GAP_RETRY_EVERY
        _obs.current().metrics.counter("replication.repair_requests").inc()

    # -- gap repair and lag --------------------------------------------------

    def _repair_gap(self) -> None:
        if self._degraded is not None:
            # Degraded: keep nudging the primary for the repair snapshot
            # (rate-limited like gap repair) instead of chasing records
            # that cannot fix a wrong prefix.
            if self._repair_cooldown > 0:
                self._repair_cooldown -= 1
            else:
                self._request_repair()
            return
        behind = self.applied_seq < self._head_seq or self._buffer
        if not behind:
            self._gap_cooldown = 0
            return
        if self._gap_cooldown > 0:
            self._gap_cooldown -= 1
            return
        message = (gap_message(self.applied_seq) if self._buffer
                   else catchup_message(self.applied_seq))
        self.transport.send(self.node_id, self.primary_id, message)
        self._gap_cooldown = GAP_RETRY_EVERY
        _obs.current().metrics.counter("replication.gap_requests").inc()

    def lag(self) -> Tuple[int, Optional[int]]:
        """``(records, chronons)`` behind the newest advertised head."""
        records = max(0, self._head_seq - self.applied_seq)
        chronons: Optional[int] = None
        if (self._head_chronon is not None
                and self._applied_chronon is not None):
            chronons = max(0, self._head_chronon - self._applied_chronon)
        return records, chronons

    def _report_lag(self) -> None:
        metrics = _obs.current().metrics
        records, chronons = self.lag()
        metrics.gauge("replication.lag_records").set(records)
        if chronons is not None:
            metrics.gauge("replication.lag_chronons").set(chronons)

    # -- serving reads -------------------------------------------------------

    @property
    def diverged(self) -> bool:
        """True once digest exchange latched a divergence."""
        return self._divergence is not None

    @property
    def degraded(self) -> bool:
        """True while a chain-head mismatch awaits snapshot repair."""
        return self._degraded is not None

    @property
    def chain_head(self) -> Optional[str]:
        """The chain head folded over every entry this replica applied
        (None when the prefix is unknown after a head-less snapshot)."""
        return self._chain_head

    @property
    def verified_seq(self) -> int:
        """The last seq at which the folded chain head matched the
        primary's claim — the end of the verified prefix."""
        return self._verified_seq

    def check(self) -> None:
        """Raise the latched :class:`~repro.errors.DivergenceError`, if any."""
        if self._divergence is not None:
            raise self._divergence

    def health(self) -> Dict[str, Any]:
        """The node's integrity surface (what SLO reporting embeds)."""
        records, chronons = self.lag()
        return {
            "node": self.node_id,
            "epoch": self.epoch,
            "applied_seq": self.applied_seq,
            "verified_seq": self._verified_seq,
            "chain_head": self._chain_head,
            "degraded": self._degraded,
            "diverged": self._divergence is not None,
            "lag_records": records,
            "lag_chronons": chronons,
            "buffered": len(self._buffer),
        }

    def _serveable(self, token: Optional[int],
                   allow_degraded: bool = False) -> None:
        self.check()
        if self._degraded is not None and not allow_degraded:
            _obs.current().metrics.counter(
                "replication.reads_degraded_refused").inc()
            raise DivergenceError(
                f"replica {self.node_id} is degraded ({self._degraded}); "
                f"repair is in progress — retry, or pass "
                f"allow_degraded=True to read the suspect state anyway "
                f"(verified through seq {self._verified_seq})")
        if token is not None and self.applied_seq < token:
            _obs.current().metrics.counter(
                "replication.reads_lagging").inc()
            raise ReplicaLagging(
                f"replica {self.node_id} applied {self.applied_seq} "
                f"records, read requires {token}; retry after the stream "
                f"catches up", token=token, applied=self.applied_seq)

    def read(self, name: str, token: Optional[int] = None,
             allow_degraded: bool = False):
        """The relation's current snapshot, gated on *token* (see module
        docs: read-your-writes).  *allow_degraded* opts into serving
        while a chain mismatch awaits repair."""
        self._serveable(token, allow_degraded)
        return self.database.snapshot(name)

    def timeslice(self, name: str, valid_at: Any,
                  token: Optional[int] = None,
                  allow_degraded: bool = False):
        """A valid-time slice served from the replica."""
        self._serveable(token, allow_degraded)
        return self.database.timeslice(name, valid_at)

    def rollback(self, name: str, as_of: Any,
                 token: Optional[int] = None,
                 allow_degraded: bool = False):
        """A transaction-time rollback served from the replica."""
        self._serveable(token, allow_degraded)
        return self.database.rollback(name, as_of)

    @property
    def log_floor(self) -> int:
        """Global seq of the replica's own ``database.log[0]`` (records
        applied before the last snapshot load are not in memory)."""
        return self.applied_seq - len(self.database.log)

    def __repr__(self) -> str:
        return (f"Replica({self.node_id!r}, epoch={self.epoch}, "
                f"applied={self.applied_seq}, "
                f"buffered={len(self._buffer)})")
