"""The primary: stream the commit journal to replicas as it grows.

A :class:`Primary` wraps a live database and chains itself onto the
transaction manager's ``on_commit`` hook — *after* any existing hook,
so a durable database journals first and publishes second (a record is
never on the wire before it is on disk; published entries are always a
subset of durable ones).  The hook fires under the manager's commit
lock, so records are published in exactly the serialized commit order.

Sequence numbers are global journal indices: record ``seq`` is the
``seq``-th commit in the primary's history, which makes replica apply
idempotent and gap detection trivial.  ``floor`` is the first sequence
number the primary still holds in memory — a primary recovered from a
checkpoint only has the tail of its log, exactly like
:class:`~repro.storage.recovery.DurabilityManager` recovery — and a
resend request below the floor is answered with a full snapshot
(checkpoint-based catch-up) instead of records.

:meth:`heartbeat` publishes two kinds of integrity evidence at an exact
sequence number (captured atomically under
:meth:`~repro.txn.manager.TransactionManager.certify`):

- a **chain head** on *every* beat — the fast path.  Comparing the
  head at seq N against a replica's own fold over the entries it
  applied costs O(1) per heartbeat instead of re-serializing the whole
  store, and (unlike a CRC) catches a record that was rewritten with a
  recomputed checksum.
- a **state digest** every ``digest_every``-th beat — the slow-path
  cross-check that the *materialized* state (not just the journal
  prefix) matches, and the failover audit trail: the coordinator
  compares a promoted replica against ``digest_at(seq)``.  The digest
  is memoized (:mod:`repro.replication.digest`), so idle heartbeats do
  not re-serialize anything.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import ReplicationError
from repro.obs import runtime as _obs
from repro.replication.digest import state_digest
from repro.replication.messages import (decode_message, digest_message,
                                        head_message, record_message,
                                        snapshot_message)
from repro.replication.transport import Transport
from repro.storage import chain as _chain
from repro.storage.framing import FrameError
from repro.storage.journal import encode_commit
from repro.storage.serializer import dump_database


class Primary:
    """One database streaming its commit order to a set of replicas.

    *chain_head* is the hash-chain head over the database's **current
    full history** (after the last record of ``database.log``) — pass
    it when promoting a replica that knows its own head, so the fold
    continues from a verified anchor.  A fresh primary at floor 0
    derives every head from :data:`~repro.storage.chain.GENESIS`
    itself (and cross-checks *chain_head* when both are known); a
    primary cut in mid-history without a head advertises ``None``
    heads (replicas skip the compare, digests still cover it).

    *digest_every* sets the slow-path cadence: a full digest message
    every N-th heartbeat (chain heads go on every one).  The first
    heartbeat always carries a digest, so a fresh pair establishes a
    state cross-check immediately.
    """

    def __init__(self, node_id: str, database, transport: Transport,
                 epoch: int = 0, floor: int = 0,
                 chain_head: Optional[str] = None,
                 digest_every: int = 4) -> None:
        if digest_every < 1:
            raise ValueError("digest_every is a cadence; it must be >= 1")
        self.node_id = node_id
        self.database = database
        self.transport = transport
        self.epoch = epoch
        self._floor = floor
        self._lock = threading.Lock()
        #: Encoded entries from ``floor`` on; entry i is global seq floor+i.
        self._entries: List[dict] = [encode_commit(commit)
                                     for commit in database.log]
        #: Chain head *before* the first retained entry (at seq = floor).
        self._base_head: Optional[str] = (_chain.GENESIS if floor == 0
                                          else None)
        #: Head after entry i (aligned with ``_entries``); None = unknown.
        self._heads: List[Optional[str]] = []
        head = self._base_head
        for entry in self._entries:
            head = (None if head is None
                    else _chain.link_hash(head, _chain.content_hash(entry)))
            self._heads.append(head)
        if chain_head is not None:
            current = self._heads[-1] if self._heads else self._base_head
            if current is None:
                # Anchor the fold at the caller's verified head; earlier
                # links left memory and stay unknown.
                if self._heads:
                    self._heads[-1] = chain_head
                else:
                    self._base_head = chain_head
            elif current != chain_head:
                raise ReplicationError(
                    f"primary {node_id} walks its log to chain head "
                    f"{current[:12]}…, caller claims {chain_head[:12]}… — "
                    f"refusing to stream from a disputed history")
        self._replicas: List[str] = []
        self._retired = False
        self._digest_every = digest_every
        self._beats = 0
        #: seq -> canonical digest, recorded at each heartbeat (the
        #: failover coordinator's durable-prefix audit trail).
        self._digest_history: Dict[int, str] = {}
        previous = database.manager.on_commit

        def hook(record) -> None:
            if previous is not None:
                previous(record)
            self._publish(record)

        database.manager.on_commit = hook

    # -- accessors ------------------------------------------------------------

    @property
    def floor(self) -> int:
        """The first sequence number still held in memory."""
        return self._floor

    @property
    def current_seq(self) -> int:
        """Total records in this primary's history (next seq to assign)."""
        with self._lock:
            return self._floor + len(self._entries)

    @property
    def retired(self) -> bool:
        """True once :meth:`retire` fenced this primary."""
        return self._retired

    def replicas(self) -> Tuple[str, ...]:
        """The registered replica node ids."""
        with self._lock:
            return tuple(self._replicas)

    def entries_from(self, seq: int) -> List[Tuple[int, dict]]:
        """``(seq, entry)`` for every retained record at or after *seq*.

        Raises :class:`~repro.errors.ReplicationError` below the floor —
        those records left memory at a checkpoint; catch up by snapshot.
        """
        with self._lock:
            if seq < self._floor:
                raise ReplicationError(
                    f"records below {self._floor} are checkpointed away; "
                    f"resend from {seq} is impossible — snapshot instead")
            start = seq - self._floor
            return [(self._floor + index, entry)
                    for index, entry in enumerate(self._entries)
                    if index >= start]

    def digest_at(self, seq: int) -> Optional[str]:
        """The digest recorded at *seq* by a heartbeat, if any."""
        with self._lock:
            return self._digest_history.get(seq)

    @property
    def chain_head(self) -> Optional[str]:
        """The chain head over this primary's full history (None when the
        prefix below the floor is unknown)."""
        with self._lock:
            return self._heads[-1] if self._heads else self._base_head

    def chain_head_at(self, seq: int) -> Optional[str]:
        """The chain head after exactly *seq* records, if derivable.

        None when *seq* precedes the floor (those links left memory) or
        the base head is unknown.
        """
        with self._lock:
            if seq < self._floor or seq > self._floor + len(self._heads):
                return None
            if seq == self._floor:
                return self._base_head
            return self._heads[seq - self._floor - 1]

    # -- membership -----------------------------------------------------------

    def add_replica(self, node_id: str) -> None:
        """Register a replica; it pulls catch-up itself (see Replica)."""
        with self._lock:
            if node_id not in self._replicas:
                self._replicas.append(node_id)

    def retire(self) -> None:
        """Fence this primary: stop publishing (clean failover hand-off)."""
        self._retired = True

    # -- streaming ------------------------------------------------------------

    def _publish(self, record) -> None:
        """``on_commit`` tail: append to the retained entries and stream."""
        obs = _obs.current()
        entry = encode_commit(record)
        with self._lock:
            seq = self._floor + len(self._entries)
            self._entries.append(entry)
            prev = self._heads[-1] if self._heads else self._base_head
            self._heads.append(
                None if prev is None
                else _chain.link_hash(prev, _chain.content_hash(entry)))
            targets = tuple(self._replicas)
        if self._retired:
            return
        # The ship span runs on the committing thread (under the commit
        # lock), so it nests under the commit's own trace; its context
        # rides on the wire so the replica's apply — another thread,
        # logically another node — can parent under it.
        with obs.tracer.span("replication.ship", node=self.node_id,
                             seq=seq) as span:
            trace = (span.context.to_wire()
                     if span.trace_id is not None else None)
            line = record_message(self.epoch, seq, entry, trace=trace)
            for target in targets:
                self.transport.send(self.node_id, target, line)
        obs.events.emit("replication.ship", node=self.node_id, seq=seq,
                        replicas=len(targets))
        obs.metrics.counter(
            "replication.records_sent").inc(len(targets))

    def _capture(self):
        """Atomically capture ``(seq, head, digest, chronon)`` between
        commits; the digest is memoized, so an idle capture is cheap."""
        captured = {}

        def capture() -> None:
            with self._lock:
                captured["seq"] = self._floor + len(self._entries)
                captured["head"] = (self._heads[-1] if self._heads
                                    else self._base_head)
            captured["digest"] = state_digest(self.database)
            last = self.database.manager.clock.last
            captured["chronon"] = (last.chronon if last is not None
                                   else None)

        self.database.manager.certify(capture)
        return (captured["seq"], captured["head"], captured["digest"],
                captured["chronon"])

    def heartbeat(self) -> Tuple[int, str]:
        """Publish integrity evidence at an exact seq; returns
        ``(seq, digest)``.

        Every beat sends the O(1) chain head; every ``digest_every``-th
        beat (and always the first) also sends the full state digest —
        the slow-path cross-check.  The digest is recorded in
        :meth:`digest_at` history either way — the failover
        coordinator's proof obligation refers to it, and memoization
        makes the idle-beat recording free.
        """
        metrics = _obs.current().metrics
        seq, head, digest, chronon = self._capture()
        with self._lock:
            self._digest_history[seq] = digest
            targets = tuple(self._replicas)
            send_digest = self._beats % self._digest_every == 0
            self._beats += 1
        if not self._retired:
            head_line = head_message(self.epoch, seq, head, chronon)
            digest_line = (digest_message(self.epoch, seq, digest, chronon)
                           if send_digest else None)
            for target in targets:
                self.transport.send(self.node_id, target, head_line)
                if digest_line is not None:
                    self.transport.send(self.node_id, target, digest_line)
        metrics.counter("replication.heads_sent").inc()
        if send_digest:
            metrics.counter("replication.digests_sent").inc()
        return seq, digest

    def snapshot_state(self) -> dict:
        """The full dumped state right now (captured between commits)."""
        captured = {}

        def capture() -> None:
            captured["state"] = dump_database(self.database)

        self.database.manager.certify(capture)
        return captured["state"]

    def _send_snapshot(self, target: str) -> None:
        """Checkpoint-based catch-up: full state at an exact seq, plus
        the chain head there so the receiver re-anchors its fold."""
        captured = {}

        def capture() -> None:
            with self._lock:
                captured["seq"] = self._floor + len(self._entries)
                captured["head"] = (self._heads[-1] if self._heads
                                    else self._base_head)
            captured["state"] = dump_database(self.database)

        self.database.manager.certify(capture)
        self.transport.send(
            self.node_id, target,
            snapshot_message(self.epoch, captured["seq"], captured["state"],
                             head=captured["head"]))
        _obs.current().metrics.counter("replication.snapshots_served").inc()

    def pump(self) -> int:
        """Serve queued replica requests (gap resends, catch-up).

        Returns the number of messages handled.  Damaged frames are
        counted and dropped — the requester re-requests.
        """
        metrics = _obs.current().metrics
        handled = 0
        for source, line in self.transport.receive(self.node_id):
            try:
                message = decode_message(line)
            except FrameError:
                metrics.counter("replication.frames_rejected").inc()
                continue
            handled += 1
            kind = message.get("type")
            if kind == "gap":
                self._serve_from(source, int(message["next_seq"]))
                metrics.counter("replication.resend_requests").inc()
            elif kind == "catchup":
                self._serve_from(source, int(message["applied"]))
                metrics.counter("replication.catchup_requests").inc()
            elif kind == "repair":
                # A degraded replica: its applied suffix failed the
                # chain check, so records past its head cannot fix it —
                # only a full snapshot (with the head to re-anchor on).
                if not self._retired:
                    self._send_snapshot(source)
                metrics.counter("replication.repairs_served").inc()
        return handled

    def _serve_from(self, target: str, seq: int) -> None:
        if self._retired:
            return
        if seq < self._floor:
            self._send_snapshot(target)
            return
        for record_seq, entry in self.entries_from(seq):
            self.transport.send(self.node_id, target,
                                record_message(self.epoch, record_seq, entry))
        _obs.current().metrics.counter("replication.resends_served").inc()

    def __repr__(self) -> str:
        return (f"Primary({self.node_id!r}, epoch={self.epoch}, "
                f"seq={self.current_seq}, "
                f"replicas={list(self.replicas())})")
