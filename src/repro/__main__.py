"""``python -m repro`` — the ``repro`` observability CLI, no install.

The console scripts (``tquel``, ``repro``) only exist after ``pip
install``; CI and fresh checkouts run ``PYTHONPATH=src python -m repro
…`` instead and land here.
"""

import sys

from repro.cli import repro_main

if __name__ == "__main__":
    sys.exit(repro_main())
