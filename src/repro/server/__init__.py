"""The network serving layer: an asyncio server over the temporal engine.

The library becomes a service here.  :mod:`repro.server.protocol`
defines the CRC-framed request/response wire format (the same framing
armor the journal and the replication stream wear) and the typed
error mapping that round-trips every :class:`~repro.errors.ReproError`
subclass; :mod:`repro.server.server` is the asyncio socket server with
the robustness contract of docs/SERVING.md — per-request deadlines
enforced at the socket, per-tenant admission with typed overload
replies, write-buffer backpressure against slow clients, idle
timeouts, and graceful drain; :mod:`repro.server.chaos` is the
fault-injectable in-process duplex pipe the chaos harness and the
loadgen drive connections through.
"""

from repro.server.chaos import ChaosConfig, MemoryPipe, open_pipe
from repro.server.protocol import (SERVING_TAG, decode_error, decode_message,
                                   encode_error, encode_message,
                                   error_reply, parse_request)
from repro.server.server import ReproServer, ServerConfig

__all__ = [
    "ChaosConfig",
    "MemoryPipe",
    "ReproServer",
    "SERVING_TAG",
    "ServerConfig",
    "decode_error",
    "decode_message",
    "encode_error",
    "encode_message",
    "error_reply",
    "open_pipe",
    "parse_request",
]
