"""Fault-injectable in-process connections for the serving layer.

Real sockets make bad test fixtures: kernel buffers hide backpressure,
and nothing on a loopback device drops, delays or tears bytes.  A
:class:`MemoryPipe` is one endpoint of an in-process duplex byte
stream that speaks the same duck-typed surface the server and client
use on real asyncio streams — ``readline`` / ``write`` / ``drain`` /
``close`` / ``wait_closed`` — with two properties sockets lack:

- **honest backpressure**: each direction has a bounded receive
  buffer; a writer's ``drain()`` blocks while the peer is not reading,
  so the server's slow-client defense is testable to the byte;
- **seeded chaos**: a :class:`ChaosConfig` injects the misbehaviours
  of real networks at frame-line granularity — **drop** (the line
  vanishes), **delay** (it arrives late), **split** (partial writes:
  the line lands in two separate deliveries), **corrupt** (one payload
  byte flipped — the CRC framing must catch it), **disconnect** (the
  connection dies mid-line) — decided by a :class:`random.Random`
  seeded per direction, in the spirit of
  :class:`~repro.replication.transport.FaultyTransport`: a fixed seed
  reproduces the fault schedule, so a chaos run is a test, not a
  lottery.

Injected faults are counted through :mod:`repro.obs`
(``server.chaos.*``) so a run's report can say how hostile it was.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.obs import runtime as _obs

#: Default receive-buffer capacity per direction (bytes).
DEFAULT_CAPACITY = 256 * 1024

#: Default longest frame line ``readline`` will buffer before refusing.
DEFAULT_LINE_LIMIT = (1 << 20) + 4096


class ChaosConfig:
    """Seeded per-line fault probabilities for one pipe.

    Probabilities are independent per line, drawn in a fixed order from
    one RNG per direction, so the schedule is a pure function of
    ``(seed, direction, line index)``.  ``delay_s`` is how long a
    delayed line is held; splits deliver the first half immediately and
    the rest after ``delay_s / 4``.
    """

    __slots__ = ("seed", "drop", "delay", "split", "corrupt", "disconnect",
                 "delay_s")

    def __init__(self, seed: int = 0, drop: float = 0.0, delay: float = 0.0,
                 split: float = 0.0, corrupt: float = 0.0,
                 disconnect: float = 0.0, delay_s: float = 0.02) -> None:
        for name, value in (("drop", drop), ("delay", delay),
                            ("split", split), ("corrupt", corrupt),
                            ("disconnect", disconnect)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, "
                                 f"got {value!r}")
        self.seed = seed
        self.drop = drop
        self.delay = delay
        self.split = split
        self.corrupt = corrupt
        self.disconnect = disconnect
        self.delay_s = delay_s

    @property
    def any_faults(self) -> bool:
        """True when at least one fault probability is non-zero."""
        return any((self.drop, self.delay, self.split, self.corrupt,
                    self.disconnect))

    def __repr__(self) -> str:
        return (f"ChaosConfig(seed={self.seed}, drop={self.drop}, "
                f"delay={self.delay}, split={self.split}, "
                f"corrupt={self.corrupt}, disconnect={self.disconnect})")


class _Buffer:
    """The receive side of one direction: bounded, line-aware, async."""

    def __init__(self, capacity: int) -> None:
        self._data = bytearray()
        self._eof = False
        self._capacity = capacity
        self._readable = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def at_eof(self) -> bool:
        return self._eof and not self._data

    def feed(self, data: bytes) -> None:
        if self._eof:
            return
        self._data.extend(data)
        self._readable.set()
        if len(self._data) >= self._capacity:
            self._drained.clear()

    def feed_eof(self) -> None:
        self._eof = True
        self._readable.set()
        self._drained.set()  # a dead reader should not wedge the writer

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def readline(self, limit: int) -> bytes:
        """One ``\\n``-terminated line (terminator included), or what
        remains at EOF; raises ``ValueError`` past *limit* bytes with no
        terminator — the peer is streaming garbage, not lines."""
        while True:
            index = self._data.find(b"\n")
            if index >= 0:
                line = bytes(self._data[:index + 1])
                del self._data[:index + 1]
                self._after_read()
                return line
            if self._eof:
                line = bytes(self._data)
                self._data.clear()
                self._after_read()
                return line
            if len(self._data) > limit:
                raise ValueError(
                    f"line exceeds {limit} bytes with no terminator")
            self._readable.clear()
            await self._readable.wait()

    def _after_read(self) -> None:
        if len(self._data) < self._capacity:
            self._drained.set()
        if not self._data and not self._eof:
            self._readable.clear()


class MemoryPipe:
    """One endpoint of an in-process duplex stream (reader *and* writer).

    Pass the same object wherever a ``(reader, writer)`` pair is
    expected; it implements both halves of the asyncio stream surface
    the serving layer uses.
    """

    def __init__(self, name: str, capacity: int, limit: int,
                 chaos: Optional[ChaosConfig]) -> None:
        self.name = name
        self._in = _Buffer(capacity)
        self._peer: Optional["MemoryPipe"] = None
        self._limit = limit
        self._closed = False
        self._close_waiter: asyncio.Event = asyncio.Event()
        self._chaos = chaos
        self._rng = (random.Random(f"{chaos.seed}:{name}")
                     if chaos is not None else None)
        self._pending = bytearray()
        self._line_index = 0
        self._tasks: set = set()
        self._queue: Deque[Tuple[Optional[bytes], float]] = deque()
        self._queue_event: asyncio.Event = asyncio.Event()
        self._delivery_task: Optional[asyncio.Task] = None

    # -- reader surface ------------------------------------------------------

    async def readline(self) -> bytes:
        if self._closed:
            return b""
        return await self._in.readline(self._limit)

    def at_eof(self) -> bool:
        return self._in.at_eof

    # -- writer surface ------------------------------------------------------

    def write(self, data: bytes) -> None:
        """Queue *data* toward the peer, applying chaos per frame line."""
        if self._closed or self._peer is None or self._peer._closed:
            raise ConnectionResetError(f"pipe {self.name} is closed")
        if self._chaos is None or not self._chaos.any_faults:
            self._peer._in.feed(data)
            return
        self._pending.extend(data)
        while True:
            index = self._pending.find(b"\n")
            if index < 0:
                break
            line = bytes(self._pending[:index + 1])
            del self._pending[:index + 1]
            self._inject(line)

    async def drain(self) -> None:
        """Honest backpressure: wait for the peer to read below its
        high-water mark (returns immediately against a healthy reader)."""
        if self._peer is None or self._peer._closed:
            raise ConnectionResetError(f"peer of {self.name} is gone")
        await self._peer._in.wait_drained()
        if self._closed or self._peer._closed:
            raise ConnectionResetError(f"pipe {self.name} closed mid-drain")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._close_waiter.set()
        for task in list(self._tasks):
            task.cancel()
        self._in.feed_eof()  # release writers blocked draining into us
        if self._peer is not None:
            self._peer._in.feed_eof()

    def abort(self) -> None:
        """Hard close both directions (the chaos disconnect / kill)."""
        self.close()
        if self._peer is not None:
            self._peer.close()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        await self._close_waiter.wait()

    def get_extra_info(self, name: str, default: Any = None) -> Any:
        if name == "peername":
            return ("memory", self.name)
        return default

    # -- chaos ---------------------------------------------------------------

    def _inject(self, line: bytes) -> None:
        """Decide this line's fate: one draw per fault, fixed order.

        Every surviving byte goes through one FIFO delivery queue per
        direction — a delayed or split line holds up everything behind
        it (head-of-line blocking), because a real TCP connection never
        reorders within the stream.
        """
        assert self._rng is not None and self._chaos is not None
        chaos, rng = self._chaos, self._rng
        metrics = _obs.current().metrics
        self._line_index += 1
        dropped = rng.random() < chaos.drop
        delayed = rng.random() < chaos.delay
        split = rng.random() < chaos.split
        corrupt = rng.random() < chaos.corrupt
        disconnect = rng.random() < chaos.disconnect
        if disconnect:
            # The cruellest cut: a prefix lands, then the stream dies.
            metrics.counter("server.chaos.disconnects").inc()
            cut = rng.randrange(0, len(line)) if len(line) > 1 else 0
            if cut:
                self._enqueue(line[:cut], 0.0)
            self._enqueue(None, 0.0)  # the close sentinel
            self._closed = True  # further writes fail immediately
            self._close_waiter.set()
            return
        if dropped:
            metrics.counter("server.chaos.dropped").inc()
            return
        if corrupt and len(line) > 2:
            metrics.counter("server.chaos.corrupted").inc()
            position = rng.randrange(0, len(line) - 1)
            flipped = line[position] ^ (1 << rng.randrange(0, 7)) or 0x20
            if flipped == 0x0A:  # never forge a line terminator
                flipped = 0x2A
            line = line[:position] + bytes((flipped,)) + line[position + 1:]
        if delayed:
            metrics.counter("server.chaos.delayed").inc()
            self._enqueue(line, chaos.delay_s)
            return
        if split and len(line) > 2:
            metrics.counter("server.chaos.split").inc()
            cut = rng.randrange(1, len(line) - 1)
            self._enqueue(line[:cut], 0.0)
            self._enqueue(line[cut:], chaos.delay_s / 4)
            return
        self._enqueue(line, 0.0)

    def _enqueue(self, data: Optional[bytes], pause: float) -> None:
        """Queue one in-order delivery (``None`` = abort the pipe)."""
        self._queue.append((data, pause))
        self._queue_event.set()
        if self._delivery_task is None or self._delivery_task.done():
            self._delivery_task = asyncio.ensure_future(self._deliver())
            self._tasks.add(self._delivery_task)
            self._delivery_task.add_done_callback(self._tasks.discard)

    async def _deliver(self) -> None:
        """The FIFO delivery pump for this direction."""
        while True:
            if not self._queue:
                self._queue_event.clear()
                await self._queue_event.wait()
                continue
            data, pause = self._queue.popleft()
            if pause:
                try:
                    await asyncio.sleep(pause)
                except asyncio.CancelledError:
                    return
            if data is None:
                # _inject already marked this end closed; finish the
                # teardown close() would have done, then kill the peer.
                self._close_waiter.set()
                self._in.feed_eof()
                if self._peer is not None:
                    self._peer.close()
                return
            if self._peer is not None and not self._peer._closed:
                self._peer._in.feed(data)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"MemoryPipe({self.name!r}, {state}, " \
               f"{self._in.size} buffered)"


def open_pipe(chaos: Optional[ChaosConfig] = None,
              capacity: int = DEFAULT_CAPACITY,
              limit: int = DEFAULT_LINE_LIMIT,
              name: str = "conn") -> Tuple[MemoryPipe, MemoryPipe]:
    """A connected ``(client_end, server_end)`` pair.

    Chaos (when given) applies to *both* directions, each with its own
    deterministic RNG stream.  Capacity bounds each direction's receive
    buffer — the backpressure seam.
    """
    client = MemoryPipe(f"{name}:client", capacity, limit, chaos)
    server = MemoryPipe(f"{name}:server", capacity, limit, chaos)
    client._peer = server
    server._peer = client
    return client, server


def chaos_stats() -> Dict[str, int]:
    """The injected-fault counters of the current instrumentation."""
    snapshot = _obs.current().metrics.snapshot()
    counters = snapshot.get("counters", {})
    return {name: value for name, value in counters.items()
            if name.startswith("server.chaos.")}
