"""The asyncio serving layer: the temporal engine behind a socket.

:class:`ReproServer` accepts framed-line connections (real TCP via
:meth:`ReproServer.serve` or in-process :class:`~repro.server.chaos.
MemoryPipe` pairs via :meth:`ReproServer.handle_connection`), parses
TQuel requests, executes them against the engine, and streams results
back in bounded chunks.  The robustness contract (docs/SERVING.md):

- **deadlines**: a request's ``budget_ms`` is pinned to the server's
  monotonic clock at receipt, propagated into
  :meth:`SessionLayer.run <repro.concurrency.layer.SessionLayer.run>`
  (admission queueing, retries and commit all respect it) *and*
  enforced at the socket — a reply to an expired request is suppressed,
  never sent;
- **admission per tenant**: each tenant gets its own
  :class:`~repro.concurrency.layer.SessionLayer` with a scoped
  :class:`~repro.concurrency.admission.AdmissionController`; shed work
  answers with a typed retryable :class:`~repro.errors.Overloaded`
  carrying ``retry_after`` and the queue depth that caused it;
- **backpressure**: replies go through ``drain()`` under a write-stall
  timeout; a client that stops reading is sent a ``goodbye`` (best
  effort) and disconnected rather than allowed to pin server memory;
  a connection that sends nothing for ``idle_timeout`` is closed;
- **pipelining, bounded**: up to ``max_pipeline`` requests run
  concurrently per connection; the excess is shed with ``Overloaded``;
- **graceful drain**: :meth:`drain` stops accepting, answers new
  requests with retryable :class:`~repro.errors.DrainingError`, lets
  in-flight work finish up to the grace period, then aborts what
  remains with the same typed error;
- **replica routing**: reads asking for ``replica``/``ryw``
  consistency are served from a caught-up, healthy replica (gated on
  the :attr:`~repro.concurrency.session.ConcurrentSession.commit_token`
  read-your-writes token), falling back to the primary when no replica
  is eligible — degraded service, never wrong answers.

Everything the engine does stays synchronous; blocking work runs in a
thread pool so the event loop only ever shuffles frames.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.concurrency.admission import AdmissionController
from repro.concurrency.layer import SessionLayer
from repro.concurrency.retry import RetryPolicy
from repro.errors import (DrainingError, Overloaded, ProtocolError,
                          ReproError, ServingError)
from repro.obs import runtime as _obs
from repro.server import protocol
from repro.tquel.ast import RangeStmt, RetrieveStmt
from repro.tquel.interpreter import Session
from repro.tquel.lexer import tokenize
from repro.tquel.parser import parse_tokens


class ServerConfig:
    """Tunable limits of one :class:`ReproServer` (all have safe defaults).

    ``chunk_rows`` bounds one ``rows`` frame; ``max_pipeline`` bounds
    concurrent requests per connection; ``idle_timeout`` /
    ``write_stall_timeout`` are the slow-client defenses (seconds);
    ``drain_grace`` is how long :meth:`ReproServer.drain` lets in-flight
    work finish; ``max_active`` / ``max_queue`` / ``retry_after``
    parameterize each tenant's admission controller; ``default_budget``
    (seconds) applies when a request names no ``budget_ms``; ``plan``
    is the TQuel access-path mode; ``retry_seed`` seeds each tenant
    layer's backoff jitter for reproducible runs.
    """

    def __init__(self, chunk_rows: int = 64, max_pipeline: int = 8,
                 idle_timeout: float = 30.0,
                 write_stall_timeout: float = 5.0,
                 drain_grace: float = 5.0,
                 max_active: int = 8, max_queue: int = 16,
                 retry_after: float = 0.05,
                 default_budget: Optional[float] = None,
                 plan: str = "auto",
                 executor_workers: int = 8,
                 retry_seed: Optional[int] = None) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        if max_pipeline < 1:
            raise ValueError("max_pipeline must be at least 1")
        self.chunk_rows = chunk_rows
        self.max_pipeline = max_pipeline
        self.idle_timeout = idle_timeout
        self.write_stall_timeout = write_stall_timeout
        self.drain_grace = drain_grace
        self.max_active = max_active
        self.max_queue = max_queue
        self.retry_after = retry_after
        self.default_budget = default_budget
        self.plan = plan
        self.executor_workers = executor_workers
        self.retry_seed = retry_seed


class _Connection:
    """Per-connection state: streams, bindings, in-flight tasks."""

    _next_id = 0

    def __init__(self, reader: Any, writer: Any) -> None:
        _Connection._next_id += 1
        self.id = _Connection._next_id
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        #: ``range of`` bindings are connection-scoped session state.
        self.ranges: Dict[str, str] = {}
        self.tasks: set = set()
        self.closed = False


class ReproServer:
    """The asyncio server over one (possibly sharded) temporal database.

    *replicas* is an iterable of :class:`~repro.replication.replica.
    Replica` nodes eligible to serve reads; pass the live objects — the
    server consults :meth:`~repro.replication.replica.Replica.health`
    per request, so catch-up and degradation are honored in real time.
    *clock* must be the same monotonic time source the tenant layers
    use (injectable for simulated-time tests).
    """

    def __init__(self, database: Any,
                 config: Optional[ServerConfig] = None,
                 replicas: Iterable[Any] = (),
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.database = database
        self.config = config or ServerConfig()
        self.replicas = list(replicas)
        self._clock = clock
        self._layers: Dict[str, SessionLayer] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-serve")
        self._connections: set = set()
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self.stats: Dict[str, int] = {
            "connections": 0, "requests": 0, "replies": 0,
            "rows_sent": 0, "shed": 0, "pipeline_shed": 0,
            "protocol_errors": 0, "errors": 0, "late_suppressed": 0,
            "idle_closes": 0, "slow_client_aborts": 0,
            "replica_reads": 0, "primary_fallbacks": 0,
            "drain_rejected": 0, "drain_aborted": 0,
        }

    # -- wiring ---------------------------------------------------------------

    def layer(self, tenant: str) -> SessionLayer:
        """The tenant's session layer (created on first use).

        Each tenant gets its own admission controller scoped
        ``tenant.<name>`` — one tenant's burst sheds *its* queue, and
        the scoped ``admission.tenant.<name>.*`` metrics say whose.
        """
        existing = self._layers.get(tenant)
        if existing is not None:
            return existing
        config = self.config
        layer = SessionLayer(
            self.database,
            retry=RetryPolicy(seed=config.retry_seed,
                              clock=self._clock),
            admission=AdmissionController(max_active=config.max_active,
                                          max_queue=config.max_queue,
                                          retry_after=config.retry_after,
                                          clock=self._clock,
                                          scope=f"tenant.{tenant}"),
            clock=self._clock)
        self._layers[tenant] = layer
        return layer

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def in_flight(self) -> int:
        return sum(len(connection.tasks)
                   for connection in self._connections)

    # -- TCP entry point ------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen on TCP; returns the bound ``(host, port)``."""
        self._tcp_server = await asyncio.start_server(
            self.handle_connection, host, port,
            limit=protocol.MAX_FRAME_BYTES + 4096)
        address = self._tcp_server.sockets[0].getsockname()
        return address[0], address[1]

    async def wait_closed(self) -> None:
        if self._tcp_server is not None:
            await self._tcp_server.wait_closed()

    # -- connection lifecycle -------------------------------------------------

    async def handle_connection(self, reader: Any, writer: Any) -> None:
        """Serve one connection until EOF, timeout, fatal damage or drain.

        Works identically over asyncio TCP streams and MemoryPipe ends —
        only ``readline`` / ``write`` / ``drain`` / ``close`` are used.
        """
        if self._draining:
            # Late arrival during drain: turn it away politely.
            try:
                writer.write(protocol.goodbye("draining"))
                writer.close()
            except (ConnectionError, OSError):
                pass
            return
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        self.stats["connections"] += 1
        metrics = _obs.current().metrics
        metrics.gauge("server.connections").set(len(self._connections))
        try:
            await self._read_loop(connection)
        finally:
            for task in list(connection.tasks):
                task.cancel()
            self._close_connection(connection)
            self._connections.discard(connection)
            metrics.gauge("server.connections").set(len(self._connections))

    async def _read_loop(self, connection: _Connection) -> None:
        config = self.config
        while not connection.closed:
            try:
                line = await asyncio.wait_for(connection.reader.readline(),
                                              timeout=config.idle_timeout)
            except asyncio.TimeoutError:
                self.stats["idle_closes"] += 1
                _obs.current().events.emit(
                    "server.slow_client", connection=connection.id,
                    reason="idle_timeout")
                await self._say_goodbye(connection, "idle timeout")
                return
            except ValueError:
                # The peer is streaming an unterminated torrent; there
                # is no frame boundary left to resynchronize on.
                self.stats["protocol_errors"] += 1
                await self._reply(connection, protocol.error_reply(
                    None, ProtocolError(
                        "line exceeds the frame ceiling with no "
                        "terminator; closing")), None)
                await self._say_goodbye(connection, "unframed stream")
                return
            except (ConnectionError, OSError):
                return
            if not line:
                return  # clean EOF
            if line.strip() == b"":
                continue  # bare keepalive newline
            await self._dispatch(connection, line)

    async def _dispatch(self, connection: _Connection, line: bytes) -> None:
        """Route one frame line: validate, answer, or spawn a request."""
        obs = _obs.current()
        try:
            message = protocol.parse_request(line)
        except ProtocolError as error:
            # Malformed-but-complete line: typed error, connection
            # survives — one mangled frame must not kill a pipeline.
            self.stats["protocol_errors"] += 1
            obs.metrics.counter("server.protocol_errors").inc()
            obs.events.emit("server.error", connection=connection.id,
                            error="ProtocolError", message=str(error))
            await self._reply(connection,
                              protocol.error_reply(None, error), None)
            return
        if message["type"] == "ping":
            await self._reply(connection,
                              protocol.pong_reply(message["id"]), None)
            return
        request_id = message["id"]
        if len(connection.tasks) >= self.config.max_pipeline:
            self.stats["pipeline_shed"] += 1
            overloaded = Overloaded(
                f"connection pipeline is full "
                f"({self.config.max_pipeline} requests in flight)",
                retry_after=self.config.retry_after,
                queued=len(connection.tasks))
            obs.events.emit("server.shed", connection=connection.id,
                            tenant=message.get("tenant", "default"),
                            reason="pipeline",
                            retry_after=self.config.retry_after,
                            queued=len(connection.tasks))
            await self._reply(connection,
                              protocol.error_reply(request_id, overloaded),
                              None)
            return
        task = asyncio.ensure_future(self._run_request(connection, message))
        connection.tasks.add(task)
        task.add_done_callback(connection.tasks.discard)

    # -- request execution ----------------------------------------------------

    async def _run_request(self, connection: _Connection,
                           message: Dict[str, Any]) -> None:
        obs = _obs.current()
        received = self._clock()
        request_id = message["id"]
        tenant = message.get("tenant", "default")
        budget_ms = message.get("budget_ms")
        budget = (budget_ms / 1000.0 if budget_ms is not None
                  else self.config.default_budget)
        deadline = received + budget if budget is not None else None
        self.stats["requests"] += 1
        obs.metrics.counter("server.requests").inc()
        obs.events.emit("server.request", connection=connection.id,
                        request=request_id, tenant=tenant,
                        consistency=message.get("consistency", "primary"))
        try:
            if self._draining:
                self.stats["drain_rejected"] += 1
                raise DrainingError(
                    "server is draining; retry against another node",
                    retry_after=self._drain_remaining())
            await self._execute(connection, message, deadline)
        except asyncio.CancelledError:
            # Drain abort or connection teardown: best-effort typed
            # error (suppressed if the deadline has already passed).
            self.stats["drain_aborted"] += 1
            error = DrainingError("request aborted by server drain",
                                  retry_after=self._drain_remaining())
            await asyncio.shield(self._reply(
                connection, protocol.error_reply(request_id, error),
                deadline))
            raise
        except ReproError as error:
            self.stats["errors"] += 1
            obs.metrics.counter("server.request_errors").inc()
            obs.events.emit("server.error", connection=connection.id,
                            request=request_id,
                            error=type(error).__name__,
                            retryable=bool(error.retryable))
            if isinstance(error, Overloaded):
                self.stats["shed"] += 1
                obs.events.emit("server.shed", connection=connection.id,
                                tenant=tenant, reason="admission",
                                retry_after=error.retry_after,
                                queued=error.queued)
            await self._reply(connection,
                              protocol.error_reply(request_id, error),
                              deadline)
        except Exception as error:  # noqa: BLE001 - the wire needs a type
            self.stats["errors"] += 1
            obs.events.emit("server.error", connection=connection.id,
                            request=request_id,
                            error=type(error).__name__, internal=True)
            wrapped = ServingError(
                f"internal error: {type(error).__name__}: {error}")
            await self._reply(connection,
                              protocol.error_reply(request_id, wrapped),
                              deadline)

    async def _execute(self, connection: _Connection,
                       message: Dict[str, Any],
                       deadline: Optional[float]) -> None:
        """Parse, route, run and stream one query request."""
        loop = asyncio.get_event_loop()
        source = message["source"]
        request_id = message["id"]
        tenant = message.get("tenant", "default")
        consistency = message.get("consistency", "primary")
        token = message.get("token")
        statement = await loop.run_in_executor(
            self._executor, lambda: parse_tokens(tokenize(source)))
        is_read = isinstance(statement, (RetrieveStmt, RangeStmt))
        served_by = "primary"
        replica = None
        if is_read and consistency in ("replica", "ryw") and not isinstance(
                statement, RangeStmt):
            replica = self._pick_replica(token)
            if replica is None:
                self.stats["primary_fallbacks"] += 1
                _obs.current().metrics.counter(
                    "server.primary_fallbacks").inc()
            else:
                served_by = f"replica:{replica.node_id}"
                self.stats["replica_reads"] += 1
                _obs.current().metrics.counter("server.replica_reads").inc()
        layer = self.layer(tenant)
        ranges = dict(connection.ranges)
        plan = self.config.plan
        target_db = replica.database if replica is not None else self.database

        def closure(_session: Any) -> Tuple[Any, Dict[str, str], int]:
            # The interpreter session commits DML/DDL under the
            # manager's serialization lock (the documented mixing
            # rule); reads ride the layer's read-only certification.
            interpreter = Session(target_db, plan=plan, ranges=ranges)
            result = interpreter.execute_statement(statement)
            return result, interpreter.ranges, len(self.database.log)

        result, new_ranges, log_len = await loop.run_in_executor(
            self._executor,
            lambda: layer.run(closure, deadline=deadline))
        connection.ranges = new_ranges
        reply_token = (replica.applied_seq if replica is not None
                       else log_len)
        await self._stream_result(connection, request_id, result,
                                  deadline, reply_token, served_by)

    def _pick_replica(self, token: Optional[int]) -> Optional[Any]:
        """A healthy replica caught up past *token*, else ``None``.

        Eligibility is the read-your-writes gate of
        :meth:`Replica.read <repro.replication.replica.Replica.read>`:
        not degraded, not diverged, applied at least the token.  The
        caller falls back to the primary rather than surface a
        :class:`~repro.errors.ReplicaLagging` the client would only
        retry into the same lag.
        """
        for replica in self.replicas:
            health = replica.health()
            if health["degraded"] or health["diverged"]:
                continue
            if token is not None and health["applied_seq"] < token:
                continue
            return replica
        return None

    async def _stream_result(self, connection: _Connection,
                             request_id: int, result: Any,
                             deadline: Optional[float],
                             token: Optional[int],
                             served_by: str) -> None:
        columns, wire_rows = protocol.rows_to_wire(result)
        commit_time = None
        if result is not None and not wire_rows and not columns:
            # DML/DDL return the commit instant, not a relation.
            commit_time = str(result)
        chunk_size = self.config.chunk_rows
        chunks = 0
        for start in range(0, len(wire_rows), chunk_size):
            chunk = wire_rows[start:start + chunk_size]
            sent = await self._reply(
                connection,
                protocol.rows_reply(request_id, chunks, chunk,
                                    columns=columns if chunks == 0
                                    else None),
                deadline)
            if not sent:
                return  # expired or connection gone: stop streaming
            chunks += 1
            self.stats["rows_sent"] += len(chunk)
        sent = await self._reply(
            connection,
            protocol.done_reply(request_id, row_count=len(wire_rows),
                                chunks=chunks, token=token,
                                commit_time=commit_time,
                                served_by=served_by),
            deadline)
        if sent:
            self.stats["replies"] += 1
            obs = _obs.current()
            obs.metrics.counter("server.replies").inc()
            obs.events.emit("server.reply", connection=connection.id,
                            request=request_id, rows=len(wire_rows),
                            chunks=chunks, served_by=served_by)

    # -- the socket seam ------------------------------------------------------

    async def _reply(self, connection: _Connection, data: bytes,
                     deadline: Optional[float]) -> bool:
        """Write one reply frame, honoring deadline and backpressure.

        Returns ``False`` without writing when the deadline has passed
        (the late-reply suppression contract) or the connection is
        gone.  A write that stalls past ``write_stall_timeout`` marks
        the client slow and aborts the connection.
        """
        if connection.closed:
            return False
        async with connection.write_lock:
            if connection.closed:
                return False
            if deadline is not None and self._clock() >= deadline:
                self.stats["late_suppressed"] += 1
                _obs.current().metrics.counter(
                    "server.late_suppressed").inc()
                return False
            try:
                connection.writer.write(data)
                await asyncio.wait_for(
                    connection.writer.drain(),
                    timeout=self.config.write_stall_timeout)
            except asyncio.TimeoutError:
                self.stats["slow_client_aborts"] += 1
                obs = _obs.current()
                obs.metrics.counter("server.slow_client_aborts").inc()
                obs.events.emit("server.slow_client",
                                connection=connection.id,
                                reason="write_stall")
                self._close_connection(connection)
                return False
            except (ConnectionError, OSError):
                self._close_connection(connection)
                return False
            return True

    async def _say_goodbye(self, connection: _Connection,
                           reason: str) -> None:
        try:
            connection.writer.write(protocol.goodbye(reason))
            await asyncio.wait_for(connection.writer.drain(), timeout=0.5)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        self._close_connection(connection)

    def _close_connection(self, connection: _Connection) -> None:
        if connection.closed:
            return
        connection.closed = True
        try:
            connection.writer.close()
        except (ConnectionError, OSError):
            pass

    # -- drain ----------------------------------------------------------------

    def _drain_remaining(self) -> float:
        if self._drain_deadline is None:
            return self.config.retry_after
        return max(0.0, self._drain_deadline - self._clock())

    async def drain(self, grace: Optional[float] = None) -> Dict[str, int]:
        """Gracefully stop: no new work, finish in-flight, then abort.

        The SIGTERM path of ``repro serve``.  Stops accepting (TCP
        listener closed, new requests answered with retryable
        :class:`~repro.errors.DrainingError`), waits up to *grace*
        seconds for in-flight requests, cancels the stragglers (they
        answer with the same typed error), then closes every
        connection.  Returns the drain tally.
        """
        grace = self.config.drain_grace if grace is None else grace
        obs = _obs.current()
        self._draining = True
        self._drain_deadline = self._clock() + grace
        obs.events.emit("server.drain", phase="begin",
                        in_flight=self.in_flight, grace=grace)
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        while self.in_flight and self._clock() < self._drain_deadline:
            await asyncio.sleep(0.005)
        aborted = 0
        for connection in list(self._connections):
            for task in list(connection.tasks):
                if not task.done():
                    task.cancel()
                    aborted += 1
        if aborted:
            # Give the cancelled handlers one loop pass to send their
            # typed DrainingError before the sockets close.
            await asyncio.sleep(0)
            await asyncio.sleep(0.01)
        for connection in list(self._connections):
            await self._say_goodbye(connection, "drain complete")
        obs.events.emit("server.drain", phase="end", aborted=aborted)
        tally = {"aborted": aborted,
                 "completed": self.stats["replies"],
                 "rejected": self.stats["drain_rejected"]}
        return tally

    def shutdown(self) -> None:
        """Release the executor (call after :meth:`drain`)."""
        self._executor.shutdown(wait=False)

    # -- reporting ------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """The serving counters plus per-tenant admission snapshots."""
        tenants = {}
        for tenant, layer in self._layers.items():
            admission = layer.admission
            tenants[tenant] = {"max_active": admission.max_active,
                               "max_queue": admission.max_queue}
        return {"stats": dict(self.stats), "tenants": tenants,
                "replicas": [replica.health()
                             for replica in self.replicas]}

    def __repr__(self) -> str:
        state = "draining" if self._draining else "serving"
        return (f"ReproServer({state}, {len(self._connections)} "
                f"connection(s), {self.in_flight} in flight)")
