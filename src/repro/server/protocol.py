"""The serving wire format: framed requests, streamed replies, typed errors.

Every message between a client and the server is one framed line
(:mod:`repro.storage.framing`) under the serving tag ``s1`` — the same
length-prefix + CRC32 armor the journal and the replication stream
wear, so a mangled request is *detected and named*, never half-parsed.
The payload is a JSON object with a ``type`` field.

Client → server:

``query``
    One TQuel statement: ``id`` (the connection-local request id replies
    carry back), ``source``, optional ``budget_ms`` (the deadline,
    relative so clocks need not agree — the server pins it to its own
    monotonic clock on receipt), ``tenant`` (the admission-control
    scope), ``consistency`` (``primary`` | ``replica`` | ``ryw``) and
    ``token`` (the read-your-writes commit token a ``ryw`` read gates
    on).
``ping``
    A liveness probe; answered with ``pong`` (and it resets the idle
    timer, so pools can keep connections warm).

Server → client:

``rows``
    One bounded chunk of a retrieve's result: ``seq`` (0-based chunk
    number), ``rows`` (wire rows, see :func:`rows_to_wire`) and, on the
    first chunk, ``columns``.  Results stream — a million-row retrieve
    never materializes as one frame.
``done``
    The terminal frame of a successful request: total ``row_count`` and
    ``chunks``, the ``token`` (read-your-writes commit token after a
    write; reads echo the token they were served at), ``commit_time``
    (DML/DDL), and ``served_by`` (``primary`` or ``replica:<node>``).
``error``
    The terminal frame of a failed request: the typed error object of
    :func:`encode_error`, which :func:`decode_error` maps back to the
    *same* :class:`~repro.errors.ReproError` subclass, triage bit and
    detail fields intact.
``pong``
    The ``ping`` answer.
``goodbye``
    A connection-level notice sent before the server closes the
    connection deliberately (idle timeout, drain completion, slow
    client) — so a well-behaved client can tell policy from crash.

A reply frame is only ever sent *before* the request's deadline; a
request whose deadline passed gets silence (the client owns its own
deadline and will have moved on — a late reply is wasted bytes at best
and a correctness hazard at worst).  See docs/SERVING.md.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

import repro.errors as _errors
from repro.errors import ProtocolError, RemoteError, ReproError
from repro.storage.framing import FrameError, frame, parse_frame
from repro.storage.serializer import decode_value, encode_value

#: Frame tag of serving protocol messages.
SERVING_TAG = "s1"

#: Hard ceiling on one frame line (header + payload), bytes.  A frame
#: whose *declared* length exceeds this is refused before any buffering
#: decision is made on its behalf.
MAX_FRAME_BYTES = 1 << 20

#: The request consistency modes a query may ask for.
CONSISTENCY_MODES = ("primary", "replica", "ryw")


def encode_message(message: Dict[str, Any]) -> bytes:
    """Frame one protocol message as one line of UTF-8 bytes."""
    line = frame(json.dumps(message, sort_keys=True, ensure_ascii=False),
                 tag=SERVING_TAG)
    return line.encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one framed line; raises :class:`~repro.errors.ProtocolError`
    naming the damage on anything malformed.

    Frame-level failures (torn, bad CRC, oversized declared length,
    garbage) all map to ``ProtocolError`` — at the serving layer a
    "torn" line is not a crash residue to truncate but a peer that sent
    a length prefix its payload does not honor.
    """
    try:
        text = line.decode("utf-8").rstrip("\r\n")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    if not text:
        raise ProtocolError("empty frame line")
    declared = _declared_length(text)
    if declared is not None and declared > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame declares {declared} payload bytes, the protocol "
            f"ceiling is {MAX_FRAME_BYTES}")
    try:
        message = parse_frame(text, tag=SERVING_TAG)
    except FrameError as exc:
        raise ProtocolError(f"bad frame ({exc.damage.value}): {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame payload is not a typed message object")
    return message


def _declared_length(text: str) -> Optional[int]:
    """The length prefix of a plausible ``s1`` frame header, if any."""
    parts = text.split(" ", 2)
    if len(parts) >= 2 and parts[0] == SERVING_TAG and parts[1].isdigit():
        return int(parts[1])
    return None


def parse_request(line: bytes) -> Dict[str, Any]:
    """Decode and validate one client request frame.

    Beyond :func:`decode_message`, enforces the request schema: a known
    ``type``, an integer ``id``, a string ``source`` for queries, and a
    known ``consistency`` mode.  Every violation is a typed
    :class:`~repro.errors.ProtocolError` carrying the offending field.
    """
    message = decode_message(line)
    kind = message.get("type")
    if kind not in ("query", "ping"):
        raise ProtocolError(f"unknown request type {kind!r}")
    request_id = message.get("id")
    if not isinstance(request_id, int):
        raise ProtocolError(f"request id must be an integer, "
                            f"got {request_id!r}")
    if kind == "query":
        if not isinstance(message.get("source"), str):
            raise ProtocolError("query carries no TQuel source string")
        budget = message.get("budget_ms")
        if budget is not None and (not isinstance(budget, (int, float))
                                   or budget <= 0):
            raise ProtocolError(f"budget_ms must be a positive number, "
                                f"got {budget!r}")
        consistency = message.get("consistency", "primary")
        if consistency not in CONSISTENCY_MODES:
            raise ProtocolError(
                f"unknown consistency {consistency!r} "
                f"(modes: {', '.join(CONSISTENCY_MODES)})")
        token = message.get("token")
        if token is not None and not isinstance(token, int):
            raise ProtocolError(f"token must be an integer, got {token!r}")
    return message


# ---------------------------------------------------------------------------
# Request builders (the client's side of the conversation)
# ---------------------------------------------------------------------------

def query_request(request_id: int, source: str,
                  budget_ms: Optional[float] = None,
                  tenant: str = "default",
                  consistency: str = "primary",
                  token: Optional[int] = None) -> bytes:
    """One TQuel statement with its deadline budget and routing hints."""
    message: Dict[str, Any] = {"type": "query", "id": request_id,
                               "source": source, "tenant": tenant,
                               "consistency": consistency}
    if budget_ms is not None:
        message["budget_ms"] = budget_ms
    if token is not None:
        message["token"] = token
    return encode_message(message)


def ping_request(request_id: int) -> bytes:
    """A liveness probe (also resets the server's idle timer)."""
    return encode_message({"type": "ping", "id": request_id})


# ---------------------------------------------------------------------------
# Reply builders (the server's side)
# ---------------------------------------------------------------------------

def rows_reply(request_id: int, seq: int, rows: List[Dict[str, Any]],
               columns: Optional[List[str]] = None) -> bytes:
    """One bounded chunk of result rows."""
    message: Dict[str, Any] = {"type": "rows", "id": request_id,
                               "seq": seq, "rows": rows}
    if columns is not None:
        message["columns"] = columns
    return encode_message(message)


def done_reply(request_id: int, row_count: int, chunks: int,
               token: Optional[int] = None,
               commit_time: Optional[str] = None,
               served_by: str = "primary") -> bytes:
    """The terminal success frame."""
    return encode_message({"type": "done", "id": request_id,
                           "row_count": row_count, "chunks": chunks,
                           "token": token, "commit_time": commit_time,
                           "served_by": served_by})


def error_reply(request_id: Optional[int], error: ReproError) -> bytes:
    """The terminal failure frame (typed; round-trips the error)."""
    return encode_message({"type": "error", "id": request_id,
                           "error": encode_error(error)})


def pong_reply(request_id: int) -> bytes:
    """The ``ping`` answer."""
    return encode_message({"type": "pong", "id": request_id})


def goodbye(reason: str) -> bytes:
    """A deliberate-close notice (idle timeout, drain, slow client)."""
    return encode_message({"type": "goodbye", "reason": reason})


# ---------------------------------------------------------------------------
# Typed error round-tripping
# ---------------------------------------------------------------------------

#: Detail attributes that travel with an error, when the instance has
#: them: the triage evidence (back-pressure hints, conflict sets,
#: read-your-writes positions, chain damage kind, source locations).
_DETAIL_FIELDS = ("retry_after", "relations", "token", "applied", "kind",
                  "line", "column", "queued", "active")


def _error_registry() -> Dict[str, type]:
    """Every :class:`ReproError` subclass, by name.

    Walked from the live class tree rather than a hand-kept table, so a
    new error type added anywhere in the library round-trips through
    the wire without this module changing.
    """
    registry: Dict[str, type] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        registry[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return registry


def encode_error(error: ReproError) -> Dict[str, Any]:
    """The wire form of a typed error: name, message, triage, details."""
    details: Dict[str, Any] = {}
    for field in _DETAIL_FIELDS:
        value = getattr(error, field, None)
        if value is not None:
            if isinstance(value, tuple):
                value = list(value)
            details[field] = value
    encoded: Dict[str, Any] = {
        "name": type(error).__name__,
        "message": str(error),
        "retryable": bool(error.retryable),
    }
    if details:
        encoded["details"] = details
    return encoded


def decode_error(data: Dict[str, Any]) -> ReproError:
    """Rebuild the typed error an ``error`` frame carries.

    The result is an instance of the *same* class that was raised on
    the server (so ``except ConflictError`` works across the wire),
    with the detail attributes restored.  A name this build does not
    know becomes :class:`~repro.errors.RemoteError` with the wire's
    triage bit — unknown errors still retry correctly.
    """
    name = data.get("name", "ReproError")
    message = data.get("message", "remote error")
    retryable = bool(data.get("retryable", False))
    details = data.get("details") or {}
    cls = _error_registry().get(name)
    if cls is None:
        return RemoteError(message, type_name=name, retryable=retryable)
    # Every ReproError subclass is constructible from the message alone
    # (extra constructor arguments all default); details are restored as
    # attributes afterwards so double-suffixing constructors (TQuel's
    # location formatting) never mangle the round-tripped message.
    try:
        error = cls(message)
    except TypeError:
        return RemoteError(message, type_name=name, retryable=retryable)
    for field, value in details.items():
        if field == "relations" and isinstance(value, list):
            value = tuple(value)
        setattr(error, field, value)
    if retryable != bool(cls.retryable):
        # The class's own triage bit wins for known types; flag the
        # disagreement rather than silently trusting the wire.
        error.retryable = retryable
    return error


_ERRORS_MODULE = _errors  # keeps the import referenced (registry walks it)


# ---------------------------------------------------------------------------
# Result rows on the wire
# ---------------------------------------------------------------------------

def rows_to_wire(result: Any) -> Tuple[List[str], List[Dict[str, Any]]]:
    """Flatten a retrieve result into ``(columns, wire rows)``.

    Handles all three relation kinds: static rows carry ``values``
    only, historical rows add ``valid``, temporal rows add
    ``transaction`` — using the storage layer's tagged value encoding
    so instants and periods survive JSON.
    """
    if result is None:
        return [], []
    schema = getattr(result, "schema", None)
    columns = list(schema.names) if schema is not None else []
    wire: List[Dict[str, Any]] = []
    for row in _iter_rows(result):
        entry: Dict[str, Any] = {}
        data = getattr(row, "data", row)
        entry["values"] = {name: encode_value(value)
                           for name, value in dict(data).items()}
        valid = getattr(row, "valid", None)
        if valid is not None:
            entry["valid"] = encode_value(valid)
        transaction = getattr(row, "transaction", None)
        if transaction is not None:
            entry["transaction"] = encode_value(transaction)
        wire.append(entry)
    return columns, wire


def _iter_rows(result: Any) -> Iterable[Any]:
    rows = getattr(result, "rows", None)
    if rows is not None and not callable(rows):
        return rows
    try:
        return list(result)
    except TypeError:
        return []


def rows_from_wire(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Decode wire rows back into plain dicts with real time values."""
    decoded = []
    for row in rows:
        entry: Dict[str, Any] = {
            "values": {name: decode_value(value)
                       for name, value in row.get("values", {}).items()}}
        if "valid" in row:
            entry["valid"] = decode_value(row["valid"])
        if "transaction" in row:
            entry["transaction"] = decode_value(row["transaction"])
        decoded.append(entry)
    return decoded
