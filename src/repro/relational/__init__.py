"""The relational substrate: a from-scratch, in-memory relational engine.

The paper's four database kinds are all built over ordinary relations
("a collection of relations; each relation consists of a set of tuples
with the same set of attributes", §4.1).  This package supplies that
foundation:

- :mod:`~repro.relational.domain` — value domains, including the paper's
  *user-defined time* domains (stored and formatted, never interpreted);
- :mod:`~repro.relational.schema` — attributes and schemas with keys;
- :mod:`~repro.relational.tuple` — immutable, schema-checked tuples;
- :mod:`~repro.relational.expression` — the scalar/predicate expression
  AST shared by the algebra and by TQuel ``where`` clauses;
- :mod:`~repro.relational.relation` — relations with the full relational
  algebra (select, project, join, union, difference, product, rename);
- :mod:`~repro.relational.aggregate` — aggregation and grouping;
- :mod:`~repro.relational.index` — hash and ordered secondary indexes;
- :mod:`~repro.relational.constraints` — key / not-null / check constraints;
- :mod:`~repro.relational.catalog` — the named-relation catalog.
"""

from repro.relational.domain import Domain
from repro.relational.schema import Attribute, Schema
from repro.relational.tuple import Tuple
from repro.relational.relation import Relation
from repro.relational.expression import (
    And, AttrRef, BinaryOp, Comparison, Const, Expression, Not, Or, attr, const,
)
from repro.relational.catalog import Catalog
from repro.relational.constraints import (
    CheckConstraint, Constraint, KeyConstraint, NotNullConstraint,
)

__all__ = [
    "And",
    "AttrRef",
    "Attribute",
    "BinaryOp",
    "Catalog",
    "CheckConstraint",
    "Comparison",
    "Const",
    "Constraint",
    "Domain",
    "Expression",
    "KeyConstraint",
    "Not",
    "NotNullConstraint",
    "Or",
    "Relation",
    "Schema",
    "Tuple",
    "attr",
    "const",
]
