"""Secondary indexes: hash (equality) and ordered (range).

The database kinds keep their current state in plain relations; these
indexes accelerate the two access paths that dominate temporal workloads:

- equality lookup on a key or name attribute (``where f.name = "Merrie"``),
  served by :class:`HashIndex`;
- range / as-of lookup on a timestamp attribute (``as of "12/10/82"``),
  served by :class:`OrderedIndex` via bisection.

Indexes are built over an immutable :class:`~repro.relational.relation.
Relation` snapshot; the mutable databases rebuild or incrementally update
them on commit.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from repro.errors import UnknownAttributeError
from repro.relational.relation import Relation
from repro.relational.tuple import Tuple


class HashIndex:
    """Equality index on one or more attributes."""

    def __init__(self, relation: Relation, attributes: Sequence[str]) -> None:
        for name in attributes:
            relation.schema.attribute(name)
        self._attributes = tuple(attributes)
        self._buckets: Dict[PyTuple[Any, ...], List[Tuple]] = {}
        for row in relation:
            self._buckets.setdefault(self._key_of(row), []).append(row)

    def _key_of(self, row: Tuple) -> PyTuple[Any, ...]:
        return tuple(row[name] for name in self._attributes)

    @property
    def attributes(self) -> PyTuple[str, ...]:
        """The indexed attribute names."""
        return self._attributes

    def lookup(self, *values: Any) -> List[Tuple]:
        """The tuples whose indexed attributes equal *values*."""
        if len(values) != len(self._attributes):
            raise UnknownAttributeError(
                f"index on {self._attributes} takes {len(self._attributes)} "
                f"values, got {len(values)}"
            )
        return list(self._buckets.get(tuple(values), ()))

    def contains(self, *values: Any) -> bool:
        """True if at least one tuple matches."""
        return bool(self.lookup(*values))

    def distinct_keys(self) -> Iterator[PyTuple[Any, ...]]:
        """Every distinct indexed key."""
        return iter(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class OrderedIndex:
    """Ordered index on one attribute, supporting range and as-of scans.

    Values must be mutually comparable (e.g. all
    :class:`~repro.time.instant.Instant` at one granularity).  ``None``
    values are excluded from the index.
    """

    def __init__(self, relation: Relation, attribute: str) -> None:
        relation.schema.attribute(attribute)
        self._attribute = attribute
        pairs = sorted(
            ((row[attribute], position)
             for position, row in enumerate(relation)
             if row[attribute] is not None),
            key=lambda pair: pair[0],
        )
        self._keys = [key for key, _ in pairs]
        self._rows: List[Tuple] = [relation.tuples[position] for _, position in pairs]

    @property
    def attribute(self) -> str:
        """The indexed attribute name."""
        return self._attribute

    def range(self, low: Optional[Any] = None, high: Optional[Any] = None,
              inclusive_high: bool = False) -> List[Tuple]:
        """Tuples with ``low <= value < high`` (or ``<= high`` if inclusive)."""
        start = 0 if low is None else bisect.bisect_left(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif inclusive_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return self._rows[start:stop]

    def at_most(self, value: Any) -> List[Tuple]:
        """Tuples with indexed value ``<= value`` — the as-of scan."""
        return self.range(None, value, inclusive_high=True)

    def first(self) -> Optional[Tuple]:
        """The tuple with the smallest indexed value, or ``None``."""
        return self._rows[0] if self._rows else None

    def last(self) -> Optional[Tuple]:
        """The tuple with the largest indexed value, or ``None``."""
        return self._rows[-1] if self._rows else None

    def __len__(self) -> int:
        return len(self._rows)
