"""Value domains for relation attributes.

A :class:`Domain` names a set of legal values together with input
(:meth:`Domain.parse`) and output (:meth:`Domain.format`) functions.  The
built-in domains cover strings, integers, floats, booleans and calendar
dates.

The paper's third kind of time, **user-defined time** (§4.5), is realized
here: :meth:`Domain.user_defined_time` builds a date-valued domain that the
DBMS stores, parses and prints but never interprets — "all that is needed
is an internal representation and input and output functions".  Unlike
transaction and valid time, attributes of such a domain appear *in* the
relation schema, exactly as the paper prescribes (the ``effective date``
column of Figure 9).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import DomainError
from repro.time.chronon import Granularity
from repro.time.instant import Instant


class Domain:
    """A named value domain with a membership test and I/O functions.

    Instances are immutable.  Use the class attributes ``Domain.STRING``,
    ``Domain.INTEGER``, ``Domain.FLOAT``, ``Domain.BOOLEAN``,
    ``Domain.DATE`` for the built-ins, or the factory methods for
    enumerations and user-defined time.
    """

    __slots__ = ("_name", "_validate", "_parse", "_format", "_is_time",
                 "_enum_values")

    # Populated below, after the class body.
    STRING: "Domain"
    INTEGER: "Domain"
    FLOAT: "Domain"
    BOOLEAN: "Domain"
    DATE: "Domain"
    ANY: "Domain"

    def __init__(self, name: str,
                 validate: Callable[[Any], bool],
                 parse: Optional[Callable[[str], Any]] = None,
                 format: Optional[Callable[[Any], str]] = None,
                 is_time: bool = False) -> None:
        self._name = name
        self._validate = validate
        self._parse = parse
        self._format = format
        self._is_time = is_time
        self._enum_values: Optional[tuple] = None

    # -- factories -----------------------------------------------------------

    @classmethod
    def enumeration(cls, name: str, *values: str) -> "Domain":
        """A domain of a fixed set of string values (e.g. faculty ranks)."""
        allowed = frozenset(values)

        def check(value: Any) -> bool:
            return value in allowed

        def parse(text: str) -> str:
            if text not in allowed:
                raise DomainError(
                    f"{text!r} is not one of {sorted(allowed)} (domain {name})"
                )
            return text

        domain = cls(name, check, parse, str)
        domain._enum_values = tuple(values)
        return domain

    @classmethod
    def user_defined_time(cls, name: str = "user-defined time",
                          granularity: Granularity = Granularity.DAY) -> "Domain":
        """The paper's user-defined time: a date the DBMS never interprets.

        Values are :class:`~repro.time.instant.Instant`\\ s; the DBMS provides
        representation and I/O only.  No temporal operator (``when``,
        ``as of``, rollback, coalescing) ever touches these values — they are
        ordinary column data with a calendar-aware printer.
        """

        def check(value: Any) -> bool:
            return isinstance(value, Instant)

        def parse(text: str) -> Instant:
            return Instant.parse(text, granularity)

        def render(value: Instant) -> str:
            return value.paper_format()

        return cls(name, check, parse, render, is_time=True)

    # -- accessors -------------------------------------------------------------

    @property
    def name(self) -> str:
        """The domain's name, used in error messages and schema printing."""
        return self._name

    @property
    def is_user_defined_time(self) -> bool:
        """True for domains built by :meth:`user_defined_time`."""
        return self._is_time

    @property
    def enum_values(self) -> Optional[tuple]:
        """The allowed values for enumeration domains, else ``None``."""
        return self._enum_values

    # -- operations --------------------------------------------------------------

    def contains(self, value: Any) -> bool:
        """Membership test; ``None`` is handled by nullability, not domains."""
        return self._validate(value)

    def check(self, value: Any, attribute: str = "?") -> Any:
        """Validate and return *value*, raising :class:`DomainError` if illegal."""
        if not self._validate(value):
            raise DomainError(
                f"value {value!r} is not in domain {self._name} "
                f"(attribute {attribute})"
            )
        return value

    def parse(self, text: str) -> Any:
        """Convert an external literal to a domain value."""
        if self._parse is None:
            raise DomainError(f"domain {self._name} has no input function")
        return self._parse(text)

    def format(self, value: Any) -> str:
        """Render a domain value for display."""
        if self._format is None:
            return str(value)
        return self._format(value)

    # -- dunder --------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._name == other._name and self._is_time == other._is_time

    def __hash__(self) -> int:
        return hash((self._name, self._is_time))

    def __repr__(self) -> str:
        return f"Domain({self._name!r})"


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_float(value: Any) -> bool:
    return (isinstance(value, float)
            or (isinstance(value, int) and not isinstance(value, bool)))


def _parse_int(text: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise DomainError(f"{text!r} is not an integer") from exc


def _parse_float(text: str) -> float:
    try:
        return float(text)
    except ValueError as exc:
        raise DomainError(f"{text!r} is not a number") from exc


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "t", "yes", "1"):
        return True
    if lowered in ("false", "f", "no", "0"):
        return False
    raise DomainError(f"{text!r} is not a boolean")


Domain.STRING = Domain("string", lambda v: isinstance(v, str), str, str)
Domain.INTEGER = Domain("integer", _is_int, _parse_int, str)
Domain.FLOAT = Domain("float", _is_float, _parse_float, str)
Domain.BOOLEAN = Domain("boolean", lambda v: isinstance(v, bool), _parse_bool, str)
Domain.DATE = Domain("date", lambda v: isinstance(v, Instant),
                     Instant.parse, lambda v: v.isoformat())
# The permissive domain used for derived attributes whose type cannot be
# inferred statically (e.g. computed TQuel targets).
Domain.ANY = Domain("any", lambda v: True, str, str)
