"""Scalar and predicate expressions.

This is the expression AST shared by the relational algebra (selection
predicates) and by TQuel ``where`` clauses.  Expressions are built either
by the TQuel parser or fluently in Python::

    from repro.relational import attr, const
    predicate = (attr("f", "name") == const("Merrie")) & (attr("f", "rank") != const("full"))

Evaluation happens against an :class:`Environment`: a mapping from range-
variable name to :class:`~repro.relational.tuple.Tuple`.  Unqualified
references (``attr("rank")``) resolve against the distinguished variable
``None``, which the algebra binds to "the current tuple".

Null semantics are two-valued and conservative: any comparison or
arithmetic involving ``None`` is false/None, and :class:`IsNull` exists to
test for nulls explicitly.  (The paper predates SQL's three-valued logic;
two-valued nulls keep the semantics of the four database kinds crisp.)

Note on operator overloading: ``==`` on an expression *builds* a
:class:`Comparison` node rather than comparing ASTs.  Structural identity,
where needed (parser round-trip tests), uses canonical ``repr`` equality.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional, Tuple as PyTuple, Union

from repro.errors import ExpressionError, UnknownAttributeError
from repro.relational.tuple import Tuple

#: An evaluation environment: range-variable name -> tuple.  The key ``None``
#: holds the implicit "current tuple" used by unqualified references.
Environment = Mapping[Optional[str], Tuple]

#: ``(variable, attribute)`` pairs reported by :meth:`Expression.references`.
Reference = PyTuple[Optional[str], str]


def _env_of(binding: Union[Environment, Tuple]) -> Environment:
    """Accept either a full environment or a bare tuple (bound to ``None``)."""
    if isinstance(binding, Tuple):
        return {None: binding}
    return binding


class Expression(abc.ABC):
    """Base class of all expression nodes; also the fluent builder."""

    @abc.abstractmethod
    def evaluate(self, env: Union[Environment, Tuple]) -> Any:
        """Evaluate under an environment (or a bare tuple)."""

    @abc.abstractmethod
    def references(self) -> FrozenSet[Reference]:
        """Every ``(variable, attribute)`` this expression reads."""

    @abc.abstractmethod
    def __repr__(self) -> str:
        """Canonical rendering; used as structural identity in tests."""

    # -- fluent builders -------------------------------------------------------

    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, _lift(other))

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("!=", self, _lift(other))

    def __lt__(self, other: object) -> "Comparison":
        return Comparison("<", self, _lift(other))

    def __le__(self, other: object) -> "Comparison":
        return Comparison("<=", self, _lift(other))

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(">", self, _lift(other))

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(">=", self, _lift(other))

    def __and__(self, other: "Expression") -> "And":
        return And(self, _lift(other))

    def __or__(self, other: "Expression") -> "Or":
        return Or(self, _lift(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __add__(self, other: object) -> "BinaryOp":
        return BinaryOp("+", self, _lift(other))

    def __sub__(self, other: object) -> "BinaryOp":
        return BinaryOp("-", self, _lift(other))

    def __mul__(self, other: object) -> "BinaryOp":
        return BinaryOp("*", self, _lift(other))

    def __truediv__(self, other: object) -> "BinaryOp":
        return BinaryOp("/", self, _lift(other))

    def is_null(self) -> "IsNull":
        """Build an explicit null test."""
        return IsNull(self)

    __hash__ = None  # type: ignore[assignment]  # == builds nodes; not hashable


def _lift(value: object) -> Expression:
    """Wrap a plain Python value as a :class:`Const`."""
    if isinstance(value, Expression):
        return value
    return Const(value)


class Const(Expression):
    """A literal value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, env: Union[Environment, Tuple]) -> Any:
        return self.value

    def references(self) -> FrozenSet[Reference]:
        return frozenset()

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class AttrRef(Expression):
    """A reference to an attribute, optionally qualified by a range variable.

    ``AttrRef("f", "rank")`` is TQuel's ``f.rank``; ``AttrRef(None, "rank")``
    is an unqualified reference resolved against the current tuple.
    """

    def __init__(self, variable: Optional[str], name: str) -> None:
        self.variable = variable
        self.name = name

    def evaluate(self, env: Union[Environment, Tuple]) -> Any:
        bindings = _env_of(env)
        try:
            bound = bindings[self.variable]
        except KeyError:
            label = self.variable if self.variable is not None else "<current>"
            raise ExpressionError(
                f"range variable {label!r} is not bound"
            ) from None
        try:
            return bound[self.name]
        except UnknownAttributeError as exc:
            raise ExpressionError(str(exc)) from None

    def references(self) -> FrozenSet[Reference]:
        return frozenset({(self.variable, self.name)})

    def __repr__(self) -> str:
        if self.variable is None:
            return f"AttrRef({self.name})"
        return f"AttrRef({self.variable}.{self.name})"


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Expression):
    """A binary comparison. Comparisons involving ``None`` are false."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Union[Environment, Tuple]) -> bool:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return False
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from exc

    def references(self) -> FrozenSet[Reference]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_ARITHMETIC: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


class BinaryOp(Expression):
    """Arithmetic (and string concatenation via ``+``); null-propagating."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Union[Environment, Tuple]) -> Any:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if left is None or right is None:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(
                f"cannot compute {left!r} {self.op} {right!r}: {exc}"
            ) from exc

    def references(self) -> FrozenSet[Reference]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    """Logical conjunction (short-circuiting)."""

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def evaluate(self, env: Union[Environment, Tuple]) -> bool:
        return bool(self.left.evaluate(env)) and bool(self.right.evaluate(env))

    def references(self) -> FrozenSet[Reference]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


class Or(Expression):
    """Logical disjunction (short-circuiting)."""

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def evaluate(self, env: Union[Environment, Tuple]) -> bool:
        return bool(self.left.evaluate(env)) or bool(self.right.evaluate(env))

    def references(self) -> FrozenSet[Reference]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


class Not(Expression):
    """Logical negation."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, env: Union[Environment, Tuple]) -> bool:
        return not self.operand.evaluate(env)

    def references(self) -> FrozenSet[Reference]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


class IsNull(Expression):
    """Explicit null test (``None`` never compares equal via ``=``)."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, env: Union[Environment, Tuple]) -> bool:
        return self.operand.evaluate(env) is None

    def references(self) -> FrozenSet[Reference]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"({self.operand!r} is null)"


TRUE = Const(True)
FALSE = Const(False)


def attr(variable_or_name: str, name: Optional[str] = None) -> AttrRef:
    """Build an attribute reference.

    ``attr("rank")`` is unqualified; ``attr("f", "rank")`` is ``f.rank``.
    """
    if name is None:
        return AttrRef(None, variable_or_name)
    return AttrRef(variable_or_name, name)


def const(value: Any) -> Const:
    """Build a literal node."""
    return Const(value)
