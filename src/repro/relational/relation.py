"""Relations and the relational algebra.

A :class:`Relation` is an immutable set of
:class:`~repro.relational.tuple.Tuple`\\ s over one
:class:`~repro.relational.schema.Schema` — the paper's "2-dimensional
table" (Figure 2).  All algebra operations (:meth:`select`,
:meth:`project`, :meth:`join`, :meth:`union`, ...) return new relations;
mutation lives in the database kinds of :mod:`repro.core`, which is what
lets a *static rollback* database hand out past states that cannot be
altered.

Duplicate tuples are eliminated (set semantics) but first-insertion order
is preserved for stable printing, so reproduced figures come out in the
paper's row order.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple as PyTuple, Union)

from repro.errors import SchemaError
from repro.relational.expression import Environment, Expression
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple

Predicate = Union[Expression, Callable[[Tuple], bool]]


def _as_callable(predicate: Predicate) -> Callable[[Tuple], bool]:
    if isinstance(predicate, Expression):
        return lambda row: bool(predicate.evaluate(row))
    return predicate


class Relation:
    """An immutable relation: a schema plus a duplicate-free set of tuples."""

    __slots__ = ("_schema", "_tuples", "_tuple_set")

    def __init__(self, schema: Schema, tuples: Iterable[Tuple] = ()) -> None:
        self._schema = schema
        deduped: Dict[Tuple, None] = {}
        for row in tuples:
            if row.schema.names != schema.names:
                raise SchemaError(
                    f"tuple attributes {row.schema.names} do not match "
                    f"relation schema {schema.names}"
                )
            deduped.setdefault(row, None)
        self._tuples: PyTuple[Tuple, ...] = tuple(deduped)
        self._tuple_set = frozenset(self._tuples)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema,
                  rows: Iterable[Union[Mapping[str, Any], Sequence[Any]]]) -> "Relation":
        """Build from dicts or positional sequences of raw values."""
        built: List[Tuple] = []
        for row in rows:
            if isinstance(row, Mapping):
                built.append(Tuple(schema, row))
            else:
                built.append(Tuple.from_sequence(schema, row))
        return cls(schema, built)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        """The empty relation over *schema* (the paper's "null relation")."""
        return cls(schema)

    # -- accessors -----------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def tuples(self) -> PyTuple[Tuple, ...]:
        """The tuples, in first-insertion order."""
        return self._tuples

    @property
    def cardinality(self) -> int:
        """The number of tuples."""
        return len(self._tuples)

    @property
    def is_empty(self) -> bool:
        """True if the relation has no tuples."""
        return not self._tuples

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The tuples as plain dictionaries (for display / serialization)."""
        return [dict(row) for row in self._tuples]

    def column(self, name: str) -> List[Any]:
        """All values of one attribute, in tuple order."""
        self._schema.attribute(name)
        return [row[name] for row in self._tuples]

    # -- point updates (functional) ---------------------------------------------------

    def with_tuple(self, row: Tuple) -> "Relation":
        """This relation plus one tuple."""
        return Relation(self._schema, self._tuples + (row,))

    def without_tuple(self, row: Tuple) -> "Relation":
        """This relation minus one tuple (no error if absent)."""
        return Relation(self._schema, (t for t in self._tuples if t != row))

    def insert_values(self, **values: Any) -> "Relation":
        """Convenience: this relation plus ``Tuple(schema, values)``."""
        return self.with_tuple(Tuple(self._schema, values))

    # -- relational algebra ---------------------------------------------------------------

    def select(self, predicate: Predicate) -> "Relation":
        """σ — the tuples satisfying *predicate* (expression or callable)."""
        test = _as_callable(predicate)
        return Relation(self._schema, (row for row in self._tuples if test(row)))

    def project(self, names: Sequence[str]) -> "Relation":
        """π — restrict to *names*; duplicates collapse (set semantics)."""
        projected_schema = self._schema.project(names)
        return Relation(projected_schema,
                        (row.project(names) for row in self._tuples))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """ρ — rename attributes per *mapping*."""
        renamed_schema = self._schema.rename(mapping)
        return Relation(renamed_schema,
                        (row.cast(renamed_schema) for row in self._tuples))

    def union(self, other: "Relation") -> "Relation":
        """∪ — requires identical attribute names."""
        self._check_compatible(other, "union")
        return Relation(self._schema, self._tuples + other._tuples)

    def difference(self, other: "Relation") -> "Relation":
        """− — tuples of self not in other."""
        self._check_compatible(other, "difference")
        return Relation(self._schema,
                        (row for row in self._tuples
                         if row not in other._tuple_set))

    def intersect(self, other: "Relation") -> "Relation":
        """∩ — tuples in both."""
        self._check_compatible(other, "intersect")
        return Relation(self._schema,
                        (row for row in self._tuples if row in other._tuple_set))

    def product(self, other: "Relation", prefix_self: str = "",
                prefix_other: str = "") -> "Relation":
        """× — Cartesian product; colliding names need prefixes."""
        combined = self._schema.concat(other._schema, prefix_self, prefix_other)
        return Relation(combined,
                        (mine.concat(theirs, combined)
                         for mine in self._tuples for theirs in other._tuples))

    def theta_join(self, other: "Relation", predicate: Predicate,
                   prefix_self: str = "", prefix_other: str = "") -> "Relation":
        """⋈θ — product filtered by *predicate* over the combined tuples."""
        return self.product(other, prefix_self, prefix_other).select(predicate)

    def natural_join(self, other: "Relation") -> "Relation":
        """⋈ — equijoin on the shared attribute names.

        Shared attributes appear once in the result, self's attributes first.
        Implemented with a hash join on the common columns.
        """
        common = [name for name in self._schema.names if name in other._schema]
        other_only = [name for name in other._schema.names if name not in common]
        result_schema = Schema(
            tuple(self._schema.attributes)
            + tuple(other._schema.attribute(name) for name in other_only)
        )
        if not common:
            return Relation(result_schema,
                            (Tuple.from_sequence(result_schema,
                                                 mine.values + theirs.values)
                             for mine in self._tuples for theirs in other._tuples))
        buckets: Dict[PyTuple[Any, ...], List[Tuple]] = {}
        for theirs in other._tuples:
            buckets.setdefault(tuple(theirs[name] for name in common), []).append(theirs)
        joined: List[Tuple] = []
        for mine in self._tuples:
            for theirs in buckets.get(tuple(mine[name] for name in common), ()):
                values = mine.values + tuple(theirs[name] for name in other_only)
                joined.append(Tuple.from_sequence(result_schema, values))
        return Relation(result_schema, joined)

    def sort(self, names: Sequence[str], reverse: bool = False) -> "Relation":
        """This relation with tuples reordered by the given attributes."""
        for name in names:
            self._schema.attribute(name)
        ordered = sorted(self._tuples,
                         key=lambda row: tuple(row[name] for name in names),
                         reverse=reverse)
        return Relation(self._schema, ordered)

    def _check_compatible(self, other: "Relation", operation: str) -> None:
        if self._schema.names != other._schema.names:
            raise SchemaError(
                f"cannot {operation} relations with different attributes: "
                f"{self._schema.names} vs {other._schema.names}"
            )

    # -- display ----------------------------------------------------------------------------

    def pretty(self, title: Optional[str] = None) -> str:
        """Render as an ASCII table in the style of the paper's figures."""
        names = list(self._schema.names)
        columns: List[List[str]] = [[name] for name in names]
        for row in self._tuples:
            for column, name in zip(columns, names):
                column.append(self._schema.attribute(name).domain.format(row[name])
                              if row[name] is not None else "-")
        widths = [max(len(cell) for cell in column) for column in columns]
        def render_row(cells: Sequence[str]) -> str:
            return "| " + " | ".join(cell.ljust(width)
                                     for cell, width in zip(cells, widths)) + " |"
        separator = "+" + "+".join("-" * (width + 2) for width in widths) + "+"
        lines = []
        if title:
            lines.append(title)
        lines.append(separator)
        lines.append(render_row(names))
        lines.append(separator)
        for index in range(len(self._tuples)):
            lines.append(render_row([column[index + 1] for column in columns]))
        lines.append(separator)
        return "\n".join(lines)

    # -- dunder -------------------------------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, row: object) -> bool:
        return row in self._tuple_set

    def __eq__(self, other: object) -> bool:
        """Set equality over the same attribute names."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (self._schema.names == other._schema.names
                and self._tuple_set == other._tuple_set)

    def __hash__(self) -> int:
        return hash((self._schema.names, self._tuple_set))

    def __repr__(self) -> str:
        return (f"Relation({', '.join(self._schema.names)}; "
                f"{len(self._tuples)} tuples)")
