"""Integrity constraints.

The paper notes (§3) that DBMSs interpret application-dependent integrity
constraints automatically — one of its arguments against using
"application independence" to classify time.  This module provides the
constraint machinery the database kinds enforce on every update:

- :class:`KeyConstraint` — uniqueness over the schema key (snapshot
  uniqueness in static databases; the temporal kinds enforce it per
  snapshot of valid time, i.e. a *sequenced* key);
- :class:`NotNullConstraint` — redundant with non-nullable attributes but
  available as an explicit, named constraint;
- :class:`CheckConstraint` — an arbitrary predicate expression over each
  tuple.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Sequence, Set, Tuple as PyTuple

from repro.errors import ConstraintViolation
from repro.relational.expression import Expression
from repro.relational.relation import Relation
from repro.relational.tuple import Tuple


class Constraint(abc.ABC):
    """A named integrity rule checked against a candidate relation state."""

    def __init__(self, name: str) -> None:
        self.name = name

    @abc.abstractmethod
    def check(self, relation: Relation) -> None:
        """Raise :class:`ConstraintViolation` if *relation* violates the rule."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class KeyConstraint(Constraint):
    """No two tuples may agree on all key attributes."""

    def __init__(self, attributes: Sequence[str], name: str = "") -> None:
        self.attributes = tuple(attributes)
        super().__init__(name or f"key({', '.join(self.attributes)})")

    def check(self, relation: Relation) -> None:
        for attribute in self.attributes:
            relation.schema.attribute(attribute)
        seen: Set[PyTuple] = set()
        for row in relation:
            key = tuple(row[name] for name in self.attributes)
            if key in seen:
                raise ConstraintViolation(
                    f"duplicate key {key!r} violates {self.name}"
                )
            seen.add(key)


class NotNullConstraint(Constraint):
    """The given attributes may not be null."""

    def __init__(self, attributes: Sequence[str], name: str = "") -> None:
        self.attributes = tuple(attributes)
        super().__init__(name or f"not_null({', '.join(self.attributes)})")

    def check(self, relation: Relation) -> None:
        for row in relation:
            for attribute in self.attributes:
                if row[attribute] is None:
                    raise ConstraintViolation(
                        f"null in {attribute} violates {self.name}"
                    )


class CheckConstraint(Constraint):
    """Every tuple must satisfy an arbitrary predicate expression."""

    def __init__(self, predicate: Expression, name: str = "check") -> None:
        self.predicate = predicate
        super().__init__(name)

    def check(self, relation: Relation) -> None:
        for row in relation:
            if not self.predicate.evaluate(row):
                raise ConstraintViolation(
                    f"tuple {dict(row)!r} violates {self.name}"
                )


def check_all(relation: Relation, constraints: Iterable[Constraint]) -> None:
    """Check a candidate relation state against every constraint."""
    for constraint in constraints:
        constraint.check(relation)
