"""Immutable, schema-checked tuples.

A :class:`Tuple` binds a value to every attribute of a
:class:`~repro.relational.schema.Schema`.  Tuples are immutable and
hashable, so relations can be genuine sets; derived tuples are produced by
:meth:`Tuple.project`, :meth:`Tuple.replace` and :meth:`Tuple.concat`.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence, Tuple as PyTuple

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Schema


class Tuple(Mapping[str, Any]):
    """One row of a relation: an immutable mapping from attribute name to value.

    Values are validated against the schema's domains at construction, so a
    tuple that exists is well-typed by construction.
    """

    __slots__ = ("_schema", "_values", "_hash")

    def __init__(self, schema: Schema, values: Mapping[str, Any]) -> None:
        extra = set(values) - set(schema.names)
        if extra:
            raise SchemaError(
                f"values for unknown attributes: {', '.join(sorted(extra))}"
            )
        missing = [name for name in schema.names if name not in values]
        if missing:
            raise SchemaError(f"missing values for: {', '.join(missing)}")
        self._schema = schema
        self._values: PyTuple[Any, ...] = tuple(
            attribute.check(values[attribute.name]) for attribute in schema
        )
        self._hash = hash((schema.names, self._values))

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_sequence(cls, schema: Schema, values: Sequence[Any]) -> "Tuple":
        """Build from positional values in schema order."""
        if len(values) != len(schema):
            raise SchemaError(
                f"expected {len(schema)} values, got {len(values)}"
            )
        return cls(schema, dict(zip(schema.names, values)))

    # -- mapping protocol ---------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            index = self._schema.names.index(name)
        except ValueError:
            raise UnknownAttributeError(
                f"tuple has no attribute {name!r}; "
                f"schema has {', '.join(self._schema.names)}"
            ) from None
        return self._values[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __len__(self) -> int:
        return len(self._values)

    # -- accessors -------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema this tuple conforms to."""
        return self._schema

    @property
    def values(self) -> PyTuple[Any, ...]:
        """The values in schema order."""
        return self._values

    def key(self) -> PyTuple[Any, ...]:
        """The key values, per the schema's key."""
        return tuple(self[name] for name in self._schema.key)

    # -- derivation ---------------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Tuple":
        """The sub-tuple over *names*, against the projected schema."""
        projected_schema = self._schema.project(names)
        return Tuple(projected_schema, {name: self[name] for name in names})

    def replace(self, **updates: Any) -> "Tuple":
        """A copy with some attribute values replaced (schema-checked)."""
        merged = {name: self[name] for name in self._schema.names}
        merged.update(updates)
        return Tuple(self._schema, merged)

    def cast(self, schema: Schema) -> "Tuple":
        """Re-type this tuple against an equal-named schema (e.g. after rename)."""
        if len(schema) != len(self._values):
            raise SchemaError("cannot cast: attribute counts differ")
        return Tuple.from_sequence(schema, self._values)

    def concat(self, other: "Tuple", schema: Schema) -> "Tuple":
        """Concatenate with *other* under a precomputed combined schema."""
        return Tuple.from_sequence(schema, self._values + other._values)

    # -- dunder ----------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (self._schema.names == other._schema.names
                and self._values == other._values)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}"
                          for name, value in zip(self._schema.names, self._values))
        return f"Tuple({inner})"
