"""The catalog: named relations with their constraints.

A :class:`Catalog` maps relation names to current
:class:`~repro.relational.relation.Relation` values plus their declared
constraints — the standalone entry point for using the relational engine
*without* the temporal kinds.  (The database kinds in :mod:`repro.core`
manage their own stores, since each keeps a different shape of history
around an update; they share this module's constraint checking.)

Updates are functional at the relation level (a new ``Relation`` replaces
the old one under the name) and constraint-checked before taking effect,
so a catalog never holds an inconsistent state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from repro.errors import DuplicateRelationError, UnknownRelationError
from repro.relational.constraints import Constraint, KeyConstraint, check_all
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class Catalog:
    """Named relations plus per-relation constraints."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}
        self._constraints: Dict[str, List[Constraint]] = {}

    # -- DDL ---------------------------------------------------------------------

    def create(self, name: str, schema: Schema,
               constraints: Sequence[Constraint] = ()) -> Relation:
        """Create an empty relation; the schema key becomes a KeyConstraint."""
        if name in self._relations:
            raise DuplicateRelationError(f"relation {name!r} already exists")
        declared = list(constraints)
        if schema.key:
            declared.append(KeyConstraint(schema.key))
        empty = Relation.empty(schema)
        check_all(empty, declared)
        self._relations[name] = empty
        self._constraints[name] = declared
        return empty

    def drop(self, name: str) -> None:
        """Remove a relation and its constraints."""
        self._require(name)
        del self._relations[name]
        del self._constraints[name]

    # -- access -------------------------------------------------------------------

    def _require(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            known = ", ".join(sorted(self._relations)) or "<none>"
            raise UnknownRelationError(
                f"no relation {name!r}; catalog has: {known}"
            ) from None

    def get(self, name: str) -> Relation:
        """The current state of a relation."""
        return self._require(name)

    def schema(self, name: str) -> Schema:
        """The schema of a relation."""
        return self._require(name).schema

    def constraints(self, name: str) -> PyTuple[Constraint, ...]:
        """The declared constraints of a relation."""
        self._require(name)
        return tuple(self._constraints[name])

    def names(self) -> List[str]:
        """All relation names, sorted."""
        return sorted(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._relations)

    # -- update ---------------------------------------------------------------------

    def replace(self, name: str, relation: Relation,
                skip_constraints: bool = False) -> None:
        """Install a new state for *name*, after constraint checking.

        ``skip_constraints`` exists for the temporal kinds, whose key
        uniqueness is *sequenced* (per valid-time snapshot) and checked by
        the kind itself rather than over the raw timestamped table.
        """
        current = self._require(name)
        if relation.schema.names != current.schema.names:
            raise UnknownRelationError(
                f"replacement for {name!r} has different attributes"
            )
        if not skip_constraints:
            check_all(relation, self._constraints[name])
        self._relations[name] = relation

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}({len(relation)})"
                          for name, relation in sorted(self._relations.items()))
        return f"Catalog({inner})"
