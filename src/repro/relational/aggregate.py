"""Aggregation and grouping over relations.

Supports the trend-analysis queries the paper motivates ("How did the
number of faculty change over the last 5 years?"): count/sum/avg/min/max,
optionally grouped by attributes.  The result of an aggregation is itself
a relation, so it composes with the rest of the algebra.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.errors import ExpressionError
from repro.relational.domain import Domain
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.tuple import Tuple


class AggregateFunction:
    """A named reduction over the values of one attribute (or over rows).

    ``attribute=None`` is only legal for ``count`` (row counting).  ``None``
    values are skipped, as in SQL aggregates.
    """

    def __init__(self, name: str, attribute: Optional[str],
                 reduce: Callable[[List[Any]], Any], result_domain: Domain) -> None:
        self.name = name
        self.attribute = attribute
        self._reduce = reduce
        self.result_domain = result_domain

    @property
    def label(self) -> str:
        """The output attribute name, e.g. ``count_name`` or ``count``."""
        if self.attribute is None:
            return self.name
        return f"{self.name}_{self.attribute}"

    def apply(self, rows: Sequence[Tuple]) -> Any:
        if self.attribute is None:
            return self._reduce(list(rows))
        values = [row[self.attribute] for row in rows
                  if row[self.attribute] is not None]
        return self._reduce(values)

    def __repr__(self) -> str:
        return f"AggregateFunction({self.label})"


def count(attribute: Optional[str] = None) -> AggregateFunction:
    """Row count, or non-null count of one attribute."""
    return AggregateFunction("count", attribute, len, Domain.INTEGER)


def count_unique(attribute: str) -> AggregateFunction:
    """Count of distinct non-null values."""
    return AggregateFunction("countu", attribute,
                             lambda values: len(set(values)), Domain.INTEGER)


def agg_sum(attribute: str) -> AggregateFunction:
    """Sum of non-null values (0 on empty input, as in Quel)."""
    return AggregateFunction("sum", attribute, sum, Domain.FLOAT)


def agg_avg(attribute: str) -> AggregateFunction:
    """Mean of non-null values (``None`` on empty input)."""
    def mean(values: List[Any]) -> Optional[float]:
        if not values:
            return None
        return sum(values) / len(values)
    return AggregateFunction("avg", attribute, mean, Domain.FLOAT)


def agg_min(attribute: str) -> AggregateFunction:
    """Minimum of non-null values (``None`` on empty input)."""
    return AggregateFunction("min", attribute,
                             lambda values: min(values) if values else None,
                             Domain.FLOAT)


def agg_max(attribute: str) -> AggregateFunction:
    """Maximum of non-null values (``None`` on empty input)."""
    return AggregateFunction("max", attribute,
                             lambda values: max(values) if values else None,
                             Domain.FLOAT)


def aggregate(relation: Relation, functions: Sequence[AggregateFunction],
              by: Sequence[str] = ()) -> Relation:
    """Group *relation* by the ``by`` attributes and apply the functions.

    With an empty ``by``, produces a single row (even over an empty input,
    so ``count`` of an empty relation is 0).  Aggregate output attributes
    are nullable, since ``avg``/``min``/``max`` of an empty group is
    ``None``.
    """
    if not functions:
        raise ExpressionError("aggregate needs at least one function")
    for name in by:
        relation.schema.attribute(name)
    for function in functions:
        if function.attribute is not None:
            relation.schema.attribute(function.attribute)

    group_attributes = tuple(relation.schema.attribute(name) for name in by)
    result_attributes = group_attributes + tuple(
        Attribute(function.label, function.result_domain, nullable=True)
        for function in functions
    )
    result_schema = Schema(result_attributes)

    groups: Dict[PyTuple[Any, ...], List[Tuple]] = {}
    for row in relation:
        groups.setdefault(tuple(row[name] for name in by), []).append(row)
    if not by and not groups:
        groups[()] = []

    result_rows = []
    for group_key, rows in groups.items():
        values = group_key + tuple(function.apply(rows) for function in functions)
        result_rows.append(Tuple.from_sequence(result_schema, values))
    return Relation(result_schema, result_rows)
