"""Attributes and schemas.

A :class:`Schema` is an ordered sequence of named :class:`Attribute`\\ s
with an optional key.  Schemas describe only the *explicit* (user-visible)
attributes of a relation; the implicit temporal columns the paper draws
right of the double vertical bars (valid time, transaction time) are
maintained by the database kinds in :mod:`repro.core` and deliberately do
**not** appear here — "the latter domains do not appear in the schema for
the relation" (§4.2).  User-defined time, by contrast, is an ordinary
attribute whose domain happens to be a date (§4.5).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.domain import Domain

_IDENTIFIER_OK = staticmethod(str.isidentifier)


class Attribute:
    """A named, typed column of a relation."""

    __slots__ = ("_name", "_domain", "_nullable")

    def __init__(self, name: str, domain: Domain, nullable: bool = False) -> None:
        # Legal names are dot-separated identifiers; spaces are tolerated so
        # the paper's column headings ("effective date") work verbatim, and
        # the dot form carries range-variable qualification ("f1.name").
        segments = name.split(".") if name else [""]
        if not all(segment.replace(" ", "_").isidentifier() for segment in segments):
            raise SchemaError(f"invalid attribute name {name!r}")
        self._name = name
        self._domain = domain
        self._nullable = nullable

    @property
    def name(self) -> str:
        """The attribute's name."""
        return self._name

    @property
    def domain(self) -> Domain:
        """The attribute's value domain."""
        return self._domain

    @property
    def nullable(self) -> bool:
        """Whether ``None`` is a legal value."""
        return self._nullable

    def check(self, value: Any) -> Any:
        """Validate *value* against the domain (and nullability)."""
        if value is None:
            if self._nullable:
                return None
            raise SchemaError(f"attribute {self._name} is not nullable")
        return self._domain.check(value, self._name)

    def renamed(self, name: str) -> "Attribute":
        """A copy of this attribute under a new name."""
        return Attribute(name, self._domain, self._nullable)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return (self._name == other._name and self._domain == other._domain
                and self._nullable == other._nullable)

    def __hash__(self) -> int:
        return hash((self._name, self._domain, self._nullable))

    def __repr__(self) -> str:
        suffix = "?" if self._nullable else ""
        return f"Attribute({self._name}: {self._domain.name}{suffix})"


class Schema:
    """An ordered, immutable collection of attributes with an optional key.

    The key, when given, is enforced by the database kinds: in a static
    database no two tuples may agree on all key attributes; in a historical
    or temporal database no two tuples may agree on the key *while their
    valid times overlap* (a sequenced key).
    """

    __slots__ = ("_attributes", "_by_name", "_key")

    def __init__(self, attributes: Iterable[Attribute],
                 key: Optional[Sequence[str]] = None) -> None:
        self._attributes: Tuple[Attribute, ...] = tuple(attributes)
        if not self._attributes:
            raise SchemaError("a schema needs at least one attribute")
        self._by_name: Dict[str, Attribute] = {}
        for attribute in self._attributes:
            if attribute.name in self._by_name:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            self._by_name[attribute.name] = attribute
        key_names = tuple(key) if key else ()
        for name in key_names:
            if name not in self._by_name:
                raise SchemaError(f"key attribute {name!r} is not in the schema")
        if len(set(key_names)) != len(key_names):
            raise SchemaError("key attributes must be distinct")
        self._key = key_names

    # -- convenient construction ------------------------------------------------

    @classmethod
    def of(cls, key: Optional[Sequence[str]] = None,
           **attributes: Domain) -> "Schema":
        """Build a schema from keyword arguments: ``Schema.of(name=Domain.STRING)``."""
        return cls((Attribute(name, domain) for name, domain in attributes.items()),
                   key=key)

    # -- accessors -----------------------------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        """The attribute names, in declaration order."""
        return tuple(attribute.name for attribute in self._attributes)

    @property
    def key(self) -> Tuple[str, ...]:
        """The key attribute names (may be empty)."""
        return self._key

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(
                f"no attribute {name!r}; schema has {', '.join(self.names)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    # -- derivation -----------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """The schema restricted to *names* (key dropped unless fully kept)."""
        projected = tuple(self.attribute(name) for name in names)
        keep_key = self._key and all(name in names for name in self._key)
        return Schema(projected, key=self._key if keep_key else None)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """A schema with attributes renamed per *mapping*."""
        for old in mapping:
            if old not in self._by_name:
                raise UnknownAttributeError(f"cannot rename unknown attribute {old!r}")
        renamed = tuple(
            attribute.renamed(mapping.get(attribute.name, attribute.name))
            for attribute in self._attributes
        )
        new_key = tuple(mapping.get(name, name) for name in self._key)
        return Schema(renamed, key=new_key or None)

    def concat(self, other: "Schema", prefix_self: str = "",
               prefix_other: str = "") -> "Schema":
        """The concatenated schema used by products and joins.

        Colliding names must be disambiguated by the given prefixes
        (``f1.name`` style), mirroring TQuel range variables.
        """
        def prefixed(attribute: Attribute, prefix: str) -> Attribute:
            if not prefix:
                return attribute
            return attribute.renamed(f"{prefix}.{attribute.name}")

        combined = ([prefixed(a, prefix_self) for a in self._attributes]
                    + [prefixed(a, prefix_other) for a in other._attributes])
        return Schema(combined)

    def key_of(self, values: Mapping[str, Any]) -> Tuple[Any, ...]:
        """Extract the key values from a tuple-like mapping."""
        return tuple(values[name] for name in self._key)

    # -- dunder -----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes and self._key == other._key

    def __hash__(self) -> int:
        return hash((self._attributes, self._key))

    def __repr__(self) -> str:
        parts = ", ".join(f"{a.name}: {a.domain.name}" for a in self._attributes)
        key = f" key={list(self._key)}" if self._key else ""
        return f"Schema({parts}{key})"
