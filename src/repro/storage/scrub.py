"""The integrity scrubber: audit, quarantine, and repair durable state.

Recovery (:mod:`repro.storage.recovery`) verifies what it replays and
*stops* at damage.  The scrubber is the operational layer above that: it
walks everything a durability directory holds — journal segments,
checkpoints, 2PC side logs — verifying frames **and** chain links
without ever raising, classifies each problem into a
:class:`Finding`, and can then take action:

- :meth:`Scrubber.quarantine` moves every damaged file (and every file
  whose content depends on the damage) into a ``quarantine/``
  subdirectory.  Nothing is deleted: quarantine preserves the evidence
  while getting it out of recovery's way.
- :meth:`Scrubber.repair` re-fetches the quarantined suffix from a
  healthy *source* (the primary, or another replica's directory): the
  verified prefix is recovered in place, then the missing records are
  re-applied and re-journaled one by one — or, when the source has
  compacted past what we need, a whole snapshot is adopted
  (:meth:`~repro.storage.recovery.DurabilityManager.adopt_snapshot`).
  Either way the node converges to a digest-equal copy of the source
  with **zero lost durable commits**: everything the damage destroyed
  is on the source, because replication shipped it before it was
  damaged at rest.

The damage taxonomy the audit classifies into (docs/INTEGRITY.md):

==============  ============================================================
kind            meaning
==============  ============================================================
``torn``        a short final record in the final segment — benign crash
                residue, repairable by truncation
``corrupt``     a frame whose bytes are present but wrong (bad CRC, bad
                header, undecodable payload), or torn bytes *mid-file*
                where no crash can produce them
``chain-break``  a record linking to a parent that is not the walked
                head: records were removed, reordered or substituted
``chain-tamper``  a record rewritten in place — CRC valid, but the
                payload no longer matches the content hash the chain
                pinned (the attack a checksum alone cannot catch)
``gap``         records in no segment: a hole between segment files, or
                a checkpoint claiming more records than the journal holds
``checkpoint``  a checkpoint file that fails its frame or format
``sidelog``     a damaged record in a 2PC prepare/decision log
==============  ============================================================

``repro audit`` prints the report; ``repro scrub`` quarantines and (with
``--repair-from``) repairs.  The chaos matrix in
``tests/storage/test_integrity_chaos.py`` drives every injector in
:mod:`repro.storage.faults` through detect → classify → repair.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ChainError, CheckpointError
from repro.obs import runtime as _obs
from repro.storage import chain as _chain
from repro.storage.checkpoint import CheckpointStore, read_checkpoint
from repro.storage.framing import (PROTECTION_LEGACY, FrameDamage,
                                   FrameError, parse_journal_line)
from repro.storage.io import REAL_IO, StorageIO
from repro.storage.journal import apply_entries
from repro.storage.recovery import DurabilityManager
from repro.storage.serializer import dump_database, load_database

#: Quarantine subdirectory name (inside the durability directory).
QUARANTINE_DIR = "quarantine"

#: 2PC side-log file names (audited when present).
_SIDELOGS = ("2pc.seg", "decisions.seg")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One classified integrity problem."""

    #: File the damage lives in (relative to the audited directory).
    file: str
    #: Damage kind (module docstring taxonomy).
    kind: str
    #: 1-based line in the file, when the damage is line-addressable.
    line_number: Optional[int] = None
    #: Global record index the damage starts at, when known.
    index: Optional[int] = None
    #: Human-readable diagnosis.
    detail: str = ""

    def describe(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """What one audit pass over a durability directory saw."""

    directory: str
    #: Every classified problem, in walk order.
    findings: Tuple[Finding, ...]
    #: Journal records that parsed (frames intact), across all segments.
    records_total: int
    #: Chained records whose hash link verified against the walked head.
    chain_verified: int
    #: Bare-JSON records — no checksum at all (the ``r0`` generation).
    legacy_frames: int
    #: Records from index 0 provably intact (frames *and* chain) — a
    #: degraded node may keep serving reads from exactly this prefix.
    verified_prefix: int
    #: The walked chain head (``None`` when damage or legacy records
    #: leave it unknown).
    chain_head: Optional[str]
    segments_audited: int = 0
    checkpoints_audited: int = 0
    sidelogs_audited: int = 0

    @property
    def clean(self) -> bool:
        """True when the audit found nothing wrong."""
        return not self.findings

    def describe(self) -> Dict[str, Any]:
        """A plain dict (what ``repro audit --json`` prints)."""
        data = dataclasses.asdict(self)
        data["findings"] = [finding.describe() for finding in self.findings]
        data["clean"] = self.clean
        return data


@dataclasses.dataclass(frozen=True)
class RepairReport:
    """What one :meth:`Scrubber.repair` run did."""

    #: Findings the pre-repair audit classified.
    findings: int
    #: Files moved into ``quarantine/`` (relative names).
    quarantined: Tuple[str, ...]
    #: Records re-fetched from the source and re-journaled.
    refetched_records: int
    #: True when the damaged suffix was replaced by a whole snapshot
    #: (the source had compacted past the verified prefix).
    used_snapshot: bool
    #: Durable records after repair.
    records_total: int
    #: Chain head after repair.
    chain_head: Optional[str]
    #: Post-repair state digest comparison against the source (``None``
    #: when the source offers no digest).
    digest_match: Optional[bool]

    def describe(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class _SegmentWalk:
    """Mutable state threaded through one audit's segment walk."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.records = 0
        self.legacy = 0
        self.verified_prefix: Optional[int] = None  # None = no damage yet
        self.verifier = _chain.ChainVerifier(_chain.GENESIS)
        self.heads_at: Dict[int, Optional[str]] = {}
        self.expected: Optional[int] = None  # next global index expected
        self.end = 0  # highest global index accounted for

    def damage(self, finding: Finding) -> None:
        self.findings.append(finding)
        if finding.index is not None and (self.verified_prefix is None
                                          or finding.index
                                          < self.verified_prefix):
            self.verified_prefix = finding.index


def _audit_segment(walk: _SegmentWalk, start: int, path: str, name: str,
                   is_last: bool, head_marks: Tuple[int, ...]) -> None:
    """Audit one segment file line by line (never raises)."""
    with open(path, "rb") as handle:
        data = handle.read()
    chunks = data.split(b"\n")
    # Trailing newline yields one empty final chunk; drop it so "last
    # line" means the last record-bearing line.
    while chunks and not chunks[-1].strip():
        chunks.pop()
    parsed_here = 0
    for position, chunk in enumerate(chunks):
        line_number = position + 1
        stripped = chunk.strip()
        if not stripped:
            continue
        index = start + parsed_here
        for mark in head_marks:
            if mark == index and mark not in walk.heads_at:
                walk.heads_at[mark] = walk.verifier.head
        try:
            entry, protection = parse_journal_line(chunk.decode("utf-8"))
        except (FrameError, UnicodeDecodeError) as exc:
            damage = getattr(exc, "damage", FrameDamage.CORRUPT)
            final = is_last and position == len(chunks) - 1
            if damage is FrameDamage.TORN and final:
                kind, detail = "torn", (f"torn final record (crash "
                                        f"residue): {exc}")
            elif damage is FrameDamage.TORN:
                kind, detail = "corrupt", (f"torn bytes mid-file — no "
                                           f"crash writes there: {exc}")
            else:
                kind, detail = "corrupt", str(exc)
            walk.damage(Finding(name, kind, line_number, index, detail))
            # Records beyond a damaged line still parse, but their global
            # indices are no longer certain and the chain cannot be
            # followed across the hole.
            walk.verifier.forget()
            parsed_here += 1
            continue
        if protection == PROTECTION_LEGACY:
            walk.legacy += 1
        try:
            walk.verifier.take(entry, where=f"{name}:{line_number}")
        except ChainError as exc:
            walk.damage(Finding(
                name, f"chain-{exc.kind}", line_number, index, str(exc)))
            walk.verifier.forget()
        walk.records += 1
        parsed_here += 1
    walk.expected = start + parsed_here
    walk.end = max(walk.end, walk.expected)
    for mark in head_marks:
        if mark == walk.expected and mark not in walk.heads_at:
            walk.heads_at[mark] = walk.verifier.head


def _audit_sidelog(path: str, name: str,
                   findings: List[Finding]) -> int:
    """Frame-check one 2PC side log; returns records parsed."""
    if not os.path.exists(path):
        return 0
    with open(path, "rb") as handle:
        chunks = handle.read().split(b"\n")
    while chunks and not chunks[-1].strip():
        chunks.pop()
    parsed = 0
    for position, chunk in enumerate(chunks):
        if not chunk.strip():
            continue
        try:
            parse_journal_line(chunk.decode("utf-8"))
        except (FrameError, UnicodeDecodeError) as exc:
            damage = getattr(exc, "damage", FrameDamage.CORRUPT)
            final = position == len(chunks) - 1
            benign = damage is FrameDamage.TORN and final
            findings.append(Finding(
                name, "sidelog", position + 1, None,
                ("torn final record (crash residue; recovery drops it): "
                 if benign else "damaged 2PC record: ") + str(exc)))
        else:
            parsed += 1
    return parsed


def audit_directory(directory: str,
                    io: Optional[StorageIO] = None) -> AuditReport:
    """Audit one :class:`DurabilityManager` directory; never raises.

    Walks every journal segment (frames + chain links + contiguity),
    every checkpoint (frame, format, recorded chain head against the
    walked head), and any 2PC side log living in the directory.
    """
    obs = _obs.current()
    with obs.tracer.span("scrub.audit", directory=directory), \
            obs.metrics.histogram("scrub.audit_seconds").time():
        manager = DurabilityManager(directory, io=io)
        segments = manager.segments()
        store = CheckpointStore(directory, io=io)
        ckpt_indices = store.indices()
        head_marks = tuple(sorted(ckpt_indices))
        walk = _SegmentWalk()
        if segments and segments[0][0] > 0:
            # History starts mid-stream (operator-deleted prefix): the
            # head is unknown until a checkpointed head re-anchors it.
            walk.verifier = _chain.ChainVerifier(None)
        for position, (start, path) in enumerate(segments):
            name = os.path.basename(path)
            if walk.expected is not None and start != walk.expected:
                if start > walk.expected:
                    walk.damage(Finding(
                        name, "gap", None, walk.expected,
                        f"records {walk.expected}..{start} are in no "
                        f"segment"))
                else:
                    walk.damage(Finding(
                        name, "gap", None, start,
                        f"segment overlaps the previous one (starts at "
                        f"{start}, previous ends at {walk.expected})"))
                walk.verifier.forget()
            _audit_segment(walk, start, path, name,
                           position == len(segments) - 1, head_marks)
        # Checkpoints: damaged files, and valid ones whose recorded
        # chain head contradicts the walked head at the same index.
        newest_valid: Optional[int] = None
        for index in ckpt_indices:
            path = store.path_for(index)
            name = os.path.basename(path)
            try:
                entry = read_checkpoint(path)
            except CheckpointError as exc:
                walk.findings.append(Finding(name, "checkpoint", None,
                                             index, str(exc)))
                continue
            newest_valid = index
            recorded = entry.get("chain_head")
            walked = walk.heads_at.get(index)
            if recorded is not None and walked is not None \
                    and recorded != walked:
                walk.damage(Finding(
                    name, "chain-break", None, index,
                    f"checkpoint records chain head {recorded[:12]}… but "
                    f"the journal walks to {walked[:12]}… at record "
                    f"{index}"))
        if newest_valid is not None and newest_valid > walk.end:
            walk.damage(Finding(
                os.path.basename(store.path_for(newest_valid)), "gap",
                None, walk.end,
                f"checkpoint incorporates {newest_valid} records but the "
                f"journal accounts for only {walk.end} — the journal "
                f"tail was truncated"))
        sidelogs = 0
        for sidelog in _SIDELOGS:
            path = os.path.join(directory, sidelog)
            if os.path.exists(path):
                sidelogs += 1
                _audit_sidelog(path, sidelog, walk.findings)
        damaged_from = walk.verified_prefix
        prefix = damaged_from if damaged_from is not None else walk.end
        report = AuditReport(
            directory=directory,
            findings=tuple(walk.findings),
            records_total=walk.records,
            chain_verified=walk.verifier.verified,
            legacy_frames=walk.legacy,
            verified_prefix=prefix,
            chain_head=(walk.verifier.head if not walk.findings else None),
            segments_audited=len(segments),
            checkpoints_audited=len(ckpt_indices),
            sidelogs_audited=sidelogs,
        )
        obs.metrics.counter("scrub.audits").inc()
        if report.findings:
            obs.metrics.counter("scrub.findings").inc(len(report.findings))
        for finding in report.findings:
            obs.events.emit("integrity.damage", file=finding.file,
                            damage=finding.kind, index=finding.index)
        obs.events.emit("integrity.audit", directory=directory,
                        findings=len(report.findings),
                        records=report.records_total)
    return report


def audit_sharded(directory: str,
                  io: Optional[StorageIO] = None) -> Dict[str, Any]:
    """Audit a :class:`ShardedDurabilityManager` directory.

    Returns ``{"per_shard": [AuditReport...], "decision_log": [Finding...],
    "combined_root": ...}`` — the combined root is the hash of the
    per-shard chain heads in shard order (the single value two sharded
    stores compare to prove identical history everywhere).
    """
    per_shard: List[AuditReport] = []
    shard_ids: List[int] = []
    for name in sorted(os.listdir(directory) if os.path.isdir(directory)
                       else []):
        path = os.path.join(directory, name)
        if name.startswith("shard-") and os.path.isdir(path):
            shard_ids.append(int(name.split("-", 1)[1]))
            per_shard.append(audit_directory(path, io=io))
    decision_findings: List[Finding] = []
    _audit_sidelog(os.path.join(directory, "decisions.seg"),
                   "decisions.seg", decision_findings)
    heads = [report.chain_head for report in per_shard]
    combined = combined_root(heads)
    return {
        "directory": directory,
        "shards": shard_ids,
        "per_shard": per_shard,
        "decision_log": decision_findings,
        "combined_root": combined,
        "clean": (all(r.clean for r in per_shard)
                  and not decision_findings),
    }


def combined_root(heads: List[Optional[str]]) -> Optional[str]:
    """One hash over per-shard chain heads, in shard order.

    ``None`` when any shard's head is unknown — a combined root must
    never paper over an unverifiable shard."""
    if not heads or any(head is None for head in heads):
        return None
    running = _chain.GENESIS
    for head in heads:
        running = _chain.link_hash(running, head)
    return running


class DirectorySource:
    """A repair source backed by a healthy durability directory.

    Recovers the directory (read-only use) and serves the three things
    repair needs: the records floor, the records themselves, and a full
    snapshot with digest for the slow-path cross-check.  The replication
    primary offers the same surface over the wire
    (:mod:`repro.replication.primary`).
    """

    def __init__(self, directory: str, factory: Callable[..., Any],
                 io: Optional[StorageIO] = None) -> None:
        self._manager = DurabilityManager(directory, io=io)
        self._database, _ = self._manager.recover(factory)

    @property
    def record_count(self) -> int:
        return self._manager.record_count

    @property
    def chain_head(self) -> Optional[str]:
        return self._manager.chain_head

    def floor(self) -> int:
        """Earliest record index still present as journal records."""
        segments = self._manager.segments()
        return segments[0][0] if segments else self._manager.record_count

    def entries_from(self, seq: int) -> List[Dict[str, Any]]:
        """Every journal entry at or after *seq*, oldest first."""
        from repro.storage.journal import Journal
        entries: List[Dict[str, Any]] = []
        for start, path in self._manager.segments():
            for offset, entry in enumerate(Journal(path).read()):
                if start + offset >= seq:
                    entries.append(entry)
        return entries

    def snapshot(self) -> Tuple[int, Dict[str, Any], Optional[str]]:
        """``(record_count, dumped_state, chain_head)`` of the source."""
        return (self._manager.record_count,
                dump_database(self._database),
                self._manager.chain_head)

    def digest(self) -> str:
        from repro.replication.digest import state_digest
        return state_digest(self._database)


class Scrubber:
    """Audit → quarantine → repair for one durability directory."""

    def __init__(self, directory: str, fsync: bool = False,
                 io: Optional[StorageIO] = None) -> None:
        self._directory = directory
        self._fsync = fsync
        self._io = io if io is not None else REAL_IO

    @property
    def directory(self) -> str:
        return self._directory

    def audit(self) -> AuditReport:
        """One non-destructive audit pass (see :func:`audit_directory`)."""
        return audit_directory(self._directory, io=self._io)

    def _quarantine_file(self, name: str, moved: List[str]) -> None:
        source = os.path.join(self._directory, name)
        if not os.path.exists(source):
            return
        qdir = os.path.join(self._directory, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        target = os.path.join(qdir, name)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(qdir, f"{name}.{suffix}")
        os.replace(source, target)
        moved.append(name)
        obs = _obs.current()
        obs.metrics.counter("scrub.quarantined").inc()
        obs.events.emit("integrity.quarantine", file=name,
                        directory=self._directory)

    def quarantine(self,
                   report: Optional[AuditReport] = None) -> List[str]:
        """Move every untrusted file into ``quarantine/``; returns names.

        Untrusted means: any segment with a finding, every segment at or
        after the first damaged record (their content is fine but their
        place in history depends on the damaged range), any damaged
        checkpoint, any checkpoint incorporating records at or beyond
        the first damage, and any damaged 2PC side log.  Nothing is
        deleted — the files keep their names under ``quarantine/``.
        """
        if report is None:
            report = self.audit()
        if report.clean:
            return []
        moved: List[str] = []
        manager = DurabilityManager(self._directory, io=self._io)
        segments = manager.segments()
        by_name = {os.path.basename(path): start
                   for start, path in segments}
        damaged_segments = {f.file for f in report.findings
                            if f.file in by_name}
        refetch_from: Optional[int] = None
        for name in damaged_segments:
            start = by_name[name]
            if refetch_from is None or start < refetch_from:
                refetch_from = start
        sidelog_findings = {f.file for f in report.findings
                            if f.kind == "sidelog"}
        gap_at_tail = any(f.kind == "gap" and f.file.startswith("checkpoint")
                          for f in report.findings)
        if gap_at_tail and refetch_from is None:
            # The journal tail is missing (a checkpoint proves more
            # records existed): re-fetch from the last surviving segment.
            refetch_from = segments[-1][0] if segments else 0
        if refetch_from is not None:
            for start, path in segments:
                if start >= refetch_from:
                    self._quarantine_file(os.path.basename(path), moved)
        store = CheckpointStore(self._directory, io=self._io)
        damaged_ckpts = {f.file for f in report.findings
                         if f.file.startswith("checkpoint")}
        for index in store.indices():
            name = os.path.basename(store.path_for(index))
            if name in damaged_ckpts or (refetch_from is not None
                                         and index > refetch_from):
                self._quarantine_file(name, moved)
        for name in sidelog_findings:
            self._quarantine_file(name, moved)
        return moved

    def repair(self, source, factory: Callable[..., Any]) -> RepairReport:
        """Detect, quarantine, and re-fetch the damaged suffix.

        *source* implements the :class:`DirectorySource` surface
        (``floor()``, ``entries_from(seq)``, ``snapshot()``, optionally
        ``digest()``).  On a clean directory this is a no-op audit.
        After repair the directory recovers cleanly, its chain head
        matches the source's for the shared prefix, and — when the
        source exposes a digest — the states are digest-equal.
        """
        obs = _obs.current()
        report = self.audit()
        if report.clean:
            return RepairReport(
                findings=0, quarantined=(), refetched_records=0,
                used_snapshot=False, records_total=report.records_total,
                chain_head=report.chain_head, digest_match=None)
        moved = self.quarantine(report)
        manager = DurabilityManager(self._directory, fsync=self._fsync,
                                    io=self._io)
        database, recovered = manager.recover(factory)
        used_snapshot = False
        refetched = 0
        if source.floor() <= manager.record_count:
            entries = source.entries_from(manager.record_count)
            if entries:
                clock = database.manager.clock.source
                # on_commit is attached, so each re-run journals (and
                # re-chains) its record exactly as a live commit would.
                apply_entries(database, clock, entries)
                refetched = len(entries)
        else:
            count, state, head = source.snapshot()
            database = load_database(state)
            manager.adopt_snapshot(database, count, chain_head=head)
            used_snapshot = True
            refetched = count - recovered.records_total
        digest_match: Optional[bool] = None
        if hasattr(source, "digest"):
            from repro.replication.digest import state_digest
            digest_match = state_digest(database) == source.digest()
        obs.metrics.counter("scrub.repairs").inc()
        obs.metrics.counter("scrub.refetched_records").inc(max(refetched, 0))
        obs.events.emit("integrity.repair", directory=self._directory,
                        records=refetched, path=("snapshot" if used_snapshot
                                                 else "records"))
        return RepairReport(
            findings=len(report.findings),
            quarantined=tuple(moved),
            refetched_records=max(refetched, 0),
            used_snapshot=used_snapshot,
            records_total=manager.record_count,
            chain_head=manager.chain_head,
            digest_match=digest_match,
        )
