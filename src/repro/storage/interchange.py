"""CSV interchange: moving relations in and out of the system.

Real adoption needs flat-file paths.  This module round-trips every
relation shape through CSV:

- static relations: one column per attribute;
- historical relations: plus ``valid_from`` / ``valid_to`` columns
  (``valid_at`` for event-style export);
- temporal relations: plus ``txn_start`` / ``txn_end``.

Values are written with each attribute's domain formatter and read back
with its parser, so enumerations, dates and user-defined time survive.
The infinities round-trip as ``∞`` / ``-∞``; nulls as empty cells.

**Not a durability mechanism.**  CSV export captures one relation's
*contents*, not the commit history that produced them — re-importing
yields new transactions at new commit times.  The crash-safe record of
a database is its journal and checkpoints (docs/DURABILITY.md); use
this module for getting data in and out, never for backup/restore.
"""

from __future__ import annotations

import csv
from typing import Any, Iterable, List, Optional, TextIO, Union

from repro.core.historical import HistoricalRelation, HistoricalRow
from repro.core.temporal import BitemporalRow, TemporalRelation
from repro.errors import StorageError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuple import Tuple
from repro.time.instant import Instant
from repro.time.period import Period

_VALID_COLUMNS = ("valid_from", "valid_to")
_EVENT_COLUMN = "valid_at"
_TT_COLUMNS = ("txn_start", "txn_end")

PathOrFile = Union[str, TextIO]


def _open_for(target: PathOrFile, mode: str):
    if isinstance(target, str):
        return open(target, mode, encoding="utf-8", newline=""), True
    return target, False


def _format_value(schema: Schema, name: str, value: Any) -> str:
    if value is None:
        return ""
    return schema.attribute(name).domain.format(value)


def _parse_value(schema: Schema, name: str, text: str) -> Any:
    if text == "":
        return None
    return schema.attribute(name).domain.parse(text)


def _check_reserved(schema: Schema) -> None:
    reserved = set(_VALID_COLUMNS) | set(_TT_COLUMNS) | {_EVENT_COLUMN}
    clash = reserved & set(schema.names)
    if clash:
        raise StorageError(
            f"schema attributes {sorted(clash)} collide with the reserved "
            f"temporal CSV columns"
        )


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def export_csv(relation: Relation, target: PathOrFile) -> int:
    """Write a static relation as CSV; returns the number of rows."""
    handle, owned = _open_for(target, "w")
    try:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation:
            writer.writerow([_format_value(relation.schema, name, row[name])
                             for name in relation.schema.names])
        return relation.cardinality
    finally:
        if owned:
            handle.close()


def export_historical_csv(relation: HistoricalRelation,
                          target: PathOrFile, event: bool = False) -> int:
    """Write a historical relation as CSV with its valid-time columns."""
    _check_reserved(relation.schema)
    handle, owned = _open_for(target, "w")
    try:
        writer = csv.writer(handle)
        temporal_header = ([_EVENT_COLUMN] if event
                           else list(_VALID_COLUMNS))
        writer.writerow(list(relation.schema.names) + temporal_header)
        for row in relation.rows:
            cells = [_format_value(relation.schema, name, row.data[name])
                     for name in relation.schema.names]
            if event:
                cells.append(row.valid.start.isoformat())
            else:
                cells += [row.valid.start.isoformat(),
                          row.valid.end.isoformat()]
            writer.writerow(cells)
        return len(relation)
    finally:
        if owned:
            handle.close()


def export_temporal_csv(relation: TemporalRelation,
                        target: PathOrFile) -> int:
    """Write a bitemporal relation as CSV with all four timestamps."""
    _check_reserved(relation.schema)
    handle, owned = _open_for(target, "w")
    try:
        writer = csv.writer(handle)
        writer.writerow(list(relation.schema.names)
                        + list(_VALID_COLUMNS) + list(_TT_COLUMNS))
        for row in relation.rows:
            cells = [_format_value(relation.schema, name, row.data[name])
                     for name in relation.schema.names]
            cells += [row.valid.start.isoformat(), row.valid.end.isoformat(),
                      row.tt.start.isoformat(), row.tt.end.isoformat()]
            writer.writerow(cells)
        return len(relation)
    finally:
        if owned:
            handle.close()


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------

def _read_rows(schema: Schema, source: PathOrFile,
               expected_extra: List[str]):
    handle, owned = _open_for(source, "r")
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError("CSV file is empty (no header)") from None
        expected = list(schema.names) + expected_extra
        if header != expected:
            raise StorageError(
                f"CSV header {header!r} does not match the schema "
                f"(expected {expected!r})"
            )
        for line_number, cells in enumerate(reader, start=2):
            if not cells:
                continue
            if len(cells) != len(expected):
                raise StorageError(
                    f"CSV line {line_number} has {len(cells)} cells, "
                    f"expected {len(expected)}"
                )
            yield cells
    finally:
        if owned:
            handle.close()


def import_csv(schema: Schema, source: PathOrFile) -> Relation:
    """Read a static relation from CSV, parsing values per the schema."""
    rows = []
    for cells in _read_rows(schema, source, []):
        values = {name: _parse_value(schema, name, cell)
                  for name, cell in zip(schema.names, cells)}
        rows.append(Tuple(schema, values))
    return Relation(schema, rows)


def import_historical_csv(schema: Schema, source: PathOrFile,
                          event: bool = False) -> HistoricalRelation:
    """Read a historical relation from CSV written by the exporter."""
    _check_reserved(schema)
    extra = [_EVENT_COLUMN] if event else list(_VALID_COLUMNS)
    rows = []
    for cells in _read_rows(schema, source, extra):
        data_cells = cells[:len(schema.names)]
        values = {name: _parse_value(schema, name, cell)
                  for name, cell in zip(schema.names, data_cells)}
        if event:
            valid = Period.at(Instant.parse(cells[-1]))
        else:
            valid = Period(Instant.parse(cells[-2]),
                           Instant.parse(cells[-1]))
        rows.append(HistoricalRow(Tuple(schema, values), valid))
    return HistoricalRelation(schema, rows)


def import_temporal_csv(schema: Schema,
                        source: PathOrFile) -> TemporalRelation:
    """Read a bitemporal relation from CSV written by the exporter."""
    _check_reserved(schema)
    extra = list(_VALID_COLUMNS) + list(_TT_COLUMNS)
    rows = []
    for cells in _read_rows(schema, source, extra):
        data_cells = cells[:len(schema.names)]
        values = {name: _parse_value(schema, name, cell)
                  for name, cell in zip(schema.names, data_cells)}
        valid = Period(Instant.parse(cells[-4]), Instant.parse(cells[-3]))
        tt = Period(Instant.parse(cells[-2]), Instant.parse(cells[-1]))
        rows.append(BitemporalRow(Tuple(schema, values), valid, tt))
    return TemporalRelation(schema, rows)
