"""Deterministic fault injection for the durability subsystem.

The crash-safety contract in ``docs/DURABILITY.md`` names four crash
points a process can die at while persisting state.  This module makes
each of them a reproducible event: a :class:`FaultyIO` wraps the real
:class:`~repro.storage.io.StorageIO` and, on the *n*-th matching write,
performs exactly the damaged write a crash at that point would leave
behind, then raises :class:`SimulatedCrash`:

====================  =====================================================
crash point           simulated residue
====================  =====================================================
``TORN_RECORD``       a prefix of the journal record's bytes reaches the
                      segment (died mid-``write``); framing detects the
                      short payload, recovery truncates it
``LOST_RECORD``       nothing reaches the segment (died after the commit
                      applied in memory, before the record was flushed);
                      the commit is not durable and is absent after
                      recovery
``TORN_CHECKPOINT``   a prefix of the checkpoint bytes lands at the
                      *final* path (a non-atomic writer, or the tail of a
                      failed sector); the checksum fails and recovery
                      falls back to the previous checkpoint or full replay
``LOST_CHECKPOINT``   the ``.tmp`` file is complete but the atomic rename
                      never happened; recovery ignores the ``.tmp`` and
                      uses the previous checkpoint or full replay
====================  =====================================================

:class:`SimulatedCrash` deliberately does **not** derive from
:class:`~repro.errors.ReproError`: no library code may catch it, just as
no library code survives ``SIGKILL``.  After the crash fires the
injector becomes a passthrough, so a test can keep using the same
manager object if it wants to model "the machine came back up".

The harness used by ``tests/storage/test_faults.py``: build a durable
database with ``DurabilityManager(directory, io=FaultyIO(kind, at=n))``,
drive a workload until :class:`SimulatedCrash`, then recover the
directory with real I/O and assert the recovered database answers the
paper's queries identically to an uncrashed database built from the
records that were durable at the crash point.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional

from repro.storage.io import REAL_IO, StorageIO


class SimulatedCrash(Exception):
    """The injected process death.  Not a :class:`ReproError` on purpose:
    library code must never catch or survive it."""


class CrashPoint(enum.Enum):
    """The four write-path crash points of the durability contract."""

    #: Die midway through appending a journal record (torn tail).
    TORN_RECORD = "torn-record"
    #: Die after the in-memory commit, before its record reached disk.
    LOST_RECORD = "lost-record"
    #: Die leaving a partial checkpoint at the final path (bad checksum).
    TORN_CHECKPOINT = "torn-checkpoint"
    #: Die between writing the checkpoint ``.tmp`` and the atomic rename.
    LOST_CHECKPOINT = "lost-checkpoint"


#: The full matrix the fault suite iterates (name → CrashPoint).
ALL_CRASH_POINTS = tuple(CrashPoint)

#: Crash points that fire on journal appends (vs. checkpoint writes).
_APPEND_POINTS = (CrashPoint.TORN_RECORD, CrashPoint.LOST_RECORD)


class FaultyIO(StorageIO):
    """A :class:`StorageIO` that dies deterministically at one crash point.

    ``at`` counts *matching* writes: ``FaultyIO(CrashPoint.TORN_RECORD,
    at=3)`` lets two journal appends through untouched and tears the
    third.  Checkpoint crash points count :meth:`write_atomic` calls the
    same way.  ``fraction`` controls how much of the damaged write's
    payload reaches the file (default: half, at least one byte).
    """

    def __init__(self, crash: CrashPoint, at: int = 1,
                 fraction: float = 0.5,
                 real: Optional[StorageIO] = None) -> None:
        if at < 1:
            raise ValueError("FaultyIO fires on the at-th write; at >= 1")
        self._crash = crash
        self._remaining = at
        self._fraction = fraction
        self._real = real if real is not None else REAL_IO
        self.fired = False

    def _trigger(self) -> bool:
        """Count one matching write; True when this is the fatal one."""
        if self.fired:
            return False
        self._remaining -= 1
        if self._remaining > 0:
            return False
        self.fired = True
        return True

    def _partial(self, data: bytes) -> bytes:
        return data[:max(1, int(len(data) * self._fraction))]

    def append(self, path: str, data: bytes, fsync: bool = False) -> None:
        if self._crash in _APPEND_POINTS and self._trigger():
            if self._crash is CrashPoint.TORN_RECORD:
                self._real.append(path, self._partial(data))
            raise SimulatedCrash(
                f"crashed at {self._crash.value} appending to {path}")
        self._real.append(path, data, fsync=fsync)

    def write_atomic(self, path: str, data: bytes,
                     fsync: bool = False) -> None:
        if self._crash in _APPEND_POINTS or not self._trigger():
            self._real.write_atomic(path, data, fsync=fsync)
            return
        if self._crash is CrashPoint.TORN_CHECKPOINT:
            # Model a non-atomic writer dying at the destination itself:
            # the final path holds a prefix that must fail its checksum.
            with open(path, "wb") as handle:
                handle.write(self._partial(data))
        else:  # LOST_CHECKPOINT: the .tmp is complete, the rename is not.
            with open(path + ".tmp", "wb") as handle:
                handle.write(data)
        raise SimulatedCrash(
            f"crashed at {self._crash.value} checkpointing {path}")

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"in {self._remaining}"
        return f"FaultyIO({self._crash.value}, {state})"


# ---------------------------------------------------------------------------
# At-rest corruption.  FaultyIO models a process dying mid-write; these
# model what happens to bytes that were written *correctly* and then
# damaged afterwards — bit rot, a bad sector, or deliberate tampering.
# They are the raw material of the integrity chaos matrix
# (tests/storage/test_integrity_chaos.py): every injector's damage must
# be detected and classified by the scrubber (docs/INTEGRITY.md), never
# silently replayed.
# ---------------------------------------------------------------------------

def flip_byte(path: str, offset: int, xor: int = 0x01) -> int:
    """XOR one byte of *path* at *offset*; returns the original byte.

    The classic bit-rot model.  ``xor`` must be nonzero — flipping a
    byte to itself would be no damage at all."""
    if not 0 < xor < 256:
        raise ValueError("xor must flip at least one bit (1..255)")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)
        if len(original) != 1:
            raise ValueError(f"offset {offset} is beyond {path}")
        handle.seek(offset)
        handle.write(bytes([original[0] ^ xor]))
    return original[0]


def truncate_file(path: str, size: int) -> int:
    """Cut *path* down to *size* bytes; returns bytes removed.

    Mid-file truncation of a journal segment leaves a torn final record
    *and* silently removes whole records after it — exactly the damage
    a CRC alone cannot distinguish from a legitimate short history, and
    the chain (or the next segment's start index) can."""
    original = 0
    with open(path, "r+b") as handle:
        handle.seek(0, 2)
        original = handle.tell()
        if size > original:
            raise ValueError(f"cannot truncate {path} to {size} bytes; "
                             f"it has {original}")
        handle.truncate(size)
    return original - size


def _rewrite_line(path: str, line_number: int,
                  rewrite: Callable[[str], str]) -> None:
    with open(path, "rb") as handle:
        lines = handle.read().split(b"\n")
    index = line_number - 1
    if not 0 <= index < len(lines) or not lines[index].strip():
        raise ValueError(f"{path} has no record at line {line_number}")
    lines[index] = rewrite(lines[index].decode("utf-8")).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(b"\n".join(lines))


def tamper_record(path: str, line_number: int,
                  mutate: Optional[Callable[[Dict[str, Any]], None]] = None
                  ) -> None:
    """Rewrite one record's payload **with a recomputed CRC**.

    The adversarial case: the frame stays perfectly valid (length and
    checksum both match the new bytes), so CRC verification passes —
    only the hash chain can tell the record is no longer the one that
    was committed, because its content hash changed while the chain
    fields (and the next record's ``prev``) still pin the original.

    *mutate* edits the decoded entry in place; the default bumps the
    commit's ``sequence`` far out of range."""
    from repro.storage.framing import frame_record, parse_journal_line

    def rewrite(line: str) -> str:
        entry, _ = parse_journal_line(line)
        if mutate is not None:
            mutate(entry)
        else:
            entry["sequence"] = entry.get("sequence", 0) + 1_000_000
        tag = line.split(" ", 1)[0] if not line.startswith("{") else None
        if tag is None:
            import json
            return json.dumps(entry, ensure_ascii=False, sort_keys=True)
        return frame_record(entry, tag=tag)

    _rewrite_line(path, line_number, rewrite)


def tamper_chain_field(path: str, line_number: int, field: str = "prev",
                       value: str = "f" * 64) -> None:
    """Rewrite one chain field (``prev``/``content``/``commit``) of a
    chained record, with a recomputed CRC.

    Models an attacker trying to splice history by editing the chain
    itself; the verifier catches it because the three fields must hash
    together and link to the walked head."""
    from repro.errors import ChainError
    from repro.storage.chain import CHAIN_KEY
    from repro.storage.framing import frame_record, parse_journal_line

    def rewrite(line: str) -> str:
        entry, _ = parse_journal_line(line)
        chain = entry.get(CHAIN_KEY)
        if not isinstance(chain, dict) or field not in chain:
            raise ChainError(
                f"record at {path}:{line_number} carries no chain "
                f"field {field!r} to tamper with")
        chain[field] = value
        return frame_record(entry, tag=line.split(" ", 1)[0])

    _rewrite_line(path, line_number, rewrite)
