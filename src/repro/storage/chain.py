"""The commit hash chain: tamper-evident, prefix-comparable history.

Transaction time is append-only, so the journal *is* the history — but a
CRC only proves a record survived the disk, not that it is the record
that was written.  This module chains every commit record to its parent
the way a Merkle list does:

- ``content_hash`` — SHA-256 of the record's canonical JSON (sorted
  keys, the ``chain`` field itself excluded), naming *what* the commit
  says;
- ``commit_hash`` — SHA-256 over ``prev_hash + content_hash``, naming
  the commit *and its entire ancestry*.

Two histories agree on a prefix iff they agree on the prefix's final
``commit_hash``, which is what makes divergence detection O(1) per
heartbeat (:mod:`repro.replication`) and lets an auditor verify a
journal link-by-link (:mod:`repro.storage.scrub`).  A record whose
payload was rewritten *with a recomputed CRC* still fails here: its
content hash no longer matches what the next record's ``prev_hash``
committed to.

The chain begins at :data:`GENESIS` (sixty-four zeros).  Records written
before chaining existed (legacy ``r1`` frames, bare JSON) carry no chain
fields; a verifier that crosses one forgets the running head (it becomes
*unknown*) and re-anchors on the next chained record, so old journals
stay replayable while everything after them is still pairwise-linked.

Hash computation is deliberately independent of storage: primary,
replica and scrubber all compute heads from entry content alone, so
their heads converge without exchanging anything but the entries.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, Optional

from repro.errors import ChainError

#: The ancestor of the first chained commit (64 zeros, like an all-zero
#: SHA-256); also the chain head of an empty history.
GENESIS = "0" * 64

#: Key under which a journal entry carries its chain fields.
CHAIN_KEY = "chain"


def content_hash(entry: Dict[str, Any]) -> str:
    """SHA-256 (hex) of the entry's canonical JSON, chain fields excluded.

    Canonical means ``sort_keys=True`` with compact separators — the
    same entry always hashes the same regardless of the dict order it
    was parsed into, so a replica hashing a received entry and the
    primary hashing the entry it sent agree byte-for-byte.
    """
    stripped = {key: value for key, value in entry.items()
                if key != CHAIN_KEY}
    canonical = json.dumps(stripped, ensure_ascii=False, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def link_hash(prev_hash: str, content: str) -> str:
    """The commit hash: SHA-256 (hex) over ``prev_hash + content``."""
    return hashlib.sha256((prev_hash + content).encode("ascii")).hexdigest()


def chain_entry(entry: Dict[str, Any], prev_hash: str) -> Dict[str, Any]:
    """A copy of *entry* carrying its chain fields (the write path).

    ``entry[CHAIN_KEY]`` becomes ``{"prev", "content", "commit"}``; the
    caller threads the returned ``commit`` hash into the next record's
    ``prev_hash``.
    """
    content = content_hash(entry)
    chained = dict(entry)
    chained[CHAIN_KEY] = {
        "prev": prev_hash,
        "content": content,
        "commit": link_hash(prev_hash, content),
    }
    return chained


def entry_chain(entry: Dict[str, Any]) -> Optional[Dict[str, str]]:
    """The entry's chain fields, or ``None`` for an unchained record."""
    chain = entry.get(CHAIN_KEY)
    if not isinstance(chain, dict):
        return None
    if not all(isinstance(chain.get(k), str)
               for k in ("prev", "content", "commit")):
        return None
    return chain


class ChainVerifier:
    """Walks records in order, verifying each link against the last.

    ``head`` is the running commit hash — :data:`GENESIS` for a history
    verified from its start, a checkpointed head for a tail, or ``None``
    when the head is *unknown* (verification began mid-history without a
    trusted head, or a legacy record interrupted the chain).  With an
    unknown head the verifier still checks each record's internal
    consistency (content hash and commit hash), then re-anchors on it.

    Raises :class:`~repro.errors.ChainError` naming the failing record;
    the three failure modes are distinguished in the message (and by
    :attr:`ChainError.kind`): a ``prev`` that contradicts the running
    head (**break**), a payload that no longer matches its content hash
    (**tamper**), and chain fields that don't hash together (**tamper**).
    """

    def __init__(self, head: Optional[str] = GENESIS) -> None:
        self.head = head
        #: Chained records verified so far.
        self.verified = 0
        #: Unchained (legacy) records crossed so far.
        self.legacy = 0

    def take(self, entry: Dict[str, Any], where: str = "") -> Optional[str]:
        """Verify one record; returns its commit hash (``None`` if legacy).

        *where* labels the record in error messages (file / line)."""
        at = f" at {where}" if where else ""
        chain = entry_chain(entry)
        if chain is None:
            # Pre-chain record: the head is unknown from here until the
            # next chained record re-anchors it.
            self.head = None
            self.legacy += 1
            return None
        content = content_hash(entry)
        if chain["content"] != content:
            raise ChainError(
                f"chain tamper{at}: payload hashes to {content[:12]}…, "
                f"record claims {chain['content'][:12]}… — the record "
                f"body was rewritten", kind="tamper")
        if link_hash(chain["prev"], chain["content"]) != chain["commit"]:
            raise ChainError(
                f"chain tamper{at}: commit hash does not bind prev and "
                f"content — the chain fields were rewritten",
                kind="tamper")
        if self.head is not None and chain["prev"] != self.head:
            raise ChainError(
                f"chain break{at}: record links to parent "
                f"{chain['prev'][:12]}… but the history's head is "
                f"{self.head[:12]}… — a record was removed, reordered "
                f"or substituted", kind="break")
        self.head = chain["commit"]
        self.verified += 1
        return chain["commit"]

    def forget(self) -> None:
        """Drop the running head (a gap in the record stream was crossed)."""
        self.head = None


def head_of(entries: Iterable[Dict[str, Any]],
            head: Optional[str] = GENESIS) -> Optional[str]:
    """The chain head after verifying *entries* in order from *head*.

    ``None`` when the tail of *entries* is unchained (legacy) records.
    Raises :class:`~repro.errors.ChainError` on any bad link."""
    verifier = ChainVerifier(head)
    for entry in entries:
        verifier.take(entry)
    return verifier.head
