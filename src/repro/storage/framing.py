"""Record framing: checksummed, length-prefixed lines.

Durable files in this system (journal segments, checkpoint files) are
built from *framed records*.  A framed record is one line of text::

    <tag> <length> <crc32> <payload>\\n

- ``tag`` names the record format (``r1`` for journal records, ``c1``
  for checkpoint bodies), so a file identifies itself;
- ``length`` is the byte length of the UTF-8 encoded payload — a torn
  write (the process died mid-``write``) leaves fewer bytes than the
  prefix promises and is detected without parsing the payload;
- ``crc32`` (eight lowercase hex digits, :func:`zlib.crc32`) covers the
  payload bytes — bit rot or an overwritten tail fails the checksum even
  when the length happens to match.

The distinction matters for recovery: a record that fails *because the
file ends too early* (:attr:`FrameDamage.TORN`) is the expected residue
of a crash during an append and may be safely truncated when it is the
final record; a record whose bytes are all present but wrong
(:attr:`FrameDamage.CORRUPT`) is never silently dropped.

Journal files written before framing existed hold bare JSON objects, one
per line.  :func:`parse_frame` accepts those (a line starting with
``{``) so old journals stay replayable; they simply carry no checksum.
:func:`parse_journal_line` dispatches the three journal generations —
chained ``r2``, pre-chain ``r1``, bare JSON — and counts the unprotected
legacy lines into the ``storage.legacy_frames`` metric so an operator
can see exactly how much of a journal carries no checksum
(``repro audit`` reports the same count per file).

Nothing in this module touches the filesystem — it frames and parses
strings.  Durability (when bytes reach the disk) is the business of
:mod:`repro.storage.io`.
"""

from __future__ import annotations

import enum
import json
import zlib
from typing import Any, Dict, Tuple

from repro.obs import runtime as _obs

#: Frame tag of pre-chain journal commit records.
JOURNAL_TAG = "r1"
#: Frame tag of chained journal commit records (payload carries the
#: ``chain`` field of :mod:`repro.storage.chain`).
CHAINED_TAG = "r2"
#: Frame tag of checkpoint bodies.
CHECKPOINT_TAG = "c1"

#: How a journal line is protected: chained frame, CRC-only frame, or
#: nothing at all (``parse_journal_line``'s second return value).
PROTECTION_CHAINED = "r2"
PROTECTION_CRC = "r1"
PROTECTION_LEGACY = "legacy"


class FrameDamage(enum.Enum):
    """How a framed record can fail to parse."""

    #: The line ends before the promised payload length: the signature of
    #: a write that was cut short by a crash.  Recoverable when final.
    TORN = "torn"
    #: All bytes are present but wrong (bad checksum, malformed prefix,
    #: undecodable payload).  Never recoverable.
    CORRUPT = "corrupt"


class FrameError(ValueError):
    """A framed record could not be parsed.

    Carries :attr:`damage` so callers can distinguish a torn tail (safe
    to truncate during recovery) from mid-file corruption (never safe).
    """

    def __init__(self, message: str, damage: FrameDamage) -> None:
        super().__init__(message)
        self.damage = damage


def frame(payload: str, tag: str = JOURNAL_TAG) -> str:
    """Wrap *payload* in a one-line frame (no trailing newline)."""
    data = payload.encode("utf-8")
    return f"{tag} {len(data)} {zlib.crc32(data):08x} {payload}"


def frame_record(entry: Dict[str, Any], tag: str = JOURNAL_TAG) -> str:
    """Frame a JSON-serializable record (the journal's write path)."""
    return frame(json.dumps(entry, ensure_ascii=False, sort_keys=True),
                 tag=tag)


def parse_frame(line: str, tag: str = JOURNAL_TAG) -> Dict[str, Any]:
    """Parse one framed line back into its JSON record.

    Raises :class:`FrameError` tagged :attr:`FrameDamage.TORN` when the
    payload is shorter than the length prefix promises (a torn trailing
    write), and :attr:`FrameDamage.CORRUPT` for everything else that is
    wrong (bad tag, bad checksum, undecodable JSON).  Legacy bare-JSON
    lines (starting with ``{``) are accepted for compatibility.
    """
    if line.startswith("{"):
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise FrameError(f"bad legacy JSON record: {exc}",
                             FrameDamage.CORRUPT) from exc
    parts = line.split(" ", 3)
    if parts[0] != tag:
        # A crash can cut an append at any byte, so a strict prefix of
        # the tag itself is still torn residue, not corruption.
        if len(parts) == 1 and line and tag.startswith(line):
            raise FrameError(f"torn record: header cut mid-tag ({line!r})",
                             FrameDamage.TORN)
        raise FrameError(
            f"not a {tag!r} frame (starts {line[:16]!r})",
            FrameDamage.CORRUPT)
    if len(parts) < 4:
        # Header fields missing entirely: torn if what *is* present is a
        # plausible prefix of a valid header, corrupt otherwise.
        plausible = (len(parts) < 2 or parts[1].isdigit() or parts[1] == "") \
            and (len(parts) < 3 or (len(parts[2]) <= 8 and all(
                c in "0123456789abcdef" for c in parts[2])))
        if plausible:
            raise FrameError(f"torn record: header ends early ({line!r})",
                             FrameDamage.TORN)
        raise FrameError(f"malformed frame prefix {line[:32]!r}",
                         FrameDamage.CORRUPT)
    # The header format is canonical — decimal length, exactly eight
    # lowercase hex checksum digits (what ``frame`` emits).  Lax parsing
    # here would let a flipped case bit in the checksum field (``a`` ->
    # ``A``) alias to the same value and mask real corruption.
    if not parts[1].isdigit() or len(parts[2]) != 8 or any(
            c not in "0123456789abcdef" for c in parts[2]):
        raise FrameError(f"malformed frame prefix {line[:32]!r}",
                         FrameDamage.CORRUPT)
    length = int(parts[1])
    checksum = int(parts[2], 16)
    payload = parts[3]
    data = payload.encode("utf-8")
    if len(data) < length:
        raise FrameError(
            f"torn record: frame promises {length} payload bytes, "
            f"only {len(data)} present", FrameDamage.TORN)
    if len(data) > length:
        raise FrameError(
            f"overlong record: frame promises {length} payload bytes, "
            f"{len(data)} present", FrameDamage.CORRUPT)
    if zlib.crc32(data) != checksum:
        raise FrameError(
            f"checksum mismatch: frame says {checksum:08x}, "
            f"payload hashes to {zlib.crc32(data):08x}",
            FrameDamage.CORRUPT)
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:
        # The checksum matched, so this is a writer bug, not disk damage;
        # either way the record cannot be used.
        raise FrameError(f"framed payload is not JSON: {exc}",
                         FrameDamage.CORRUPT) from exc


def parse_journal_line(line: str) -> Tuple[Dict[str, Any], str]:
    """Parse one journal line of any generation; returns ``(entry, how)``.

    ``how`` is :data:`PROTECTION_CHAINED` for an ``r2`` frame,
    :data:`PROTECTION_CRC` for an ``r1`` frame, and
    :data:`PROTECTION_LEGACY` for a bare-JSON line (which also counts
    into the ``storage.legacy_frames`` metric — those records carry no
    checksum at all).  Damage raises :class:`FrameError` exactly as
    :func:`parse_frame` does; a line that is a strict prefix of either
    journal tag is torn residue, not corruption.
    """
    if line.startswith("{"):
        entry = parse_frame(line)
        _obs.current().metrics.counter("storage.legacy_frames").inc()
        return entry, PROTECTION_LEGACY
    if line == CHAINED_TAG or line.startswith(CHAINED_TAG + " "):
        return parse_frame(line, tag=CHAINED_TAG), PROTECTION_CHAINED
    return parse_frame(line), PROTECTION_CRC
